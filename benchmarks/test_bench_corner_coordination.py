"""E8 — Appendix A.3, Theorem 27: corner coordination has complexity Θ(√n).

The sweep reports, for bounded m×m grids, the number of rounds a corner
needs before it sees another corner or a broken node (the lower-bound
quantity, equal to m-1) against the paper's 2√n upper bound and the
Proposition 28 ball sizes.
"""

import math

from repro.analysis.experiments import ExperimentTable
from repro.coordination.corner import (
    CornerCoordinationInstance,
    corner_ball_size,
    rounds_until_corner_sees_special,
    solve_corner_coordination,
    upper_bound_rounds,
    verify_corner_coordination,
)
from repro.grid.torus import RectangularGrid

SIZES = (9, 16, 25, 36, 49)


def test_corner_coordination_round_scaling(benchmark, bench_json):
    def sweep():
        rows = []
        for m in SIZES:
            instance = CornerCoordinationInstance(RectangularGrid(m, m))
            rounds = rounds_until_corner_sees_special(instance, (0, 0))
            solution = solve_corner_coordination(instance)
            feasible = verify_corner_coordination(instance, solution) == []
            rows.append((m, m * m, rounds, upper_bound_rounds(m * m), feasible))
        return rows

    rows = benchmark(sweep)
    table = ExperimentTable(
        "E8",
        "Corner coordination: rounds grow like √n (Theorem 27)",
        ["m", "n = m²", "rounds needed", "2√n upper bound", "√n", "reference solution feasible"],
    )
    for m, n, rounds, upper, feasible in rows:
        table.add_row(
            m=m,
            **{
                "n = m²": n,
                "rounds needed": rounds,
                "2√n upper bound": upper,
                "√n": round(math.sqrt(n), 1),
                "reference solution feasible": feasible,
            },
        )
    table.add_note(
        f"Proposition 28 ball sizes (r+2 choose 2): "
        f"{[corner_ball_size(r) for r in (1, 2, 3, 4, 5)]} for r = 1..5"
    )
    table.show()
    bench_json(
        {
            "rows": [
                {"m": m, "n": n, "rounds": rounds, "upper_bound": upper, "feasible": feasible}
                for m, n, rounds, upper, feasible in rows
            ]
        }
    )
    for m, n, rounds, upper, feasible in rows:
        assert rounds == m - 1
        assert rounds <= upper
        assert feasible
