"""Benchmark: persistent shm engine tier versus per-round-fork parallel.

This is the acceptance benchmark of the fifth engine tier.  Both tiers
shard the same non-compilable rounds across the same number of worker
processes, so steady-state compute is identical; what differs is the
per-round overhead.  The ``parallel`` tier pays one full ``fork`` of the
parent (warmed index tables and all) per round *plus* pickling every
chunk's result list back through the pool; the ``shm`` tier pays one pool
spawn per schedule, after which a round costs two task messages per
worker and two ``int32`` memcpys through shared memory.  The target is a
>= 2x speedup on one 512x512 8-round schedule with 4 workers — measured
on hardware with at least 4 CPUs; the floor scales down with the cores
actually available, and a single-CPU runner records the honest ratio
without asserting one.

The slow sweep extends the measurement over sides 256-2048 (the regime
the ``Θ(log* n)`` vs ``Θ(n)`` separation plots need).  Results are
written as machine-readable ``BENCH_*.json`` files (see
``benchmarks/conftest.py``) and uploaded as CI artifacts.
"""

import os
import time

import pytest

from repro.grid.indexer import GridIndexer
from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import FunctionRule
from repro.local_model.engine import ParallelEngine, ShmEngine
from repro.local_model.store import WORKERS_VARIABLE, parallel_workers, shm_available

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform lacks shm-tier prerequisites"
)

SIDE = 512
ROUNDS = 8
REPETITIONS = 2
# The acceptance configuration is 4 workers; a REPRO_WORKERS override
# (e.g. the CI 2-worker smoke job) repoints the whole quick benchmark.
WORKERS = parallel_workers() if os.environ.get(WORKERS_VARIABLE) else 4
SWEEP_SIDES = (256, 512, 1024, 2048)
SWEEP_ROUNDS = 3

CPUS = os.cpu_count() or 1


def _speedup_floor(workers):
    """The asserted floor given the machine's CPU count.

    The amortisation gain needs real parallel rounds on both sides:
    demand the headline 2x only where 4 cores back 4 workers (relaxed on
    shared CI runners), a token win on 2-3 cores, and nothing on a single
    CPU (the ratio is still recorded).
    """
    usable = min(workers, CPUS)
    if usable >= 4:
        return 1.3 if os.environ.get("CI") else 2.0
    if usable >= 2:
        return 1.05
    return None


def _signature_rule(node_count):
    """A cheap radius-1 rule over an identifier-sized *closed* alphabet.

    |Σ| = node_count keeps every tier off the compiled lookup table and
    no ``update_batch`` hook is declared, so both contenders shard the
    same per-node Python scan.  The body is deliberately light — the
    benchmark isolates *per-round overhead* (fork + result pickling vs
    barrier messages), which is exactly what the shm tier removes; a
    heavyweight rule body would just dilute both sides equally.  Outputs
    stay inside ``range(node_count)`` and :func:`_labels` covers that
    whole range, so the schedule runs on a closed alphabet — the steady
    state of every LCL workload; alphabet *growth* (the shm tier's
    overflow/codec-sync protocol) is priced separately by the equivalence
    suite, not blended into the transport measurement.
    """

    def update(view):
        values = view.values()
        return (3 * min(values) + max(values) + 1) % node_count

    return FunctionRule(1, update)


def _labels(grid):
    # 31 is odd and every torus side here is a power of two, so the
    # stride covers all node_count residues: the alphabet is closed from
    # the first store.
    side = grid.sides[0]
    return {
        node: (node[0] * side + node[1]) * 31 % grid.node_count
        for node in grid.nodes()
    }


def _best_of(repetitions, run):
    timings = []
    for _ in range(repetitions):
        start = time.perf_counter()
        run()
        timings.append(time.perf_counter() - start)
    return min(timings)


def _run_parallel_schedule(engine, initial, rule, rounds):
    current = initial
    for _ in range(rounds):
        current = engine.apply_rule(current, rule)
    return current.to_dict()


def _warm_shm_engine(grid, labels, rule, workers):
    """Spawn the persistent pool and return ``(engine, spawn_seconds)``.

    The spawn happens once per simulation — that is the tier's whole
    premise — so the schedule measurement below is the amortised steady
    state; the one-time spawn cost is recorded separately in the JSON
    payload rather than smeared into the per-round comparison (the
    ``parallel`` contender has no analogous one-time cost: it pays its
    pool fork inside every round, which is exactly what is being
    measured).
    """
    engine = ShmEngine(grid, workers=workers)
    engine.prepare([rule])
    start = time.perf_counter()
    engine.apply_rule(engine.store(labels), rule)
    spawn_seconds = time.perf_counter() - start
    return engine, spawn_seconds


def _run_shm_schedule(engine, initial, rule, rounds):
    # Each repetition restarts from the same initial store; applications
    # never mutate their input, so the store is reusable.
    current = initial
    for _ in range(rounds):
        current = engine.apply_rule(current, rule)
    return current.to_dict()


def test_shm_engine_amortises_fork_cost_on_512_torus(benchmark, bench_json):
    grid = ToroidalGrid.square(SIDE)
    rule = _signature_rule(grid.node_count)
    labels = _labels(grid)
    # Warm the shared index tables so neither contender pays first-touch
    # table construction inside its timing, adopt the initial labelling
    # into both engines' stores, then spawn the pool.
    GridIndexer.for_grid(grid).warm_ball_tables({(1, "l1")})
    parallel_engine = ParallelEngine(grid, workers=WORKERS)
    parallel_store = parallel_engine.store(labels)
    shm_engine, spawn_seconds = _warm_shm_engine(grid, labels, rule, WORKERS)
    shm_store = shm_engine.store(labels)

    def measure():
        parallel_seconds = _best_of(
            REPETITIONS,
            lambda: _run_parallel_schedule(
                parallel_engine, parallel_store, rule, ROUNDS
            ),
        )
        shm_seconds = _best_of(
            REPETITIONS,
            lambda: _run_shm_schedule(shm_engine, shm_store, rule, ROUNDS),
        )
        return parallel_seconds, shm_seconds

    parallel_seconds, shm_seconds = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = parallel_seconds / shm_seconds
    floor = _speedup_floor(WORKERS)

    print(
        f"\n{SIDE}x{SIDE} torus, {ROUNDS}-round schedule of a radius-1 "
        f"non-compilable rule, {WORKERS} workers on {CPUS} CPUs "
        f"(best of {REPETITIONS}):\n"
        f"  parallel (fork per round)   {parallel_seconds * 1000:8.1f} ms\n"
        f"  shm (one persistent pool)   {shm_seconds * 1000:8.1f} ms\n"
        f"  pool spawn (once)           {spawn_seconds * 1000:8.1f} ms\n"
        f"  speedup                     {speedup:8.2f}x  (floor: {floor or 'n/a'})"
    )
    bench_json(
        {
            "side": SIDE,
            "rounds": ROUNDS,
            "workers": WORKERS,
            "cpus": CPUS,
            "parallel_seconds": parallel_seconds,
            "shm_seconds": shm_seconds,
            "spawn_seconds": spawn_seconds,
            "speedup": speedup,
            "floor": floor,
            # Resilience telemetry: a healthy benchmark run heals nothing
            # and degrades nothing — nonzero values flag an environment
            # where the measurement itself is suspect.
            "pool_heals": shm_engine.pool_heals,
            "degrade_events": len(shm_engine.degrade_events),
        }
    )

    # Byte-identical results, and the core-gated amortisation floor.
    try:
        assert _run_shm_schedule(
            shm_engine, shm_store, rule, 2
        ) == _run_parallel_schedule(parallel_engine, parallel_store, rule, 2)
    finally:
        shm_engine.close()
    if floor is not None:
        assert speedup >= floor, (
            f"shm tier only {speedup:.2f}x faster than per-round forks "
            f"({WORKERS} workers, {CPUS} CPUs, {ROUNDS} rounds)"
        )


@pytest.mark.slow
def test_shm_engine_side_sweep(benchmark, bench_json):
    """Amortisation sweep over torus sides 256-2048.

    Charts how the per-round fork tax of the parallel tier grows with the
    parent's table footprint (fork copies page tables, results pickle at
    O(n)) while the shm tier's barrier stays O(workers) — the regime
    opened here (sides >= 1024) is what the separation plots need.
    """

    def sweep():
        rows = []
        for side in SWEEP_SIDES:
            grid = ToroidalGrid.square(side)
            rule = _signature_rule(grid.node_count)
            labels = _labels(grid)
            GridIndexer.for_grid(grid).warm_ball_tables({(1, "l1")})
            parallel_engine = ParallelEngine(grid, workers=WORKERS)
            parallel_store = parallel_engine.store(labels)
            parallel_seconds = _best_of(
                1,
                lambda: _run_parallel_schedule(
                    parallel_engine, parallel_store, rule, SWEEP_ROUNDS
                ),
            )
            engine, spawn_seconds = _warm_shm_engine(grid, labels, rule, WORKERS)
            try:
                store = engine.store(labels)
                shm_seconds = _best_of(
                    1,
                    lambda: _run_shm_schedule(engine, store, rule, SWEEP_ROUNDS),
                )
            finally:
                engine.close()
            rows.append((side, parallel_seconds, shm_seconds, spawn_seconds))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(
        f"\n{WORKERS} workers on {CPUS} CPUs, {SWEEP_ROUNDS}-round schedules\n"
        f"side  parallel (ms)  shm (ms)  spawn (ms)  speedup"
    )
    for side, parallel_seconds, shm_seconds, spawn_seconds in rows:
        print(
            f"{side:4d}  {parallel_seconds * 1000:13.1f}"
            f"  {shm_seconds * 1000:8.1f}"
            f"  {spawn_seconds * 1000:10.1f}"
            f"  {parallel_seconds / shm_seconds:6.2f}x"
        )
    bench_json(
        {
            "rounds": SWEEP_ROUNDS,
            "workers": WORKERS,
            "cpus": CPUS,
            "sweep": [
                {
                    "side": side,
                    "parallel_seconds": parallel_seconds,
                    "shm_seconds": shm_seconds,
                    "spawn_seconds": spawn_seconds,
                    "speedup": parallel_seconds / shm_seconds,
                }
                for side, parallel_seconds, shm_seconds, spawn_seconds in rows
            ],
        }
    )
    # Only the headline 512 configuration carries a floor: the larger
    # sides chart the regime honestly (on memory-starved or oversubscribed
    # machines the 2048 rows become bandwidth-bound for both contenders
    # and the ratio is machine-dependent), they do not gate CI.
    floor = _speedup_floor(WORKERS)
    if floor is not None:
        for side, parallel_seconds, shm_seconds, _ in rows:
            if side == 512:
                assert parallel_seconds / shm_seconds >= floor, (
                    f"side {side}: only "
                    f"{parallel_seconds / shm_seconds:.2f}x"
                )
