"""E6 — Figure 1 / Theorem 2: the normal form ``A' ∘ S_k`` in action.

Two comparisons are made for 4-colouring:

* the synthesised normal-form algorithm (anchors + finite lookup rule)
  against the explicit Theorem 4 construction — both produce verified
  4-colourings; the normal form is the practical route, exactly as in the
  paper's Section 7;
* the cost split between the problem-independent part ``S_k`` (anchors,
  the only Θ(log* n) ingredient) and the problem-specific constant-radius
  rule ``A'``.
"""

import pytest

from repro.analysis.experiments import ExperimentTable
from repro.colouring.vertex4 import four_colouring
from repro.core.verifier import verify_proper_vertex_colouring
from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.speedup.voronoi import compute_voronoi_decomposition, local_identifier_assignment
from repro.symmetry.mis import compute_anchors
from repro.synthesis.pretrained import load_four_colouring_algorithm


@pytest.mark.slow
def test_normal_form_cost_split(benchmark, bench_json, medium_grid):
    grid, identifiers = medium_grid
    algorithm = load_four_colouring_algorithm()

    result = benchmark(lambda: algorithm.run(grid, identifiers))
    bench_json(
        {
            "anchor_rounds": result.metadata["anchor_rounds"],
            "rule_radius": result.metadata["rule_radius"],
            "anchor_count": result.metadata["anchor_count"],
            "total_rounds": result.rounds,
        }
    )

    table = ExperimentTable(
        "E6a",
        "Figure 1: cost split of the normal form A' ∘ S_k (4-colouring, k = 3)",
        ["component", "rounds", "note"],
    )
    table.add_row(component="S_k (anchors: MIS of G^(3))", rounds=result.metadata["anchor_rounds"],
                  note="the only Θ(log* n) part")
    table.add_row(component="A' (7×5 lookup rule)", rounds=result.metadata["rule_radius"],
                  note=f"finite table with {result.metadata['anchor_count']} anchors placed")
    table.add_row(component="total", rounds=result.rounds, note="")
    table.show()
    assert verify_proper_vertex_colouring(grid, result.node_labels, 4).valid


def test_local_identifiers_of_theorem_2(benchmark, medium_grid):
    grid, identifiers = medium_grid

    def build():
        anchors = compute_anchors(grid, identifiers, k=4)
        decomposition = compute_voronoi_decomposition(grid, anchors.members, search_radius=4)
        local_ids = local_identifier_assignment(grid, decomposition, uniqueness_radius=2)
        return anchors, decomposition, local_ids

    anchors, decomposition, local_ids = benchmark.pedantic(build, rounds=1, iterations=1)
    table = ExperimentTable(
        "E6b",
        "Theorem 2 ingredients: Voronoi tiles and locally unique identifiers",
        ["anchors", "largest tile", "largest tile radius", "distinct local ids"],
    )
    sizes = decomposition.tile_sizes()
    table.add_row(
        anchors=len(anchors.members),
        **{
            "largest tile": max(sizes.values()),
            "largest tile radius": decomposition.max_tile_radius(grid),
            "distinct local ids": len(set(local_ids.values())),
        },
    )
    table.add_note("no identifier repeats within distance k/2 — the property the simulation of Theorem 2 needs")
    table.show()


@pytest.mark.slow
def test_theorem4_construction_versus_normal_form(benchmark):
    grid = ToroidalGrid.square(64)
    identifiers = random_identifiers(grid, seed=1)
    normal_form = load_four_colouring_algorithm()

    def run_both():
        explicit = four_colouring(grid, identifiers, ell=10, max_ell=10, radius_factor=3)
        composed = normal_form.run(grid, identifiers)
        return explicit, composed

    explicit, composed = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = ExperimentTable(
        "E6c",
        "4-colouring a 64×64 torus: explicit Theorem 4 construction vs synthesised normal form",
        ["algorithm", "valid", "rounds", "anchors"],
    )
    table.add_row(
        algorithm="Theorem 4 (ℓ=10, radii + parity decomposition)",
        valid=verify_proper_vertex_colouring(grid, explicit.node_labels, 4).valid,
        rounds=explicit.rounds,
        anchors=explicit.metadata["anchor_count"],
    )
    table.add_row(
        algorithm="normal form A' ∘ S_3 (synthesised)",
        valid=verify_proper_vertex_colouring(grid, composed.node_labels, 4).valid,
        rounds=composed.rounds,
        anchors=composed.metadata["anchor_count"],
    )
    table.add_note("both are Θ(log* n) algorithms; the synthesised one has far smaller constants")
    table.show()
