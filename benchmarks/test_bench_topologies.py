"""Benchmark: engine fast paths on the non-torus topologies.

The acceptance benchmark of the topology substrate: on a 4096-node
directed cycle and a 4096-node random 3-regular graph, one application of
a radius-2 rule through the indexed tier's precomputed ball tables must
beat the per-node dict traversal (:func:`repro.grid.topology.apply_rule_dict`)
by the same kind of margin the torus tables deliver — proving the new
families ride the same fast paths rather than a compatibility shim.  The
array tier's compiled lookup table is measured on the cycle as well (a
3-letter alphabet over a 5-slot window compiles into 243 entries).  Run
with ``-s`` to see the measured table.
"""

import os
import time

from repro.grid.topology import (
    DirectedCycleTopology,
    apply_rule_dict,
    random_regular_graph,
)
from repro.local_model.algorithm import FunctionRule
from repro.local_model.engine import ArrayEngine, IndexedEngine

NODES = 4096
RADIUS = 2
REPETITIONS = 3


def _best_of(repetitions, run):
    timings = []
    for _ in range(repetitions):
        start = time.perf_counter()
        run()
        timings.append(time.perf_counter() - start)
    return min(timings)


def test_indexed_tier_speedup_on_topologies(benchmark, bench_json):
    rule = FunctionRule(RADIUS, lambda view: min(view.values()))
    cases = [
        ("cycle", DirectedCycleTopology.shared(NODES)),
        ("regular", random_regular_graph(NODES, 3, seed=7)),
    ]
    prepared = []
    for name, topology in cases:
        labels = {
            node: (node * 2654435761) % 997 for node in topology.nodes
        }
        engine = IndexedEngine(topology)
        engine.indexer.ball_getters(RADIUS, "l1")  # build tables outside timing
        prepared.append((name, topology, labels, engine, engine.store(labels)))

    def measure():
        rows = []
        for name, topology, labels, engine, store in prepared:
            dict_seconds = _best_of(
                REPETITIONS, lambda: apply_rule_dict(topology, labels, rule)
            )
            fast_seconds = _best_of(
                REPETITIONS, lambda: engine.apply_rule(store, rule)
            )
            rows.append((name, dict_seconds, fast_seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    print(f"\n{NODES}-node topologies, radius-{RADIUS} rule, one application "
          f"(best of {REPETITIONS}):")
    print("family     dict (ms)  indexed (ms)  speedup")
    for name, dict_seconds, fast_seconds in rows:
        print(
            f"{name:8s} {dict_seconds * 1000:9.1f}  {fast_seconds * 1000:12.1f}"
            f"  {dict_seconds / fast_seconds:6.1f}x"
        )

    # Identical outputs on both families, then the speed floor.
    for name, topology, labels, engine, store in prepared:
        assert engine.apply_rule(store, rule).to_dict() == apply_rule_dict(
            topology, labels, rule
        ), name
    # The cycle's 5-slot windows keep its dict traversal comparatively
    # cheap (measured ~2.8x locally; the regular graph's 10-slot balls
    # reach ~4x), so the floor is set by the cycle.
    floor = 1.5 if os.environ.get("CI") else 2.0
    bench_json(
        {
            "nodes": NODES,
            "radius": RADIUS,
            "floor": floor,
            "families": [
                {
                    "family": name,
                    "dict_seconds": dict_seconds,
                    "indexed_seconds": fast_seconds,
                    "speedup": dict_seconds / fast_seconds,
                }
                for name, dict_seconds, fast_seconds in rows
            ],
        }
    )
    for name, dict_seconds, fast_seconds in rows:
        speedup = dict_seconds / fast_seconds
        assert speedup >= floor, (
            f"indexed tier only {speedup:.1f}x faster than the dict path "
            f"on the {name} family"
        )


def test_compiled_table_tier_on_cycle(benchmark, bench_json):
    """The array tier's |Σ|^ball lookup table compiles for cycle windows."""
    topology = DirectedCycleTopology.shared(NODES)
    alphabet = 3  # 3^5 = 243 table entries over the radius-2 window
    rule = FunctionRule(RADIUS, lambda view: max(view.values()) - min(view.values()))
    labels = {node: node % alphabet for node in topology.nodes}

    engine = ArrayEngine(topology)
    store = engine.store(labels)
    assert engine.rule_tier(rule) == "table"

    def measure():
        return _best_of(REPETITIONS, lambda: engine.apply_rule(store, rule))

    table_seconds = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\n{NODES}-node cycle, radius-{RADIUS} rule, compiled table tier: "
        f"{table_seconds * 1000:.1f} ms"
    )

    assert engine.apply_rule(store, rule).to_dict() == apply_rule_dict(
        topology, labels, rule
    )
    bench_json(
        {
            "nodes": NODES,
            "radius": RADIUS,
            "alphabet": alphabet,
            "table_seconds": table_seconds,
        }
    )
