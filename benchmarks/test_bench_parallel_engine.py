"""Benchmark: parallel engine tier versus the indexed list path.

This is the acceptance benchmark of the fourth engine tier, aimed at the
rules the array tier *cannot* vectorise: alphabets far too large to
compile into a lookup table and no ``update_batch`` hook, so every node
costs one Python call no matter the tier.  Sharding that scan across
forked worker processes is the only remaining lever; the target is a
>= 2x speedup over the indexed tier on one 256x256 radius-2 round with 4
workers (measured on hardware with at least 4 CPUs — the floor scales
down with the cores actually available, and a single-CPU runner records
the honest ratio without asserting one).

The slow sweep extends the measurement over sides 128-512 and worker
counts 1/2/4/8.  Results are written as machine-readable ``BENCH_*.json``
files (see ``benchmarks/conftest.py``) and uploaded as CI artifacts.
"""

import os
import time

import pytest

from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import FunctionRule
from repro.local_model.engine import IndexedEngine, ParallelEngine
from repro.local_model.store import WORKERS_VARIABLE, parallel_workers

SIDE = 256
RADIUS = 2
REPETITIONS = 2
# The acceptance configuration is 4 workers; a REPRO_WORKERS override
# (e.g. the CI 2-worker smoke job) repoints the whole quick benchmark.
WORKERS = parallel_workers() if os.environ.get(WORKERS_VARIABLE) else 4
SWEEP_SIDES = (128, 256, 384, 512)
SWEEP_WORKERS = (1, 2, 4, 8)

CPUS = os.cpu_count() or 1


def _speedup_floor(workers):
    """The asserted floor given the machine's CPU count.

    Wall-clock parallelism cannot exceed the available cores: demand the
    headline 2x only where 4 cores back 4 workers, a modest win on 2-3
    cores, and nothing on a single CPU (the ratio is still recorded).
    """
    usable = min(workers, CPUS)
    if usable >= 4:
        return 1.3 if os.environ.get("CI") else 2.0
    if usable >= 2:
        return 1.1
    return None


def _identifier_rule():
    """A radius-2 signature rule over an identifier-sized alphabet.

    |Σ| is the node count, so |Σ|^13 is astronomically past any table
    threshold, and no ``update_batch`` hook is declared: every engine
    tier but ``parallel`` runs it one Python call per node.  The body is
    an order-invariant rank-weighted rolling hash of the ball — the shape
    of real non-compilable rules (view normalisation plus per-node
    arithmetic), not a two-builtin toy that would understate the Python
    work a round actually carries.
    """

    def update(view):
        ranked = sorted(view.items(), key=lambda item: (item[1], item[0]))
        signature = 0
        for position, (_, value) in enumerate(ranked):
            signature = (signature * 31 + value * (position + 1)) % 1_000_003
        return signature

    return FunctionRule(RADIUS, update)


def _labels(grid):
    side = grid.sides[0]
    return {node: (node[0] * side + node[1]) * 31 % (grid.node_count * 2) for node in grid.nodes()}


def _best_of(repetitions, run):
    timings = []
    for _ in range(repetitions):
        start = time.perf_counter()
        run()
        timings.append(time.perf_counter() - start)
    return min(timings)


def _warm_engines(grid, labels, rule, workers):
    """Build the indexed baseline and the parallel engine, tables warmed."""
    indexed = IndexedEngine(grid)
    indexed.indexer.ball_getters(RADIUS, "l1")
    indexed_store = indexed.store(labels)
    parallel = ParallelEngine(grid, workers=workers)
    parallel_store = parallel.store(labels)
    expected = "sharded" if workers > 1 else "list"
    assert parallel.rule_tier(rule, parallel_store) == expected
    return indexed, indexed_store, parallel, parallel_store


def test_parallel_engine_speedup_on_256_torus(benchmark, bench_json):
    grid = ToroidalGrid.square(SIDE)
    rule = _identifier_rule()
    labels = _labels(grid)
    indexed, indexed_store, parallel, parallel_store = _warm_engines(
        grid, labels, rule, WORKERS
    )

    def measure():
        indexed_seconds = _best_of(
            REPETITIONS, lambda: indexed.apply_rule(indexed_store, rule)
        )
        parallel_seconds = _best_of(
            REPETITIONS, lambda: parallel.apply_rule(parallel_store, rule)
        )
        return indexed_seconds, parallel_seconds

    indexed_seconds, parallel_seconds = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = indexed_seconds / parallel_seconds
    floor = _speedup_floor(WORKERS)

    print(
        f"\n{SIDE}x{SIDE} torus, radius-{RADIUS} non-compilable rule, "
        f"{WORKERS} workers on {CPUS} CPUs (best of {REPETITIONS}):\n"
        f"  indexed list path {indexed_seconds * 1000:8.1f} ms\n"
        f"  parallel sharded  {parallel_seconds * 1000:8.1f} ms\n"
        f"  speedup           {speedup:8.2f}x  (floor: {floor or 'n/a'})"
    )
    bench_json(
        {
            "side": SIDE,
            "radius": RADIUS,
            "workers": WORKERS,
            "cpus": CPUS,
            "indexed_seconds": indexed_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "floor": floor,
        }
    )

    # Byte-identical to the indexed tier, and the core-gated floor.
    assert (
        parallel.apply_rule(parallel_store, rule).to_dict()
        == indexed.apply_rule(indexed_store, rule).to_dict()
    )
    if floor is not None:
        assert speedup >= floor, (
            f"parallel tier only {speedup:.2f}x faster than the indexed path "
            f"({WORKERS} workers, {CPUS} CPUs)"
        )


@pytest.mark.slow
def test_parallel_engine_worker_sweep(benchmark, bench_json):
    """Speedup sweep over torus sides 128-512 and worker counts 1/2/4/8.

    The 1-worker column pins the degenerate serial configuration (it must
    track the indexed baseline, not trail it by more than the store
    adoption overhead); the multi-worker columns chart how the sharding
    gain scales with the node count — fork+merge overhead amortises as
    rounds grow past ~100 ms.
    """
    rule = _identifier_rule()

    def sweep():
        rows = []
        for side in SWEEP_SIDES:
            grid = ToroidalGrid.square(side)
            labels = _labels(grid)
            baseline = IndexedEngine(grid)
            baseline.indexer.ball_getters(RADIUS, "l1")
            baseline_store = baseline.store(labels)
            indexed_seconds = _best_of(
                REPETITIONS, lambda: baseline.apply_rule(baseline_store, rule)
            )
            reference = baseline.apply_rule(baseline_store, rule).to_dict()
            for workers in SWEEP_WORKERS:
                engine = ParallelEngine(grid, workers=workers)
                store = engine.store(labels)
                parallel_seconds = _best_of(
                    REPETITIONS, lambda: engine.apply_rule(store, rule)
                )
                assert engine.apply_rule(store, rule).to_dict() == reference
                rows.append((side, workers, indexed_seconds, parallel_seconds))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n{CPUS} CPUs\nside  workers  indexed (ms)  parallel (ms)  speedup")
    for side, workers, indexed_seconds, parallel_seconds in rows:
        print(
            f"{side:4d}  {workers:7d}  {indexed_seconds * 1000:12.1f}"
            f"  {parallel_seconds * 1000:13.1f}"
            f"  {indexed_seconds / parallel_seconds:6.2f}x"
        )
    bench_json(
        {
            "radius": RADIUS,
            "cpus": CPUS,
            "sweep": [
                {
                    "side": side,
                    "workers": workers,
                    "indexed_seconds": indexed_seconds,
                    "parallel_seconds": parallel_seconds,
                    "speedup": indexed_seconds / parallel_seconds,
                }
                for side, workers, indexed_seconds, parallel_seconds in rows
            ],
        }
    )
    for side, workers, indexed_seconds, parallel_seconds in rows:
        floor = _speedup_floor(workers)
        if floor is not None and side >= 256:
            assert indexed_seconds / parallel_seconds >= floor, (
                f"side {side}, {workers} workers: only "
                f"{indexed_seconds / parallel_seconds:.2f}x"
            )
