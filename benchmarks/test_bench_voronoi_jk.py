"""Benchmark: indexed vs dict engines for Voronoi and j,k-independent sets.

Acceptance benchmarks of the PR 2 migration: on a 64×64 torus the indexed
engine must be at least 3× faster than the dict reference for both the
Theorem 2 Voronoi decomposition and the Definition 18 j,k-independent-set
construction, while producing byte-identical results.  The slow sweep
extends the comparison to sides 96 and 128 — the sizes at which the
``Θ(log* n)`` vs ``Θ(n)`` separation plots are regenerated.

As with the PR 1 engine benchmark, all shared precomputation (index
tables, cover-free point sets) is warmed outside the timed region: the
sweeps this reproduction runs revisit the same grids and field parameters
many times, so the warm per-call cost is the quantity that matters.
Run with ``-s`` to see the measured tables.
"""

import os
import time

import pytest

from repro.colouring.jk_independent import compute_jk_independent_set
from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.speedup.voronoi import compute_voronoi_decomposition
from repro.symmetry.mis import compute_anchors

SIDE = 64
K = 2
REPETITIONS = 3
# One ruling member per row: the spacing-th row power is complete, which is
# the regime the paper's edge colouring uses on simulable grid sizes.
SPACING = SIDE // 2 + 1
MOVEMENT_CAP = SPACING - 2

# Wall-clock ratios are noisy on shared CI runners; the full 3x floor is
# enforced locally (measured ~5x for j,k and ~14x for Voronoi).
FLOOR = 2.0 if os.environ.get("CI") else 3.0


def _best_of(repetitions, run):
    timings = []
    for _ in range(repetitions):
        start = time.perf_counter()
        run()
        timings.append(time.perf_counter() - start)
    return min(timings)


def test_voronoi_decomposition_speedup_on_64_torus(benchmark, bench_json):
    grid = ToroidalGrid.square(SIDE)
    identifiers = random_identifiers(grid, seed=7)
    anchors = compute_anchors(grid, identifiers, k=K, norm="l1")

    # Warm both engines outside the timing: index/shell tables on the
    # indexed side, the ball-offset cache on the dict side.
    reference = compute_voronoi_decomposition(grid, anchors.members, engine="dict")
    indexed = compute_voronoi_decomposition(grid, anchors.members, engine="indexed")
    assert reference.owner == indexed.owner
    assert reference.local_coordinates == indexed.local_coordinates

    def measure():
        dict_seconds = _best_of(
            REPETITIONS,
            lambda: compute_voronoi_decomposition(grid, anchors.members, engine="dict"),
        )
        indexed_seconds = _best_of(
            REPETITIONS,
            lambda: compute_voronoi_decomposition(
                grid, anchors.members, engine="indexed"
            ),
        )
        return dict_seconds, indexed_seconds

    dict_seconds, indexed_seconds = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = dict_seconds / indexed_seconds
    print(
        f"\n{SIDE}x{SIDE} Voronoi decomposition of the G^({K}) MIS "
        f"({len(anchors.members)} anchors, best of {REPETITIONS}):\n"
        f"  dict engine    {dict_seconds * 1000:8.1f} ms\n"
        f"  indexed engine {indexed_seconds * 1000:8.1f} ms\n"
        f"  speedup        {speedup:8.1f}x"
    )
    bench_json(
        {
            "side": SIDE,
            "k": K,
            "anchors": len(anchors.members),
            "dict_seconds": dict_seconds,
            "indexed_seconds": indexed_seconds,
            "speedup": speedup,
            "floor": FLOOR,
        }
    )
    assert speedup >= FLOOR, f"indexed Voronoi only {speedup:.1f}x faster than dict"


def test_jk_independent_speedup_on_64_torus(benchmark, bench_json):
    grid = ToroidalGrid.square(SIDE)
    identifiers = random_identifiers(grid, seed=7)
    kwargs = dict(axis=0, k=K, spacing=SPACING, movement_cap=MOVEMENT_CAP)

    # Warm both engines outside the timing (cover-free point sets and
    # masks, row/ball tables) and pin byte-identical results.
    reference = compute_jk_independent_set(grid, identifiers, engine="dict", **kwargs)
    indexed = compute_jk_independent_set(grid, identifiers, engine="indexed", **kwargs)
    assert reference == indexed
    assert reference.verify(grid) == []

    def measure():
        dict_seconds = _best_of(
            REPETITIONS,
            lambda: compute_jk_independent_set(
                grid, identifiers, engine="dict", **kwargs
            ),
        )
        indexed_seconds = _best_of(
            REPETITIONS,
            lambda: compute_jk_independent_set(
                grid, identifiers, engine="indexed", **kwargs
            ),
        )
        return dict_seconds, indexed_seconds

    dict_seconds, indexed_seconds = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = dict_seconds / indexed_seconds
    print(
        f"\n{SIDE}x{SIDE} j,k-independent set (k={K}, spacing={SPACING}, "
        f"{len(reference.members)} members, best of {REPETITIONS}):\n"
        f"  dict engine    {dict_seconds * 1000:8.1f} ms\n"
        f"  indexed engine {indexed_seconds * 1000:8.1f} ms\n"
        f"  speedup        {speedup:8.1f}x"
    )
    bench_json(
        {
            "side": SIDE,
            "k": K,
            "spacing": SPACING,
            "members": len(reference.members),
            "dict_seconds": dict_seconds,
            "indexed_seconds": indexed_seconds,
            "speedup": speedup,
            "floor": FLOOR,
        }
    )
    assert speedup >= FLOOR, f"indexed j,k only {speedup:.1f}x faster than dict"


@pytest.mark.slow
def test_voronoi_jk_speedup_sweep(benchmark):
    """Dict-vs-indexed sweep at sides 64/96/128 (ROADMAP's ``side >= 128``).

    The indexed advantage persists as the torus grows — these are the
    sizes the separation plots are regenerated at.
    """

    def sweep():
        rows = []
        for side in (64, 96, 128):
            grid = ToroidalGrid.square(side)
            identifiers = random_identifiers(grid, seed=7)
            spacing = side // 2 + 1
            kwargs = dict(axis=0, k=K, spacing=spacing, movement_cap=spacing - 2)
            anchors = compute_anchors(grid, identifiers, k=K)
            # Warm both engines, pinning identical outputs as we go.
            assert compute_voronoi_decomposition(
                grid, anchors.members, engine="dict"
            ).owner == compute_voronoi_decomposition(
                grid, anchors.members, engine="indexed"
            ).owner
            assert compute_jk_independent_set(
                grid, identifiers, engine="dict", **kwargs
            ) == compute_jk_independent_set(grid, identifiers, engine="indexed", **kwargs)
            voronoi_dict = _best_of(
                2,
                lambda: compute_voronoi_decomposition(
                    grid, anchors.members, engine="dict"
                ),
            )
            voronoi_indexed = _best_of(
                2,
                lambda: compute_voronoi_decomposition(
                    grid, anchors.members, engine="indexed"
                ),
            )
            jk_dict = _best_of(
                2,
                lambda: compute_jk_independent_set(
                    grid, identifiers, engine="dict", **kwargs
                ),
            )
            jk_indexed = _best_of(
                2,
                lambda: compute_jk_independent_set(
                    grid, identifiers, engine="indexed", **kwargs
                ),
            )
            rows.append((side, voronoi_dict, voronoi_indexed, jk_dict, jk_indexed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nside    voronoi dict/indexed (ms)      jk dict/indexed (ms)")
    for side, voronoi_dict, voronoi_indexed, jk_dict, jk_indexed in rows:
        print(
            f"{side:4d}    {voronoi_dict * 1000:8.1f} / {voronoi_indexed * 1000:8.1f} "
            f"({voronoi_dict / voronoi_indexed:5.1f}x)   "
            f"{jk_dict * 1000:8.1f} / {jk_indexed * 1000:8.1f} "
            f"({jk_dict / jk_indexed:5.1f}x)"
        )
    assert all(vd > vi and jd > ji for _, vd, vi, jd, ji in rows)
