"""E1 — Figure 2: classification and synthesis on directed cycles.

Regenerates the figure's classification (2-colouring global, 3-colouring and
maximal independent set Θ(log* n), independent set O(1)) and times the exact
classifier plus the synthesised optimal algorithms.
"""

from repro.analysis.experiments import ExperimentTable
from repro.core.complexity import ComplexityClass
from repro.cycles.catalog import (
    cycle_colouring_problem,
    cycle_independent_set_problem,
    cycle_maximal_independent_set_problem,
    cycle_maximal_matching_problem,
)
from repro.cycles.classifier import classify_cycle_problem
from repro.cycles.lcl1d import verify_cycle_labelling
from repro.cycles.neighbourhood_graph import build_neighbourhood_graph
from repro.cycles.synthesis import synthesise_cycle_algorithm
from repro.grid.identifiers import cycle_identifiers

FIGURE_2_PROBLEMS = [
    (cycle_colouring_problem(2), ComplexityClass.GLOBAL),
    (cycle_colouring_problem(3), ComplexityClass.LOG_STAR),
    (cycle_maximal_independent_set_problem(), ComplexityClass.LOG_STAR),
    (cycle_independent_set_problem(), ComplexityClass.CONSTANT),
]


def test_fig2_classification_table(benchmark, bench_json):
    def classify_all():
        return [classify_cycle_problem(problem) for problem, _expected in FIGURE_2_PROBLEMS]

    results = benchmark(classify_all)
    bench_json(
        {
            "problems": [
                {
                    "problem": problem.name,
                    "paper": expected.value,
                    "reproduced": result.complexity.value,
                }
                for (problem, expected), result in zip(FIGURE_2_PROBLEMS, results)
            ]
        }
    )

    table = ExperimentTable(
        "E1",
        "Figure 2 — cycle LCL classification",
        ["problem", "paper", "reproduced", "flexible state", "flexibility"],
    )
    for (problem, expected), result in zip(FIGURE_2_PROBLEMS, results):
        assert result.complexity is expected
        table.add_row(
            problem=problem.name,
            paper=expected.value,
            reproduced=result.complexity.value,
            **{
                "flexible state": result.evidence.get("witness_state", "-"),
                "flexibility": result.evidence.get("witness_flexibility", "-"),
            },
        )
    mis_graph = build_neighbourhood_graph(cycle_maximal_independent_set_problem())
    lengths = sorted(mis_graph.closed_walk_lengths((0, 0), 9))
    table.add_note(
        f"MIS state 00 has closed walks of lengths {lengths} — the paper quotes 3 and 5 "
        "and concludes every length above their Frobenius bound is realisable"
    )
    table.show()


def test_fig2_synthesised_algorithms_on_cycles(benchmark):
    problems = [
        cycle_colouring_problem(3),
        cycle_maximal_independent_set_problem(),
        cycle_maximal_matching_problem(),
    ]
    algorithms = [synthesise_cycle_algorithm(problem) for problem in problems]
    identifiers = {n: cycle_identifiers(n, seed=3) for n in (64, 256, 1024)}

    def run_all():
        rounds = {}
        for problem, algorithm in zip(problems, algorithms):
            for n, ids in identifiers.items():
                labels, used = algorithm.run(ids)
                assert verify_cycle_labelling(problem, labels) == []
                rounds[(problem.name, n)] = used
        return rounds

    rounds = benchmark(run_all)

    table = ExperimentTable(
        "E1b",
        "Synthesised optimal algorithms on cycles: rounds stay flat in n",
        ["problem", "n=64", "n=256", "n=1024"],
    )
    for problem in problems:
        table.add_row(
            problem=problem.name,
            **{f"n={n}": rounds[(problem.name, n)] for n in (64, 256, 1024)},
        )
    table.add_note("Θ(log* n): a 16x increase in n leaves the round counts almost unchanged")
    table.show()
