"""E5 — Section 11, Theorem 22: the complete X-orientation classification.

Regenerates the classification of all 31 non-empty subsets X ⊆ {0,...,4},
cross-checks the global/unsolvable cases against exhaustive SAT searches on
small tori, and runs the synthesised {1,3,4}-orientation algorithm.
"""

import pytest

from repro.analysis.experiments import ExperimentTable
from repro.core.complexity import ComplexityClass
from repro.core.verifier import verify_node_labelling
from repro.errors import UnsolvableInstanceError
from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.orientation.algorithms import (
    solve_x_orientation_globally,
    synthesise_x_orientation_algorithm,
)
from repro.orientation.classify import counting_obstruction, orientation_classification_table
from repro.orientation.problems import x_orientation_problem


def test_theorem_22_classification_table(benchmark, bench_json):
    table_rows = benchmark(orientation_classification_table)

    counts = {}
    table = ExperimentTable(
        "E5a",
        "Theorem 22: X-orientation classification (all 31 non-empty X)",
        ["X", "complexity", "reason"],
    )
    for values, result in table_rows:
        counts[result.complexity] = counts.get(result.complexity, 0) + 1
        table.add_row(
            X="{" + ",".join(map(str, values)) + "}",
            complexity=result.complexity.value,
            reason=str(result.evidence.get("reason", ""))[:70],
        )
    table.add_note(f"class sizes: {{ {', '.join(f'{k.value}: {v}' for k, v in counts.items())} }}")
    table.show()
    bench_json(
        {
            "classified": len(table_rows),
            "class_sizes": {k.value: v for k, v in counts.items()},
        }
    )
    # Every set containing 2 is constant: 16 of the 31.
    assert counts[ComplexityClass.CONSTANT] == 16
    assert counts[ComplexityClass.LOG_STAR] == 3  # {1,3,4}, {0,1,3}, {0,1,3,4}
    assert counts[ComplexityClass.GLOBAL] == 12


@pytest.mark.slow
def test_global_cases_cross_checked_by_exhaustive_search(benchmark):
    cases = [((1, 3), 5), ((1, 3), 4), ((0, 4), 5), ((0, 4), 4), ((0, 3, 4), 5)]

    def check():
        rows = []
        for values, n in cases:
            grid = ToroidalGrid.square(n)
            try:
                solve_x_orientation_globally(grid, set(values))
                solvable = True
            except UnsolvableInstanceError:
                solvable = False
            rows.append((values, n, solvable, counting_obstruction(set(values), n) is not None))
        return rows

    rows = benchmark.pedantic(check, rounds=1, iterations=1)
    table = ExperimentTable(
        "E5b",
        "Global X-orientations: exhaustive solvability on small tori",
        ["X", "n", "solvable", "counting obstruction"],
    )
    for values, n, solvable, obstruction in rows:
        table.add_row(
            X="{" + ",".join(map(str, values)) + "}",
            n=n,
            solvable=solvable,
            **{"counting obstruction": obstruction},
        )
    table.add_note("Lemma 24: no {1,3}-orientation on odd tori; even tori admit one")
    table.show()
    verdicts = {(values, n): solvable for values, n, solvable, _ in rows}
    assert verdicts[((1, 3), 5)] is False
    assert verdicts[((1, 3), 4)] is True
    assert verdicts[((0, 4), 5)] is False
    assert verdicts[((0, 4), 4)] is True


def test_synthesised_134_orientation_round_scaling(benchmark):
    algorithm = synthesise_x_orientation_algorithm({1, 3, 4})
    problem = x_orientation_problem({1, 3, 4})
    sizes = (12, 20, 28)

    def run_sweep():
        rounds = []
        for n in sizes:
            grid = ToroidalGrid.square(n)
            identifiers = random_identifiers(grid, seed=n)
            result = algorithm.run(grid, identifiers)
            assert verify_node_labelling(grid, problem, result.node_labels).valid
            rounds.append(result.rounds)
        return rounds

    rounds = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = ExperimentTable(
        "E5c",
        "Synthesised {1,3,4}-orientation: rounds versus n",
        ["n", "rounds"],
    )
    for n, used in zip(sizes, rounds):
        table.add_row(n=n, rounds=used)
    table.add_note("Θ(log* n): flat round counts, outputs verified on every instance")
    table.show()
    assert max(rounds) - min(rounds) <= 60
