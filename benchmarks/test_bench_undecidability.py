"""E7 — Section 6: the problem family ``L_M`` behind Theorem 3.

For a halting machine the anchored branch is produced in Θ(log* n) style and
accepted by the local checker; for a non-halting machine the anchored branch
is impossible and only the global 3-colouring branch remains.
"""

import pytest

from repro.analysis.experiments import ExperimentTable
from repro.errors import UnsolvableInstanceError
from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.undecidability.lm_problem import check_lm_labelling
from repro.undecidability.lm_solver import solve_lm_globally, solve_lm_locally
from repro.undecidability.turing import halting_machine, non_halting_machine


@pytest.mark.slow
def test_lm_both_branches(benchmark, bench_json):
    # The anchored branch needs anchors at spacing 4(s+1); on a 40×40 torus
    # that accommodates machines halting within a handful of steps (the
    # busier example machine is exercised in examples/undecidability_demo.py
    # and in the unit tests).
    grid = ToroidalGrid.square(40)
    identifiers = random_identifiers(grid, seed=11)
    machines = [halting_machine(), non_halting_machine()]

    def run_all():
        rows = []
        for machine in machines:
            halts = machine.halts_within(64) is not None
            try:
                labels, result = solve_lm_locally(grid, identifiers, machine)
                violations = len(check_lm_labelling(grid, machine, labels))
                rows.append((machine.name, halts, True, violations, result.rounds))
            except UnsolvableInstanceError:
                labels, result = solve_lm_globally(grid, machine)
                violations = len(check_lm_labelling(grid, machine, labels))
                rows.append((machine.name, halts, False, violations, result.rounds))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = ExperimentTable(
        "E7",
        "L_M on a 40×40 torus: the fast branch exists exactly for halting machines",
        ["machine", "halts", "anchored branch used", "checker violations", "rounds"],
    )
    for name, halts, anchored, violations, rounds in rows:
        table.add_row(
            machine=name,
            halts=halts,
            **{"anchored branch used": anchored, "checker violations": violations, "rounds": rounds},
        )
    table.add_note(
        "deciding which machines admit the fast branch is the halting problem — hence Theorem 3"
    )
    table.show()
    bench_json(
        {
            "side": 40,
            "machines": [
                {
                    "machine": name,
                    "halts": halts,
                    "anchored": anchored,
                    "violations": violations,
                    "rounds": rounds,
                }
                for name, halts, anchored, violations, rounds in rows
            ],
        }
    )
    for _name, halts, anchored, violations, _rounds in rows:
        assert violations == 0
        assert anchored == halts
