"""Shared fixtures for the reproduction benchmarks.

Every benchmark regenerates one of the paper's figures or claim-level
artefacts (see the experiment index in ``DESIGN.md`` and the recorded
results in ``EXPERIMENTS.md``).  Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag lets the regenerated tables show up next to the timings.
"""

import pytest

from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid


@pytest.fixture()
def medium_grid():
    """A 24×24 torus with reproducible random identifiers."""
    grid = ToroidalGrid.square(24)
    return grid, random_identifiers(grid, seed=7)
