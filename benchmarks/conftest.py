"""Shared fixtures for the reproduction benchmarks.

Every benchmark regenerates one of the paper's figures or claim-level
artefacts (see the experiment index in ``DESIGN.md`` and the recorded
results in ``EXPERIMENTS.md``).  Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag lets the regenerated tables show up next to the timings.

Machine-readable results
------------------------

Benchmarks that call the :func:`bench_json` fixture additionally write a
``BENCH_<name>.json`` file (timings, sizes, speedup ratios) into the
directory named by the ``BENCH_RESULTS_DIR`` environment variable
(default ``benchmarks/results/``).  CI uploads that directory as a build
artifact, so the perf trajectory of the engine tiers is recorded per run
instead of scrolling away in the job log.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid

RESULTS_DIR_VARIABLE = "BENCH_RESULTS_DIR"


@pytest.fixture()
def medium_grid():
    """A 24×24 torus with reproducible random identifiers."""
    grid = ToroidalGrid.square(24)
    return grid, random_identifiers(grid, seed=7)


@pytest.fixture()
def bench_json(request):
    """Record machine-readable benchmark results.

    Returns a callable ``record(payload, name=None)`` writing
    ``BENCH_<name>.json`` (defaulting to the test name) with the payload
    plus environment metadata, and returning the written path.
    """

    def timing_stats():
        # When the test also used the pytest-benchmark fixture, attach its
        # timing statistics so retrofitted benchmarks only need to record
        # their domain metrics.  Stats exist only after the timed call, so
        # record(...) must run after benchmark(...)/benchmark.pedantic(...).
        fixture = request.node.funcargs.get("benchmark")
        try:
            stats = fixture.stats.stats
            return {
                "mean_seconds": stats.mean,
                "min_seconds": stats.min,
                "max_seconds": stats.max,
                "stddev_seconds": stats.stddev,
                "rounds": stats.rounds,
            }
        except AttributeError:
            return None

    def record(payload, name=None):
        results_dir = Path(
            os.environ.get(
                RESULTS_DIR_VARIABLE, Path(__file__).parent / "results"
            )
        )
        results_dir.mkdir(parents=True, exist_ok=True)
        bench_name = name or request.node.name
        document = {
            "benchmark": bench_name,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "ci": bool(os.environ.get("CI")),
            **payload,
        }
        timing = timing_stats()
        if timing is not None:
            document.setdefault("timing", timing)
        path = results_dir / f"BENCH_{bench_name}.json"
        # Write via a temp file + atomic rename: an interrupted or crashed
        # run then leaves either the previous complete file or none at all,
        # never a truncated JSON document for CI to upload as an artifact.
        scratch = path.with_name(path.name + ".tmp")
        scratch.write_text(json.dumps(document, indent=2, sort_keys=True))
        os.replace(scratch, path)
        return path

    return record
