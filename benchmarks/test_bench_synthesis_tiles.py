"""E2 — Section 7: tile counts and the 4-colouring synthesis instance.

Paper targets reproduced here:

* the complete list of 3×2 tiles for ``k = 1`` (the paper displays 16),
* 2079 tiles for 7×5 windows at ``k = 3``,
* 4-colouring synthesis fails for ``k = 1`` and ``k = 2`` and succeeds at
  ``k = 3`` with 7×5 windows, "with SAT solvers in a matter of seconds"
  (here: the built-in CDCL solver).
"""

import pytest

from repro.analysis.experiments import ExperimentTable
from repro.core.catalog import vertex_colouring_problem
from repro.orientation.problems import x_orientation_problem
from repro.synthesis.synthesiser import synthesise, synthesise_with_budget
from repro.synthesis.tiles import enumerate_tiles


def test_tile_count_3x2_k1(benchmark, bench_json):
    tiles = benchmark(enumerate_tiles, 2, 3, 1)
    bench_json({"window": "3x2", "k": 1, "tiles": len(tiles), "paper_tiles": 16})
    table = ExperimentTable(
        "E2a",
        "Tiles for 3×2 windows at k = 1 (paper displays the full list)",
        ["window", "k", "tiles (paper)", "tiles (reproduced)"],
    )
    table.add_row(window="3×2", k=1, **{"tiles (paper)": 16, "tiles (reproduced)": len(tiles)})
    table.show()
    assert len(tiles) == 16


@pytest.mark.slow
def test_tile_count_7x5_k3(benchmark):
    tiles = benchmark.pedantic(enumerate_tiles, args=(7, 5, 3), rounds=1, iterations=1)
    table = ExperimentTable(
        "E2b",
        "Tiles for 7×5 windows at k = 3",
        ["window", "k", "tiles (paper)", "tiles (reproduced)"],
    )
    table.add_row(window="7×5", k=3, **{"tiles (paper)": 2079, "tiles (reproduced)": len(tiles)})
    table.show()
    assert len(tiles) == 2079


def test_orientation_synthesis_succeeds_at_k1(benchmark):
    problem = x_orientation_problem({1, 3, 4})

    def run():
        return synthesise_with_budget(problem, max_k=1)

    search = benchmark.pedantic(run, rounds=1, iterations=1)
    assert search.succeeded
    table = ExperimentTable(
        "E2c",
        "{1,3,4}-orientation synthesis (Lemma 23: k = 1 suffices)",
        ["k", "window", "tiles", "engine", "succeeded"],
    )
    best = search.best
    table.add_row(k=best.k, window=f"{best.width}×{best.height}", tiles=best.tile_count,
                  engine=best.engine, succeeded=best.success)
    table.show()


@pytest.mark.slow
def test_four_colouring_synthesis_headline(benchmark):
    problem = vertex_colouring_problem(4)

    def run():
        rows = []
        for k, width, height in ((1, 3, 3), (2, 5, 3), (3, 7, 5)):
            outcome = synthesise(problem, k=k, width=width, height=height, engine="sat")
            rows.append(outcome)
        return rows

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ExperimentTable(
        "E2d",
        "4-colouring synthesis across k (paper: k = 1, 2 impossible, k = 3 with 7×5 succeeds)",
        ["k", "window", "tiles", "succeeded", "engine", "SAT conflicts"],
    )
    for outcome in outcomes:
        table.add_row(
            k=outcome.k,
            window=f"{outcome.width}×{outcome.height}",
            tiles=outcome.tile_count,
            succeeded=outcome.success,
            engine=outcome.engine,
            **{"SAT conflicts": outcome.stats.get("conflicts", "-")},
        )
    table.show()
    assert [outcome.success for outcome in outcomes] == [False, False, True]
    assert outcomes[-1].tile_count == 2079
