"""E10 — Appendix A.2 and Lemma 17: bounded-growth speed-up ingredients.

Computes the Lemma 26 thresholds for grid-like growth bounds and several
base localities, and validates the distance-colouring palette of Lemma 17
that the simulation relies on.
"""

from repro.analysis.experiments import ExperimentTable
from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.speedup.bounded_growth import classify_locality, grid_growth_bound, simulation_palette_size
from repro.symmetry.distance_colouring import distance_colouring


def test_speedup_thresholds(benchmark, bench_json):
    growth_bounds = [grid_growth_bound(d) for d in (1, 2, 3)]
    localities = {
        "constant (T = 2)": lambda n: 2,
        "log-like (T = n.bit_length())": lambda n: n.bit_length(),
        "sqrt-like (T = isqrt(n))": lambda n: int(n ** 0.5),
    }

    def compute():
        rows = []
        for growth in growth_bounds:
            for name, locality in localities.items():
                threshold = classify_locality(growth, locality, maximum=200_000)
                palette = (
                    simulation_palette_size(growth, locality, threshold)
                    if threshold is not None
                    else None
                )
                rows.append((growth.name, name, threshold, palette))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = ExperimentTable(
        "E10a",
        "Lemma 26: speed-up thresholds k with f(2T(k)+3) < k",
        ["growth bound", "base locality", "threshold k", "simulation palette"],
    )
    for growth_name, locality_name, threshold, palette in rows:
        table.add_row(
            **{
                "growth bound": growth_name,
                "base locality": locality_name,
                "threshold k": threshold if threshold is not None else "none (not o(f⁻¹(n)))",
                "simulation palette": palette if palette is not None else "-",
            }
        )
    table.add_note("localities at least as large as f⁻¹(n) (the sqrt-like row on 2-d grids) admit no threshold")
    table.show()

    bench_json(
        {
            "rows": [
                {
                    "growth": growth_name,
                    "locality": locality_name,
                    "threshold": threshold,
                    "palette": palette,
                }
                for growth_name, locality_name, threshold, palette in rows
            ]
        }
    )

    verdicts = {(g, l): t for g, l, t, _p in rows}
    assert verdicts[("grid-2d", "constant (T = 2)")] is not None
    assert verdicts[("grid-2d", "sqrt-like (T = isqrt(n))")] is None


def test_lemma_17_distance_colouring(benchmark, medium_grid):
    grid, identifiers = medium_grid

    result = benchmark.pedantic(lambda: distance_colouring(grid, identifiers, k=2), rounds=1, iterations=1)

    table = ExperimentTable(
        "E10b",
        "Lemma 17: distance-k colouring palettes",
        ["k", "palette used", "paper bound (2k+1)^d", "rounds"],
    )
    table.add_row(
        k=2,
        **{"palette used": result.palette_size, "paper bound (2k+1)^d": 25, "rounds": result.rounds},
    )
    table.show()
    assert result.palette_size <= 25
    for node in grid.nodes():
        for other in grid.ball(node, 2, "linf"):
            if other != node:
                assert result.colours[node] != result.colours[other]
