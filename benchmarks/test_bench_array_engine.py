"""Benchmark: array engine tier versus the indexed list path.

This is the acceptance benchmark of the third engine tier: one synchronous
application of a radius-1 finite-alphabet rule on a 128x128 torus (16384
nodes, 5-offset balls) must run at least 5x faster through the compiled
lookup table (one fancy index per round) than through the indexed list
path (one Python call plus one dict per node), while producing a labelling
byte-identical to *both* existing engines.  Measured locally: the array
tier is ~100x faster per round; the slow sweep extends the comparison to
side 256 (65536 nodes).

Results are also written as machine-readable ``BENCH_*.json`` files (see
``benchmarks/conftest.py``) and uploaded as CI artifacts.
"""

import os
import time

import pytest

from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import FunctionRule
from repro.local_model.engine import ArrayEngine, IndexedEngine
from repro.local_model.simulator import apply_rule

SIDE = 128
RADIUS = 1
ALPHABET = 4
REPETITIONS = 3

# Wall-clock ratios are noisy on shared CI runners; the full 5x floor is
# enforced locally (measured ~100x at side 128).
FLOOR = 2.0 if os.environ.get("CI") else 5.0


def _finite_rule():
    """A radius-1 rule over the 4-letter alphabet (compiles to a table)."""
    return FunctionRule(
        RADIUS, lambda view: (min(view.values()) + max(view.values()) + 1) % ALPHABET
    )


def _labels(grid):
    return {node: (node[0] * 7 + sum(node) * 3) % ALPHABET for node in grid.nodes()}


def _best_of(repetitions, run):
    timings = []
    for _ in range(repetitions):
        start = time.perf_counter()
        run()
        timings.append(time.perf_counter() - start)
    return min(timings)


def _warm_engines(grid, labels, rule):
    """Build both engines with all tables (index + compiled) warmed."""
    indexed = IndexedEngine(grid)
    indexed.indexer.ball_getters(RADIUS, "l1")
    indexed_store = indexed.store(labels)
    array = ArrayEngine(grid)
    array.indexer.ball_index_array(RADIUS, "l1")
    array_store = array.store(labels)
    compile_start = time.perf_counter()
    array.apply_rule(array_store, rule)  # first call compiles the table
    compile_seconds = time.perf_counter() - compile_start
    return indexed, indexed_store, array, array_store, compile_seconds


def test_array_engine_speedup_on_128_torus(benchmark, bench_json):
    grid = ToroidalGrid.square(SIDE)
    rule = _finite_rule()
    labels = _labels(grid)
    indexed, indexed_store, array, array_store, compile_seconds = _warm_engines(
        grid, labels, rule
    )
    assert array.rule_tier(rule) == "table"

    def measure():
        indexed_seconds = _best_of(
            REPETITIONS, lambda: indexed.apply_rule(indexed_store, rule)
        )
        array_seconds = _best_of(
            REPETITIONS, lambda: array.apply_rule(array_store, rule)
        )
        return indexed_seconds, array_seconds

    indexed_seconds, array_seconds = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = indexed_seconds / array_seconds

    print(
        f"\n{SIDE}x{SIDE} torus, radius-{RADIUS} rule, |alphabet| = {ALPHABET}, "
        f"one application (best of {REPETITIONS}):\n"
        f"  indexed list path {indexed_seconds * 1000:8.2f} ms\n"
        f"  array table tier  {array_seconds * 1000:8.3f} ms\n"
        f"  table compile     {compile_seconds * 1000:8.2f} ms (one-off)\n"
        f"  speedup           {speedup:8.1f}x"
    )
    bench_json(
        {
            "side": SIDE,
            "radius": RADIUS,
            "alphabet": ALPHABET,
            "indexed_seconds": indexed_seconds,
            "array_seconds": array_seconds,
            "table_compile_seconds": compile_seconds,
            "speedup": speedup,
            "floor": FLOOR,
        }
    )

    # Byte-identical to both existing engines, and the acceptance floor.
    reference = apply_rule(grid, labels, rule)
    assert indexed.apply_rule(indexed_store, rule).to_dict() == reference
    assert array.apply_rule(array_store, rule).to_dict() == reference
    assert speedup >= FLOOR, f"array tier only {speedup:.1f}x faster than indexed path"


@pytest.mark.slow
def test_array_engine_speedup_sweep(benchmark, bench_json):
    """Speedup sweep over growing torus sides — the scaling headline.

    The array tier's advantage *grows* with the node count (the Python-call
    floor of the list path is linear in n, the fancy index is a few
    hundred nanoseconds per thousand nodes); side 256 is the largest sweep
    size in the repository so far.
    """
    rule = _finite_rule()

    def sweep():
        rows = []
        for side in (128, 192, 256):
            grid = ToroidalGrid.square(side)
            labels = _labels(grid)
            indexed, indexed_store, array, array_store, _ = _warm_engines(
                grid, labels, rule
            )
            indexed_seconds = _best_of(
                2, lambda: indexed.apply_rule(indexed_store, rule)
            )
            array_seconds = _best_of(
                2, lambda: array.apply_rule(array_store, rule)
            )
            assert (
                array.apply_rule(array_store, rule).to_dict()
                == indexed.apply_rule(indexed_store, rule).to_dict()
            )
            rows.append((side, indexed_seconds, array_seconds))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nside    indexed (ms)  array (ms)  speedup")
    for side, indexed_seconds, array_seconds in rows:
        print(
            f"{side:4d}    {indexed_seconds * 1000:10.2f}  {array_seconds * 1000:10.3f}"
            f"  {indexed_seconds / array_seconds:6.1f}x"
        )
    bench_json(
        {
            "radius": RADIUS,
            "alphabet": ALPHABET,
            "sweep": [
                {
                    "side": side,
                    "indexed_seconds": indexed_seconds,
                    "array_seconds": array_seconds,
                    "speedup": indexed_seconds / array_seconds,
                }
                for side, indexed_seconds, array_seconds in rows
            ],
        }
    )
    assert all(
        indexed_seconds / array_seconds >= FLOOR
        for _, indexed_seconds, array_seconds in rows
    )


def test_batch_tier_speedup_on_identifier_rule(benchmark, bench_json):
    """The ``update_batch`` hook: vectorised execution above the threshold.

    Identifier labellings have alphabet size n, far beyond any lookup
    table; a rule declaring ``update_batch`` still runs vectorised and must
    beat the list path while remaining byte-identical.
    """
    grid = ToroidalGrid.square(SIDE)
    labels = {node: (node[0] * SIDE + node[1]) * 7 % 65536 for node in grid.nodes()}
    rule = FunctionRule(
        RADIUS,
        lambda view: min(view.values()),
        batch=lambda neighbourhoods: neighbourhoods.min(axis=1),
    )
    indexed = IndexedEngine(grid)
    indexed.indexer.ball_getters(RADIUS, "l1")
    indexed_store = indexed.store(labels)
    array = ArrayEngine(grid)
    array_store = array.store(labels)
    array.apply_rule(array_store, rule)  # warm gather tables
    assert array.rule_tier(rule) == "batch"

    def measure():
        indexed_seconds = _best_of(
            REPETITIONS, lambda: indexed.apply_rule(indexed_store, rule)
        )
        array_seconds = _best_of(
            REPETITIONS, lambda: array.apply_rule(array_store, rule)
        )
        return indexed_seconds, array_seconds

    indexed_seconds, array_seconds = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = indexed_seconds / array_seconds
    print(
        f"\n{SIDE}x{SIDE} torus, radius-{RADIUS} min-rule over identifiers "
        f"(batch tier, best of {REPETITIONS}):\n"
        f"  indexed list path {indexed_seconds * 1000:8.2f} ms\n"
        f"  array batch tier  {array_seconds * 1000:8.3f} ms\n"
        f"  speedup           {speedup:8.1f}x"
    )
    bench_json(
        {
            "side": SIDE,
            "radius": RADIUS,
            "tier": "batch",
            "indexed_seconds": indexed_seconds,
            "array_seconds": array_seconds,
            "speedup": speedup,
        }
    )
    assert (
        array.apply_rule(array_store, rule).to_dict()
        == indexed.apply_rule(indexed_store, rule).to_dict()
    )
    assert speedup >= FLOOR
