"""E9 — Section 9 / Theorem 10: the q-sum coordination invariants.

The 3-colouring lower bound extracts from any colouring an integer ``s(G)``
(the net wrap-around of the colour-3 cycles).  The benchmark verifies, on
concrete colourings, every property the proof needs: the auxiliary graph's
degree profile, Lemma 12 (row independence), Lemma 14 (odd for odd n,
bounded by n/2), and that these values make the q-sum target admissible for
Theorem 10.
"""

from repro.analysis.experiments import ExperimentTable
from repro.colouring.vertex_global import global_three_colouring
from repro.coordination.qsum import QSumProblem
from repro.coordination.three_colouring_reduction import (
    build_auxiliary_graph,
    cycle_decomposition,
    greedy_normalise_colouring,
    row_invariant,
)
from repro.grid.torus import ToroidalGrid

SIZES = (7, 9, 11, 12, 15)


def test_three_colouring_reduction_invariants(benchmark, bench_json):
    def analyse():
        rows = []
        for n in SIZES:
            grid = ToroidalGrid.square(n)
            colouring = {
                node: c + 1 for node, c in global_three_colouring(grid).node_labels.items()
            }
            greedy = greedy_normalise_colouring(grid, colouring)
            graph = build_auxiliary_graph(grid, greedy)
            cycles = cycle_decomposition(graph)
            per_row = [
                sum(row_invariant(grid, cycle, row) for cycle in cycles) for row in range(n)
            ]
            rows.append(
                (
                    n,
                    len(graph.edges),
                    len(cycles),
                    graph.degree_profile_valid(),
                    len(set(per_row)) == 1,
                    per_row[0],
                )
            )
        return rows

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    table = ExperimentTable(
        "E9",
        "Section 9 reduction: the invariant s(G) extracted from 3-colourings",
        ["n", "H edges", "cycles", "degrees in {1,2}", "same on every row", "s(G)"],
    )
    for n, edges, cycles, degrees_ok, row_independent, s in rows:
        table.add_row(
            n=n,
            **{
                "H edges": edges,
                "cycles": cycles,
                "degrees in {1,2}": degrees_ok,
                "same on every row": row_independent,
                "s(G)": s,
            },
        )
    table.add_note("Lemma 14: s is odd whenever n is odd and |s| ≤ n/2 — exactly the Theorem 10 conditions")
    table.show()
    bench_json(
        {
            "rows": [
                {"n": n, "edges": edges, "cycles": cycles, "s": s}
                for n, edges, cycles, _degrees_ok, _row_independent, s in rows
            ]
        }
    )

    values = {n: s for n, _e, _c, degrees_ok, row_independent, s in rows}
    for n, _edges, _cycles, degrees_ok, row_independent, s in rows:
        assert degrees_ok
        assert row_independent
        assert abs(s) <= n / 2
        if n % 2 == 1:
            assert s % 2 == 1

    # The resulting target function is admissible for Theorem 10, hence the
    # q-sum coordination problem it defines is global on cycles.
    problem = QSumProblem(lambda n: values.get(n, 1 if n % 2 else 0))
    assert problem.satisfies_theorem_10(list(values))
