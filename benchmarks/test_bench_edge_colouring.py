"""E4 — Section 10: edge colouring with 2d+1 colours versus 2d colours.

Theorem 15's (2d+1)-edge-colouring is run end to end on a 96×96 torus and
verified; Theorem 21's impossibility of 2d-edge-colourings on odd tori is
certified both by the parity argument and by exhaustive SAT search on small
instances.
"""

import pytest

from repro.analysis.experiments import ExperimentTable
from repro.colouring.edge_colouring import edge_colouring
from repro.colouring.impossibility import (
    edge_colouring_parity_obstruction,
    exhaustive_edge_colouring_infeasible,
)
from repro.core.verifier import verify_proper_edge_colouring
from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid


@pytest.mark.slow
def test_five_edge_colouring_on_large_torus(benchmark, bench_json):
    grid = ToroidalGrid.square(96)
    identifiers = random_identifiers(grid, seed=2)

    result = benchmark.pedantic(lambda: edge_colouring(grid, identifiers), rounds=1, iterations=1)
    verification = verify_proper_edge_colouring(grid, result.edge_labels, 5)

    table = ExperimentTable(
        "E4a",
        "Theorem 15: edge (2d+1)-colouring of a 96×96 torus",
        ["n", "colours", "valid", "marked edges", "rounds", "separation k"],
    )
    table.add_row(
        n=96,
        colours=5,
        valid=verification.valid,
        **{
            "marked edges": result.metadata["marked_edges"],
            "rounds": result.rounds,
            "separation k": result.metadata["separation"],
        },
    )
    table.add_note(
        "the paper's constants (k = 2d, row spacing 2(4k+1)^d) are replaced by the smallest "
        "practical ones; every structural property is verified by the checker"
    )
    table.show()
    bench_json(
        {
            "side": 96,
            "colours": 5,
            "valid": verification.valid,
            "marked_edges": result.metadata["marked_edges"],
            "rounds": result.rounds,
            "separation": result.metadata["separation"],
        }
    )
    assert verification.valid


def test_four_edge_colouring_impossible_on_odd_tori(benchmark):
    def certify():
        rows = []
        # The exhaustive (SAT) certificate is affordable on the 5×5 torus;
        # for larger odd tori the parity argument of Theorem 21 is reported
        # (such parity-style instances are exactly the ones that are hard
        # for resolution-based solvers).
        odd = ToroidalGrid.square(5)
        rows.append((5, edge_colouring_parity_obstruction(odd, 4) is not None,
                     exhaustive_edge_colouring_infeasible(odd, 4)))
        larger_odd = ToroidalGrid.square(7)
        rows.append((7, edge_colouring_parity_obstruction(larger_odd, 4) is not None, "-"))
        even_grid = ToroidalGrid.square(4)
        rows.append((4, edge_colouring_parity_obstruction(even_grid, 4) is not None,
                     exhaustive_edge_colouring_infeasible(even_grid, 4)))
        return rows

    rows = benchmark.pedantic(certify, rounds=1, iterations=1)
    table = ExperimentTable(
        "E4b",
        "Theorem 21: 2d-edge-colourings do not exist on odd tori",
        ["n", "parity obstruction", "exhaustively infeasible"],
    )
    for n, parity, exhaustive in rows:
        table.add_row(n=n, **{"parity obstruction": parity, "exhaustively infeasible": exhaustive})
    table.show()
    assert rows[0][1] and rows[0][2] is True
    assert rows[1][1]
    assert not rows[2][1] and rows[2][2] is False
