"""Benchmark: indexed fast-path engine versus the seed dict-based simulator.

This is the acceptance benchmark of the indexed engine: one synchronous
application of a radius-2 rule on a 64x64 torus (4096 nodes, 13-offset
balls) must run at least 5x faster through the precomputed index tables
than through the per-node ``grid.shift`` dict path, while producing an
identical labelling.  Run with ``-s`` to see the measured table.
"""

import os
import time

import pytest

from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import FunctionRule
from repro.local_model.engine import IndexedEngine, SchedulePhase, run_schedule
from repro.local_model.simulator import apply_rule

SIDE = 64
RADIUS = 2
REPETITIONS = 3


def _best_of(repetitions, run):
    timings = []
    for _ in range(repetitions):
        start = time.perf_counter()
        run()
        timings.append(time.perf_counter() - start)
    return min(timings)


def test_indexed_engine_speedup_on_64_torus(benchmark, bench_json):
    grid = ToroidalGrid.square(SIDE)
    identifiers = random_identifiers(grid, seed=7)
    labels = {node: identifiers[node] for node in grid.nodes()}
    rule = FunctionRule(RADIUS, lambda view: min(view.values()))

    engine = IndexedEngine(grid)
    engine.indexer.ball_getters(RADIUS, "l1")  # build tables outside timing
    store = engine.store(labels)

    def measure():
        seed_seconds = _best_of(REPETITIONS, lambda: apply_rule(grid, labels, rule))
        fast_seconds = _best_of(REPETITIONS, lambda: engine.apply_rule(store, rule))
        return seed_seconds, fast_seconds

    seed_seconds, fast_seconds = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = seed_seconds / fast_seconds

    print(
        f"\n{SIDE}x{SIDE} torus, radius-{RADIUS} rule, one application "
        f"(best of {REPETITIONS}):\n"
        f"  dict path    {seed_seconds * 1000:8.1f} ms\n"
        f"  indexed path {fast_seconds * 1000:8.1f} ms\n"
        f"  speedup      {speedup:8.1f}x"
    )

    # Identical outputs, and the acceptance floor for the fast path.  On
    # shared CI runners wall-clock ratios are noisy, so the floor is
    # relaxed there; locally the full 5x must hold (measured ~6x).
    assert engine.apply_rule(store, rule).to_dict() == apply_rule(grid, labels, rule)
    floor = 2.0 if os.environ.get("CI") else 5.0
    bench_json(
        {
            "side": SIDE,
            "radius": RADIUS,
            "dict_seconds": seed_seconds,
            "indexed_seconds": fast_seconds,
            "speedup": speedup,
            "floor": floor,
        }
    )
    assert speedup >= floor, f"indexed engine only {speedup:.1f}x faster than dict path"


@pytest.mark.slow
def test_indexed_engine_speedup_sweep(benchmark, bench_json):
    """Speedup sweep over growing torus sides — the scaling headline.

    The per-round advantage of the indexed path persists (and the absolute
    saving grows linearly in the node count) as the torus grows; these are
    the sizes at which the paper's log* n versus n separations become
    visible.
    """
    rule = FunctionRule(RADIUS, lambda view: min(view.values()))

    def sweep():
        rows = []
        for side in (64, 96, 128):
            grid = ToroidalGrid.square(side)
            identifiers = random_identifiers(grid, seed=7)
            labels = {node: identifiers[node] for node in grid.nodes()}
            engine = IndexedEngine(grid)
            engine.indexer.ball_getters(RADIUS, "l1")
            store = engine.store(labels)
            seed_seconds = _best_of(2, lambda: apply_rule(grid, labels, rule))
            fast_seconds = _best_of(2, lambda: engine.apply_rule(store, rule))
            rows.append((side, seed_seconds, fast_seconds))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nside      dict (ms)  indexed (ms)  speedup")
    for side, seed_seconds, fast_seconds in rows:
        print(
            f"{side:4d}    {seed_seconds * 1000:9.1f}  {fast_seconds * 1000:12.1f}"
            f"  {seed_seconds / fast_seconds:6.1f}x"
        )
    bench_json(
        {
            "radius": RADIUS,
            "sweep": [
                {
                    "side": side,
                    "dict_seconds": seed_seconds,
                    "indexed_seconds": fast_seconds,
                    "speedup": seed_seconds / fast_seconds,
                }
                for side, seed_seconds, fast_seconds in rows
            ],
        }
    )
    assert all(seed > fast for _, seed, fast in rows)


def test_run_schedule_multi_phase_on_64_torus(benchmark):
    """A three-phase schedule stays on the fast path end to end."""
    grid = ToroidalGrid.square(SIDE)
    identifiers = random_identifiers(grid, seed=11)
    labels = {node: identifiers[node] for node in grid.nodes()}
    flood = FunctionRule(1, lambda view: min(view.values()))
    smooth = FunctionRule(2, lambda view: sum(view.values()) % 97)

    engine = IndexedEngine(grid)
    engine.indexer.ball_getters(1, "l1")
    engine.indexer.ball_getters(2, "l1")
    schedule = [
        SchedulePhase(flood, name="flood", iterations=2),
        SchedulePhase(smooth, name="smooth", iterations=1),
    ]

    final = benchmark(lambda: run_schedule(engine.indexer, labels, schedule))
    assert len(final) == grid.node_count
