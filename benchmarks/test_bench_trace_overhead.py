"""Benchmark: the disabled tracer must cost < 5% of a 128x128 schedule.

The observability contract (``docs/observability.md``) promises a
near-zero disabled path: with ``REPRO_TRACE`` unset every instrumented
site pays one module-global read plus an ``is None`` check.  This
benchmark makes that promise a number: it counts the spans a traced
128x128 schedule would emit, measures the per-site cost of the disabled
pattern directly (millions of iterations, so the figure is stable on
shared CI runners where a wall-vs-wall ratio of two ~10 ms runs is pure
noise), and asserts that their product stays under 5% of the untraced
schedule's wall time.  The raw traced-vs-untraced walls are recorded in
the artifact for the perf trajectory but deliberately not asserted.
"""

import time

from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import FunctionRule
from repro.local_model.engine import SchedulePhase, run_schedule
from repro.observability import trace
from repro.observability.metrics import registry

SIDE = 128
ROUNDS = 3
REPETITIONS = 3
PROBE_ITERATIONS = 200_000
OVERHEAD_CEILING = 0.05


def _best_of(repetitions, run):
    timings = []
    for _ in range(repetitions):
        start = time.perf_counter()
        run()
        timings.append(time.perf_counter() - start)
    return min(timings)


def _disabled_site_seconds():
    """Per-site cost of the disabled hot-path pattern, measured in bulk."""
    probe = range(PROBE_ITERATIONS)

    def spin():
        for _ in probe:
            tracer = trace.ACTIVE
            if tracer is not None:  # pragma: no cover - tracer is disabled
                with tracer.span("never"):
                    pass

    assert trace.ACTIVE is None
    return _best_of(REPETITIONS, spin) / PROBE_ITERATIONS


def test_disabled_tracing_overhead_under_5_percent(benchmark, bench_json):
    grid = ToroidalGrid.square(SIDE)
    rule = FunctionRule(1, lambda view: min(view.values()))
    labels = {node: (node[0] * SIDE + node[1]) % 7 for node in grid.nodes()}
    schedule = [SchedulePhase(rule, "settle", ROUNDS)]

    def run():
        return run_schedule(grid, labels, schedule, engine="array")

    # How many instrumented sites does one run actually hit?
    registry().reset()
    with trace.capture() as tracer:
        run()
    spans_per_run = tracer.span_count

    with trace.disabled():
        untraced_seconds = benchmark.pedantic(
            lambda: _best_of(REPETITIONS, run), rounds=1, iterations=1
        )
        site_seconds = _disabled_site_seconds()
    with trace.capture():
        traced_seconds = _best_of(REPETITIONS, run)

    overhead_seconds = spans_per_run * site_seconds
    overhead_ratio = overhead_seconds / untraced_seconds

    print(
        f"\n{SIDE}x{SIDE} torus, {ROUNDS} rounds (best of {REPETITIONS}):\n"
        f"  untraced wall      {untraced_seconds * 1000:8.2f} ms\n"
        f"  traced wall        {traced_seconds * 1000:8.2f} ms\n"
        f"  spans per run      {spans_per_run:8d}\n"
        f"  disabled site cost {site_seconds * 1e9:8.1f} ns\n"
        f"  disabled overhead  {overhead_ratio * 100:8.4f} %"
    )

    bench_json(
        {
            "side": SIDE,
            "rounds": ROUNDS,
            "untraced_seconds": untraced_seconds,
            "traced_seconds": traced_seconds,
            "spans_per_run": spans_per_run,
            "disabled_site_seconds": site_seconds,
            "disabled_overhead_ratio": overhead_ratio,
            "ceiling": OVERHEAD_CEILING,
        }
    )
    assert overhead_ratio < OVERHEAD_CEILING, (
        f"disabled tracing costs {overhead_ratio * 100:.2f}% of a "
        f"{SIDE}x{SIDE} schedule (ceiling {OVERHEAD_CEILING * 100:.0f}%)"
    )
