"""Merge ``BENCH_*.json`` benchmark artifacts into one summary document.

The benchmarks write one machine-readable ``BENCH_<name>.json`` file per
test (see the ``bench_json`` fixture in ``benchmarks/conftest.py``); CI
uploads the result directory as a build artifact.  This script folds a
directory of those files into a single ``bench-summary.json`` so the perf
trajectory across engine tiers can be diffed run-over-run without opening
a dozen files::

    python benchmarks/aggregate.py bench-results
    python benchmarks/aggregate.py bench-results --output summary.json

Unparseable files are skipped (and listed in the summary under
``skipped``) rather than failing the merge — a crashed benchmark run must
not also lose the artifacts of the runs that succeeded.  Each skip also
emits a :class:`BenchArtifactWarning` naming the file and the reason, so
a truncated artifact shows up in the CI log instead of only as a silent
entry in the summary.  The summary file deliberately does not match the
``BENCH_*.json`` glob, so re-running the merge never ingests its own
output.

When the directory also holds trace exports (``*-trace.json`` Chrome
trace-event documents written by ``REPRO_TRACE=1`` runs, see
``docs/observability.md``), their embedded metrics snapshots are folded
into the summary under ``trace_rounds``: per-tier engine round counts
summed across every trace file, so the tier mix of a traced CI leg can be
diffed run-over-run alongside the timings.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path
from typing import Dict, List

DEFAULT_SUMMARY_NAME = "bench-summary.json"

ROUNDS_METRIC = "engine_rounds_total"


class BenchArtifactWarning(UserWarning):
    """A benchmark or trace artifact could not be ingested and was skipped."""


def _skip(path: Path, reason: str, skipped: List[str]) -> None:
    skipped.append(path.name)
    warnings.warn(
        f"skipping benchmark artifact {path.name}: {reason}",
        BenchArtifactWarning,
        stacklevel=3,
    )


def trace_round_counts(results_dir: Path, skipped: List[str]) -> Dict[str, int]:
    """Sum per-tier ``engine_rounds_total`` counters across trace exports.

    Reads every ``*-trace.json`` in ``results_dir``, pulls the metrics
    snapshot that :func:`repro.observability.trace.chrome_document` embeds
    under ``repro.metrics.counters``, and accumulates the
    ``engine_rounds_total{tier=...}`` counters into ``{tier: rounds}``.
    Malformed trace files are skipped with a :class:`BenchArtifactWarning`,
    like any other artifact.
    """
    rounds: Dict[str, int] = {}
    prefix = ROUNDS_METRIC + "{tier="
    for path in sorted(results_dir.glob("*-trace.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            _skip(path, "unreadable or not valid JSON", skipped)
            continue
        if not isinstance(payload, dict):
            _skip(path, "not a JSON object", skipped)
            continue
        counters = payload
        for key in ("repro", "metrics", "counters"):
            counters = counters.get(key) if isinstance(counters, dict) else None
        if counters is None:
            counters = {}
        if not isinstance(counters, dict):
            _skip(path, "malformed metrics snapshot", skipped)
            continue
        for key, value in counters.items():
            if not (isinstance(key, str) and key.startswith(prefix)):
                continue
            tier = key[len(prefix):].rstrip("}")
            try:
                rounds[tier] = rounds.get(tier, 0) + int(value)
            except (TypeError, ValueError):
                _skip(path, f"non-numeric counter {key!r}", skipped)
                break
    return {tier: rounds[tier] for tier in sorted(rounds)}


def aggregate(results_dir: Path) -> Dict:
    """Fold every ``BENCH_*.json`` under ``results_dir`` into one document.

    Returns ``{"count", "benchmarks": {name: payload}, "skipped": [...],
    "trace_rounds": {tier: rounds}}`` with benchmarks keyed by their
    recorded name (falling back to the file stem) and sorted for stable
    diffs.
    """
    benchmarks: Dict[str, Dict] = {}
    skipped: List[str] = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            _skip(path, "unreadable or not valid JSON", skipped)
            continue
        if not isinstance(payload, dict):
            _skip(path, "not a JSON object", skipped)
            continue
        name = str(payload.get("benchmark") or path.stem[len("BENCH_"):])
        benchmarks[name] = payload
    return {
        "count": len(benchmarks),
        "benchmarks": {name: benchmarks[name] for name in sorted(benchmarks)},
        "skipped": skipped,
        "trace_rounds": trace_round_counts(results_dir, skipped),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "results_dir",
        type=Path,
        help="directory holding BENCH_*.json files (e.g. benchmarks/results)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"summary path (default: <results_dir>/{DEFAULT_SUMMARY_NAME})",
    )
    arguments = parser.parse_args(argv)
    if not arguments.results_dir.is_dir():
        print(f"no results directory at {arguments.results_dir}", file=sys.stderr)
        return 1
    summary = aggregate(arguments.results_dir)
    output = (
        arguments.output
        if arguments.output is not None
        else arguments.results_dir / DEFAULT_SUMMARY_NAME
    )
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(
        f"merged {summary['count']} benchmark(s) into {output}"
        + (f" ({len(summary['skipped'])} skipped)" if summary["skipped"] else "")
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
