"""Merge ``BENCH_*.json`` benchmark artifacts into one summary document.

The benchmarks write one machine-readable ``BENCH_<name>.json`` file per
test (see the ``bench_json`` fixture in ``benchmarks/conftest.py``); CI
uploads the result directory as a build artifact.  This script folds a
directory of those files into a single ``bench-summary.json`` so the perf
trajectory across engine tiers can be diffed run-over-run without opening
a dozen files::

    python benchmarks/aggregate.py bench-results
    python benchmarks/aggregate.py bench-results --output summary.json

Unparseable files are skipped (and listed in the summary under
``skipped``) rather than failing the merge — a crashed benchmark run must
not also lose the artifacts of the runs that succeeded.  The summary file
deliberately does not match the ``BENCH_*.json`` glob, so re-running the
merge never ingests its own output.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

DEFAULT_SUMMARY_NAME = "bench-summary.json"


def aggregate(results_dir: Path) -> Dict:
    """Fold every ``BENCH_*.json`` under ``results_dir`` into one document.

    Returns ``{"count", "benchmarks": {name: payload}, "skipped": [...]}``
    with benchmarks keyed by their recorded name (falling back to the file
    stem) and sorted for stable diffs.
    """
    benchmarks: Dict[str, Dict] = {}
    skipped: List[str] = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            skipped.append(path.name)
            continue
        if not isinstance(payload, dict):
            skipped.append(path.name)
            continue
        name = str(payload.get("benchmark") or path.stem[len("BENCH_"):])
        benchmarks[name] = payload
    return {
        "count": len(benchmarks),
        "benchmarks": {name: benchmarks[name] for name in sorted(benchmarks)},
        "skipped": skipped,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "results_dir",
        type=Path,
        help="directory holding BENCH_*.json files (e.g. benchmarks/results)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"summary path (default: <results_dir>/{DEFAULT_SUMMARY_NAME})",
    )
    arguments = parser.parse_args(argv)
    if not arguments.results_dir.is_dir():
        print(f"no results directory at {arguments.results_dir}", file=sys.stderr)
        return 1
    summary = aggregate(arguments.results_dir)
    output = (
        arguments.output
        if arguments.output is not None
        else arguments.results_dir / DEFAULT_SUMMARY_NAME
    )
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(
        f"merged {summary['count']} benchmark(s) into {output}"
        + (f" ({len(summary['skipped'])} skipped)" if summary["skipped"] else "")
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
