"""E3 — Sections 8 & 9: the vertex-colouring threshold (k ≤ 3 global, k ≥ 4 local).

The 4-colouring upper bound is exercised through the synthesised normal-form
algorithm (rounds stay flat as ``n`` grows, outputs verified); the global
side is shown by the Θ(n) cost of the 3-colouring construction and by the
synthesis loop failing to find any local rule for 3 colours.
"""

import pytest

from repro.analysis.experiments import ExperimentTable
from repro.analysis.rounds import measure_over_sizes
from repro.colouring.vertex_global import global_three_colouring
from repro.core.catalog import vertex_colouring_problem
from repro.core.verifier import verify_proper_vertex_colouring
from repro.synthesis.pretrained import load_four_colouring_algorithm
from repro.synthesis.synthesiser import synthesise_with_budget
from repro.utils.math import log_star

SIZES = (16, 24, 32, 40)


@pytest.mark.slow
def test_four_versus_three_colouring_round_scaling(benchmark, bench_json):
    local_algorithm = load_four_colouring_algorithm()

    def run_sweep():
        local = measure_over_sizes(
            "4-colouring (normal form, k=3)",
            SIZES,
            lambda grid, ids: local_algorithm.run(grid, ids),
        )
        global_ = measure_over_sizes(
            "3-colouring (global)",
            SIZES,
            lambda grid, ids: global_three_colouring(grid),
        )
        return local, global_

    local, global_ = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = ExperimentTable(
        "E3a",
        "Vertex colouring: rounds versus n (local 4-colouring vs global 3-colouring)",
        ["n", "log* n", "4-colouring rounds", "3-colouring rounds"],
    )
    for index, n in enumerate(SIZES):
        table.add_row(
            n=n,
            **{
                "log* n": log_star(n),
                "4-colouring rounds": local.rounds[index],
                "3-colouring rounds": global_.rounds[index],
            },
        )
    table.add_note(
        f"growth ratio over the sweep: 4-colouring {local.growth_ratio():.2f}, "
        f"3-colouring {global_.growth_ratio():.2f} (paper: Θ(log* n) versus Θ(n))"
    )
    table.show()
    bench_json(
        {
            "sizes": list(SIZES),
            "four_colouring_rounds": list(local.rounds),
            "three_colouring_rounds": list(global_.rounds),
            "four_colouring_growth": local.growth_ratio(),
            "three_colouring_growth": global_.growth_ratio(),
        }
    )
    assert local.growth_ratio() < 1.6
    assert global_.growth_ratio() == pytest.approx(SIZES[-1] / SIZES[0])


@pytest.mark.slow
def test_four_colouring_outputs_are_proper(benchmark, medium_grid):
    grid, identifiers = medium_grid
    algorithm = load_four_colouring_algorithm()

    result = benchmark(lambda: algorithm.run(grid, identifiers))
    assert verify_proper_vertex_colouring(grid, result.node_labels, 4).valid


def test_three_colouring_synthesis_never_succeeds(benchmark):
    problem = vertex_colouring_problem(3)

    def run():
        return synthesise_with_budget(problem, max_k=2)

    search = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ExperimentTable(
        "E3b",
        "3-colouring: the synthesis loop finds no local rule (consistent with Theorem 9)",
        ["k", "window", "tiles", "succeeded", "budget exhausted"],
    )
    for attempt in search.attempts:
        table.add_row(
            k=attempt.k,
            window=f"{attempt.width}×{attempt.height}",
            tiles=attempt.tile_count,
            succeeded=attempt.success,
            **{"budget exhausted": attempt.exhausted_budget},
        )
    table.show()
    assert not search.succeeded
