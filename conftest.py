"""Repository-level pytest configuration.

Registers the ``--equivalence-seed`` option used by the randomized
equivalence suite (``tests/test_equivalence_indexed.py``).  CI runs the
suite twice: once with the fixed default seed and once with a seed derived
from the run id, so every CI run explores a fresh slice of the input space
while staying reproducible — the failing seed is printed in the assertion
message and in the job summary.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--equivalence-seed",
        action="store",
        type=int,
        default=0,
        help=(
            "Master seed of the randomized equivalence suite; every test "
            "derives its own RNG from this seed and its test name."
        ),
    )


@pytest.fixture()
def equivalence_seed(request):
    """The master seed of the randomized equivalence suite."""
    return request.config.getoption("--equivalence-seed")
