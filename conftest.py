"""Repository-level pytest configuration.

Registers the ``--equivalence-seed`` option used by the randomized
equivalence suite (``tests/test_equivalence_indexed.py``).  CI runs the
suite twice: once with the fixed default seed and once with a seed derived
from the run id, so every CI run explores a fresh slice of the input space
while staying reproducible — the failing seed is printed in the assertion
message and in the job summary.
"""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _hermetic_repro_cache(tmp_path_factory):
    """Pin the on-disk synthesis cache to a per-session temp directory.

    The disk cache (``repro.synthesis.disk_cache``) defaults to
    ``~/.cache/repro``; a test run must neither read a developer's warm
    cache (hiding cold-path bugs) nor write into it.  Within the session
    the cache still works normally, so the disk-cache tests exercise the
    real read/write paths.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


def pytest_addoption(parser):
    parser.addoption(
        "--equivalence-seed",
        action="store",
        type=int,
        default=0,
        help=(
            "Master seed of the randomized equivalence suite; every test "
            "derives its own RNG from this seed and its test name."
        ),
    )


@pytest.fixture()
def equivalence_seed(request):
    """The master seed of the randomized equivalence suite."""
    return request.config.getoption("--equivalence-seed")
