"""Tests for LCL problem specifications and the problem catalogue."""

import pytest

from repro.core.catalog import (
    diagonal_colouring_problem,
    edge_orientation_alphabet,
    independent_set_problem,
    maximal_independent_set_problem,
    proper_edge_colouring_problem,
    vertex_colouring_problem,
)
from repro.core.complexity import ClassificationResult, ComplexityClass, merge_classifications
from repro.core.lcl import EdgeGridLCL, GridLCL, PairRelation
from repro.errors import InvalidProblemError


class TestPairRelation:
    def test_from_pairs_and_membership(self):
        relation = PairRelation.from_pairs([(0, 1), (1, 0)])
        assert relation.permits(0, 1)
        assert not relation.permits(0, 0)
        assert (1, 0) in relation

    def test_from_predicate(self):
        relation = PairRelation.from_predicate((0, 1, 2), lambda a, b: a < b)
        assert relation.permits(0, 2)
        assert not relation.permits(2, 0)
        assert len(relation.allowed) == 3


class TestGridLCL:
    def test_colouring_problem_basics(self):
        problem = vertex_colouring_problem(4)
        assert problem.alphabet == (0, 1, 2, 3)
        assert problem.is_pairwise
        assert problem.horizontal_ok(0, 1)
        assert not problem.horizontal_ok(2, 2)
        assert problem.node_ok(3)

    def test_feasible_constant_labels(self):
        assert vertex_colouring_problem(3).feasible_constant_labels() == ()
        assert independent_set_problem().feasible_constant_labels() == (0,)
        mis = maximal_independent_set_problem()
        assert mis.feasible_constant_labels() == ()

    def test_cross_predicate_detection(self):
        assert not maximal_independent_set_problem().is_pairwise
        assert independent_set_problem().is_pairwise

    def test_restrict_alphabet(self):
        problem = vertex_colouring_problem(5).restrict_alphabet([0, 1, 2])
        assert problem.alphabet == (0, 1, 2)

    def test_invalid_specifications(self):
        with pytest.raises(InvalidProblemError):
            GridLCL(name="empty", alphabet=())
        with pytest.raises(InvalidProblemError):
            GridLCL(name="duplicates", alphabet=(1, 1))
        with pytest.raises(InvalidProblemError):
            vertex_colouring_problem(0)
        with pytest.raises(InvalidProblemError):
            diagonal_colouring_problem(1)

    def test_diagonal_colouring_only_constrains_rows(self):
        problem = diagonal_colouring_problem(2)
        assert not problem.horizontal_ok(1, 1)
        assert problem.vertical_ok(1, 1)


class TestEdgeGridLCL:
    def test_edge_colouring_constraint(self):
        problem = proper_edge_colouring_problem(5)
        distinct = ((0, 1, 0), (0, -1, 1), (1, 1, 2), (1, -1, 3))
        clashing = ((0, 1, 0), (0, -1, 0), (1, 1, 2), (1, -1, 3))
        assert problem.node_ok(distinct)
        assert not problem.node_ok(clashing)

    def test_empty_alphabet_rejected(self):
        with pytest.raises(InvalidProblemError):
            EdgeGridLCL(name="bad", alphabet=(), incident_predicate=lambda incident: True)
        with pytest.raises(InvalidProblemError):
            proper_edge_colouring_problem(0)

    def test_orientation_alphabet_size(self):
        assert len(edge_orientation_alphabet()) == 16


class TestComplexityClasses:
    def test_ordering_and_names(self):
        assert ComplexityClass.CONSTANT.is_local
        assert ComplexityClass.LOG_STAR.is_local
        assert not ComplexityClass.GLOBAL.is_local
        assert str(ComplexityClass.LOG_STAR) == "Θ(log* n)"

    def test_describe(self):
        result = ClassificationResult("p", ComplexityClass.GLOBAL, exact=False)
        assert "conjectured" in result.describe()

    def test_merge_prefers_exact_then_faster(self):
        exact_global = ClassificationResult("p", ComplexityClass.GLOBAL, exact=True)
        guessed_local = ClassificationResult("p", ComplexityClass.LOG_STAR, exact=False)
        assert merge_classifications(guessed_local, exact_global) is exact_global
        faster = ClassificationResult("p", ComplexityClass.CONSTANT, exact=True)
        assert merge_classifications(exact_global, faster) is faster
        assert merge_classifications(exact_global, None) is exact_global
        with pytest.raises(ValueError):
            merge_classifications(exact_global, ClassificationResult("q", ComplexityClass.GLOBAL))
