"""Randomized four-engine equivalence suite (see ``tests/equivalence.py``).

Each test derives a private RNG from ``--equivalence-seed`` (default 0),
draws randomized instances — square, non-square and 1-dimensional tori,
rules over alphabets far too large to table-compile (the parallel tier's
target workload), raising rules — and asserts that the ``"dict"``
reference, the ``"indexed"`` and ``"array"`` fast paths and the
process-sharded ``"parallel"`` tier produce byte-identical outcomes,
including identical exceptions with sequential first-failing-node
semantics.  The degenerate configurations (one worker, zero workers, the
``REPRO_WORKERS`` override, rules opting out via ``parallel_safe``) are
exercised explicitly: they must all collapse to the serial scan without
changing a byte.
"""

import pytest

from equivalence import (
    assert_engines_agree,
    assert_equivalent,
    derive_rng,
    grid_corpus,
    rule_engine_factories,
)

from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import FunctionRule
from repro.local_model.engine import (
    ParallelEngine,
    SchedulePhase,
    plan_chunks,
    run_schedule,
)
from repro.local_model.simulator import apply_rule, iterate_rule
from repro.local_model.store import (
    PARALLEL_AUTO_THRESHOLD,
    parallel_workers,
    resolve_engine,
)


def _engine_corpus(rng):
    """Tori covering the engine edge cases: 2-D shapes plus a 1-D cycle."""
    yield from grid_corpus(rng, extras=1)
    yield ToroidalGrid((rng.randint(5, 11),))


def _identifier_rule(rng):
    """A deterministic non-compilable rule (alphabet size ~ node count)."""
    a, b = rng.randrange(1, 7), rng.randrange(7)

    def update(view):
        values = sorted(view.values())
        return a * values[0] + b * values[-1]

    return FunctionRule(rng.choice([1, 1, 2]), update)


class TestShardedRuleApplication:
    def test_non_compilable_rules_across_worker_counts(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "parallel-noncompilable")
        for trial, grid in enumerate(_engine_corpus(rng)):
            identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
            labels = {node: identifiers[node] for node in grid.nodes()}
            rule = _identifier_rule(rng)
            # 0 and 1 workers are the degenerate serial configurations; 2+
            # actually shard (chunk count capped by the node count).
            workers = rng.choice([2, 3, 4])
            for worker_count in (0, 1, workers):
                # A threshold of 1 pins even tiny identifier alphabets off
                # the compiled-table delegation, so worker_count > 1 is
                # guaranteed to exercise the sharded scan itself.
                engine = ParallelEngine(grid, workers=worker_count, table_threshold=1)
                expected = "sharded" if worker_count > 1 else "list"
                assert engine.rule_tier(rule, labels) == expected
                assert_engines_agree(
                    rule_engine_factories(
                        grid, labels, rule, workers=worker_count, table_threshold=1
                    ),
                    f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                    f"radius={rule.radius} workers={worker_count}",
                )

    def test_raising_rules_report_first_failing_node(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "parallel-raising")
        for trial, grid in enumerate(_engine_corpus(rng)):
            nodes = list(grid.nodes())
            labels = {node: position for position, node in enumerate(nodes)}
            # Poison a random subset of nodes: the minimum over a poisoned
            # ball raises, and every engine must report the *same* node (the
            # lowest flat index), even when several chunks fail at once.
            poisoned = set(
                rng.sample(range(len(nodes)), rng.randint(1, max(1, len(nodes) // 4)))
            )
            # Label 0 is the minimum of its own ball, so at least one node
            # is guaranteed to raise.
            poisoned.add(0)

            def update(view):
                smallest = min(view.values())
                if smallest in poisoned:
                    raise ValueError(f"poisoned label {smallest}")
                return smallest

            rule = FunctionRule(1, update)
            outcome = assert_engines_agree(
                rule_engine_factories(grid, labels, rule, workers=rng.choice([2, 4])),
                f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                f"poisoned={len(poisoned)}",
            )
            assert outcome[0] == "error"

    def test_parallel_unsafe_rules_fall_back_serially(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "parallel-unsafe")
        grid = ToroidalGrid((rng.randint(5, 8), rng.randint(5, 8)))
        identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
        labels = {node: identifiers[node] for node in grid.nodes()}
        rule = _identifier_rule(rng)
        rule.parallel_safe = False
        engine = ParallelEngine(grid, workers=4)
        assert engine.rule_tier(rule, labels) == "list"
        assert_equivalent(
            lambda: apply_rule(grid, labels, rule),
            lambda: engine.apply_rule(labels, rule).to_dict(),
            f"seed={equivalence_seed} grid={grid.sides} parallel_safe=False",
        )

    def test_iterate_rule_including_budget_exhaustion(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "parallel-iterate")
        for trial, grid in enumerate(grid_corpus(rng, extras=0)):
            identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
            labels = {node: identifiers[node] for node in grid.nodes()}
            rule = FunctionRule(1, lambda view: min(view.values()))
            target = min(labels.values())

            def stop(current):
                return all(value == target for value in current.values())

            budget = max(grid.sides) + 1
            context = f"seed={equivalence_seed} trial={trial} grid={grid.sides}"
            assert_equivalent(
                lambda: iterate_rule(grid, labels, rule, stop, budget),
                lambda: ParallelEngine(grid, workers=2)
                .iterate_rule(labels, rule, stop, budget)
                .to_dict(),
                f"{context} budget={budget}",
            )
            # Impossible predicate: identical SimulationError from the
            # sharded tier.
            assert_equivalent(
                lambda: iterate_rule(grid, labels, rule, lambda current: False, 2),
                lambda: ParallelEngine(grid, workers=2).iterate_rule(
                    labels, rule, lambda current: False, 2
                ),
                f"{context} exhausted",
            )

    def test_run_schedule_parallel_matches_indexed(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "parallel-schedule")
        for trial, grid in enumerate(grid_corpus(rng, extras=0)):
            identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
            labels = {node: identifiers[node] for node in grid.nodes()}
            schedule = [
                SchedulePhase(_identifier_rule(rng), name="first", iterations=2),
                SchedulePhase(_identifier_rule(rng), name="second", iterations=1),
            ]
            assert_equivalent(
                lambda: run_schedule(grid, labels, schedule).to_dict(),
                lambda: run_schedule(
                    grid, labels, schedule, engine="parallel"
                ).to_dict(),
                f"seed={equivalence_seed} trial={trial} grid={grid.sides}",
            )

    def test_vectorisable_rules_delegate_to_the_array_tier(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "parallel-delegate")
        grid = ToroidalGrid((rng.randint(5, 9), rng.randint(5, 9)))
        alphabet_size = rng.randint(2, 4)
        labels = {node: rng.randrange(alphabet_size) for node in grid.nodes()}
        rule = FunctionRule(
            1, lambda view: (min(view.values()) + max(view.values())) % alphabet_size
        )
        engine = ParallelEngine(grid, workers=4)
        # Small finite alphabet: the embedded array engine compiles it.
        assert engine._array is None or engine.rule_tier(rule, labels) == "table"
        assert_engines_agree(
            rule_engine_factories(grid, labels, rule, workers=4),
            f"seed={equivalence_seed} grid={grid.sides} alphabet={alphabet_size}",
        )


class TestWorkerConfiguration:
    def test_chunk_plans_tile_the_node_range(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "parallel-chunks")
        for _ in range(25):
            node_count = rng.randint(0, 200)
            workers = rng.randint(1, 12)
            chunks = plan_chunks(node_count, workers)
            assert len(chunks) == (min(workers, node_count) if node_count else 0)
            position = 0
            for start, stop in chunks:
                assert start == position and stop > start
                position = stop
            assert position == node_count
            if chunks:
                sizes = [stop - start for start, stop in chunks]
                assert max(sizes) - min(sizes) <= 1

    def test_repro_workers_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert parallel_workers() == 3
        grid = ToroidalGrid((5, 5))
        engine = ParallelEngine(grid)
        assert engine.workers == 3
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert parallel_workers() == 0
        assert ParallelEngine(grid).workers == 0
        # Explicit counts beat the environment.
        assert parallel_workers(5) == 5
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        with pytest.raises(Exception, match="REPRO_WORKERS"):
            parallel_workers()

    def test_auto_policy_size_threshold(self, monkeypatch):
        allowed = ("dict", "indexed", "array", "parallel")
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert (
            resolve_engine("auto", allowed, node_count=PARALLEL_AUTO_THRESHOLD)
            == "parallel"
        )
        assert (
            resolve_engine("auto", allowed, node_count=PARALLEL_AUTO_THRESHOLD - 1)
            != "parallel"
        )
        # Without a node count (or the tier in `allowed`) auto never picks
        # the parallel tier, preserving pre-existing call sites.
        assert resolve_engine("auto", allowed) != "parallel"
        assert (
            resolve_engine(
                "auto", ("dict", "indexed", "array"), node_count=1 << 20
            )
            != "parallel"
        )
        # A single worker disables the tier no matter the size.
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert (
            resolve_engine("auto", allowed, node_count=1 << 20) != "parallel"
        )

    def test_more_workers_than_nodes_caps_the_chunk_count(self, equivalence_seed):
        # plan_chunks caps the shard count at the node count (the smallest
        # legal torus has 3 nodes, so the cap, not the single-chunk serial
        # guard, is what a tiny grid exercises): 8 requested workers on a
        # 3-node cycle must shard into exactly 3 one-node chunks and stay
        # byte-identical.
        grid = ToroidalGrid((3,))
        assert plan_chunks(grid.node_count, 8) == [(0, 1), (1, 2), (2, 3)]
        labels = {node: position for position, node in enumerate(grid.nodes())}
        rule = FunctionRule(1, lambda view: min(view.values()))
        assert_equivalent(
            lambda: apply_rule(grid, labels, rule),
            lambda: ParallelEngine(grid, workers=8).apply_rule(labels, rule).to_dict(),
            f"seed={equivalence_seed} grid={grid.sides} workers=8",
        )


class TestTopologyFamilies:
    def test_sharded_tier_matches_all_engines_on_every_family(
        self, equivalence_seed
    ):
        from equivalence import random_topology_labels, topology_cases

        rng = derive_rng(equivalence_seed, "parallel-topology-families")
        for case, (name, topology) in enumerate(topology_cases(rng)):
            alphabet_size = rng.randint(2, 5)
            rule = _identifier_rule(rng)
            labels = random_topology_labels(rng, topology, range(alphabet_size))
            assert_engines_agree(
                rule_engine_factories(
                    topology, labels, rule, workers=2, table_threshold=1
                ),
                f"seed={equivalence_seed} case={case} family={name} "
                f"topology={topology!r} alphabet={alphabet_size}",
            )
