"""Tests for windows (tiles' raw material) and identifier assignments."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.identifiers import (
    adversarial_identifiers,
    cycle_identifiers,
    random_identifiers,
    row_major_identifiers,
)
from repro.grid.subgrid import Window, build_window, extract_window, render_pattern, window_around
from repro.grid.torus import ToroidalGrid


class TestWindow:
    def test_dimensions_and_access(self):
        window = Window(((0, 1, 0), (1, 0, 0)))  # 2 columns x 3 rows
        assert window.width == 2
        assert window.height == 3
        assert window.value(0, 1) == 1
        assert window.column(1) == (1, 0, 0)
        assert window.count(1) == 2

    def test_parts(self):
        window = Window(((1, 2), (3, 4), (5, 6)))
        assert window.west_part().cells == ((1, 2), (3, 4))
        assert window.east_part().cells == ((3, 4), (5, 6))
        assert window.south_part().cells == ((1,), (3,), (5,))
        assert window.north_part().cells == ((2,), (4,), (6,))

    def test_subwindow(self):
        window = build_window(4, 4, lambda x, y: 10 * x + y)
        sub = window.subwindow(1, 2, 2, 2)
        assert sub.cells == ((12, 13), (22, 23))
        with pytest.raises(ValueError):
            window.subwindow(3, 3, 2, 2)

    def test_from_rows_matches_printed_layout(self):
        # Printed top-to-bottom:  10 / 00  means anchor in the north-west cell.
        window = Window.from_rows(((1, 0), (0, 0)))
        assert window.width == 2
        assert window.height == 2
        assert window.value(0, 1) == 1  # west column, northern cell
        assert window.count(1) == 1

    def test_render_round_trip(self):
        window = Window.from_rows(((1, 0), (0, 1)))
        assert render_pattern(window.cells) == "10\n01"

    def test_windows_are_hashable_dictionary_keys(self):
        first = Window(((0, 1), (1, 0)))
        second = Window(((0, 1), (1, 0)))
        table = {first: "label"}
        assert table[second] == "label"


class TestExtraction:
    def test_extract_window_wraps(self):
        grid = ToroidalGrid.square(4)
        values = {node: node[0] + 10 * node[1] for node in grid.nodes()}
        window = extract_window(grid, values, (3, 3), 2, 2)
        assert window.value(0, 0) == values[(3, 3)]
        assert window.value(1, 0) == values[(0, 3)]
        assert window.value(0, 1) == values[(3, 0)]

    def test_window_around_centres_correctly(self):
        grid = ToroidalGrid.square(7)
        values = {node: 0 for node in grid.nodes()}
        values[(3, 3)] = 9
        window = window_around(grid, values, (3, 3), 5, 3)
        assert window.value(2, 1) == 9

    def test_extract_window_requires_two_dimensions(self):
        grid = ToroidalGrid.square(4, dimension=3)
        with pytest.raises(ValueError):
            extract_window(grid, {node: 0 for node in grid.nodes()}, (0, 0, 0), 2, 2)


class TestIdentifierAssignments:
    def test_row_major(self):
        grid = ToroidalGrid.square(3)
        ids = row_major_identifiers(grid)
        ids.validate()
        assert ids[(0, 0)] == 1
        assert ids.max_identifier() == 9
        assert len(ids) == 9

    def test_random_is_injective_and_reproducible(self):
        grid = ToroidalGrid.square(5)
        first = random_identifiers(grid, seed=3)
        second = random_identifiers(grid, seed=3)
        third = random_identifiers(grid, seed=4)
        first.validate()
        assert dict(first.items()) == dict(second.items())
        assert dict(first.items()) != dict(third.items())
        assert first.max_identifier() <= 4 * grid.node_count

    def test_adversarial_is_a_permutation(self):
        grid = ToroidalGrid.square(4)
        ids = adversarial_identifiers(grid)
        ids.validate()
        assert sorted(value for _n, value in ids.items()) == list(range(1, 17))

    def test_relabel_preserves_injectivity(self):
        grid = ToroidalGrid.square(3)
        ids = row_major_identifiers(grid)
        permutation = {value: 100 - value for value in range(1, 10)}
        relabelled = ids.relabel(permutation)
        relabelled.validate()

    def test_validation_errors(self):
        from repro.grid.identifiers import IdentifierAssignment

        with pytest.raises(ValueError):
            IdentifierAssignment({(0, 0): 1, (0, 1): 1}).validate()
        with pytest.raises(ValueError):
            IdentifierAssignment({(0, 0): 0}).validate()

    @settings(max_examples=20)
    @given(st.integers(3, 60), st.integers(0, 5))
    def test_cycle_identifiers_are_unique(self, length, seed):
        ids = cycle_identifiers(length, seed=seed)
        assert len(ids) == length
        assert len(set(ids)) == length
        assert all(value >= 1 for value in ids)

    def test_cycle_identifiers_invalid_length(self):
        with pytest.raises(ValueError):
            cycle_identifiers(0)

    def test_id_space_factor_validation(self):
        grid = ToroidalGrid.square(3)
        with pytest.raises(ValueError):
            random_identifiers(grid, id_space_factor=0)
