"""Tests for the one-dimensional (directed cycle) theory of Section 4.

The classification results reproduce Figure 2 of the paper: 2-colouring is
global, 3-colouring and maximal independent set are Θ(log* n), independent
set is O(1).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.complexity import ComplexityClass
from repro.cycles.catalog import (
    cycle_colouring_problem,
    cycle_consistent_orientation_problem,
    cycle_independent_set_problem,
    cycle_maximal_independent_set_problem,
    cycle_maximal_matching_problem,
)
from repro.cycles.classifier import classify_cycle_problem
from repro.cycles.lcl1d import CycleLCL, verify_cycle_labelling
from repro.cycles.neighbourhood_graph import build_neighbourhood_graph
from repro.cycles.synthesis import (
    solve_globally_on_cycle,
    synthesise_cycle_algorithm,
)
from repro.errors import InvalidProblemError, SynthesisError, UnsolvableInstanceError
from repro.grid.identifiers import cycle_identifiers


class TestCycleLCLSpecification:
    def test_window_extraction_is_cyclic(self):
        problem = cycle_colouring_problem(3)
        labels = [1, 2, 1, 2, 3]
        assert problem.window_at(labels, 0) == (3, 1, 2)
        assert problem.window_at(labels, 4) == (2, 3, 1)

    def test_verify_cycle_labelling(self):
        problem = cycle_colouring_problem(3)
        assert verify_cycle_labelling(problem, [1, 2, 3, 1, 2, 3]) == []
        violations = verify_cycle_labelling(problem, [1, 1, 2, 3])
        assert violations  # positions around the repeated colour

    def test_invalid_specifications_rejected(self):
        with pytest.raises(InvalidProblemError):
            CycleLCL("bad", (0, 1), 0, frozenset())
        with pytest.raises(InvalidProblemError):
            CycleLCL("bad", (0, 1), 1, frozenset({(0, 1)}))
        with pytest.raises(InvalidProblemError):
            CycleLCL("bad", (0, 1), 1, frozenset({(0, 1, 7)}))
        with pytest.raises(InvalidProblemError):
            verify_cycle_labelling(cycle_colouring_problem(2), [1, 2])


class TestCycleEdgeCases:
    def test_cycle_of_length_exactly_one_window(self):
        # A cycle of length 2r + 1 is the shortest legal instance: every
        # cyclic window reads the whole cycle (in rotated order).
        problem = cycle_colouring_problem(3)  # radius 1, windows of length 3
        assert verify_cycle_labelling(problem, [1, 2, 3]) == []
        for engine in ("dict", "indexed"):
            assert verify_cycle_labelling(problem, [1, 2, 3], engine=engine) == []
            # 1,1,2 violates exactly at the windows containing the repeat.
            assert verify_cycle_labelling(problem, [1, 1, 2], engine=engine) == [0, 1]
        # One label below the window length must be rejected, not wrapped.
        with pytest.raises(InvalidProblemError):
            verify_cycle_labelling(problem, [1, 2])

    def test_single_label_alphabet(self):
        constant_ok = CycleLCL(
            name="all-a", alphabet=("a",), radius=1,
            feasible_windows=frozenset({("a", "a", "a")}),
        )
        graph = build_neighbourhood_graph(constant_ok)
        assert graph.has_self_loop()
        result = classify_cycle_problem(constant_ok)
        assert result.complexity is ComplexityClass.CONSTANT
        assert verify_cycle_labelling(constant_ok, ["a"] * 7) == []

        constant_empty = CycleLCL(
            name="never", alphabet=("a",), radius=1, feasible_windows=frozenset()
        )
        result = classify_cycle_problem(constant_empty)
        assert result.complexity is ComplexityClass.GLOBAL
        assert result.evidence["solvable_for_some_lengths"] is False
        assert verify_cycle_labelling(constant_empty, ["a"] * 5) == [0, 1, 2, 3, 4]

    def test_infeasible_window_specifications_raise(self):
        # Malformed windows raise InvalidProblemError at specification time
        # instead of silently feeding the classifier garbage.
        with pytest.raises(InvalidProblemError):
            CycleLCL(
                name="wrong-length", alphabet=(0, 1), radius=2,
                feasible_windows=frozenset({(0, 1, 0)}),  # needs length 5
            )
        with pytest.raises(InvalidProblemError):
            CycleLCL(
                name="foreign-label", alphabet=(0, 1), radius=1,
                feasible_windows=frozenset({(0, 2, 0)}),
            )
        with pytest.raises(InvalidProblemError):
            CycleLCL(
                name="zero-radius", alphabet=(0, 1), radius=0,
                feasible_windows=frozenset({(0,)}),
            )
        with pytest.raises(ValueError):
            verify_cycle_labelling(
                cycle_colouring_problem(3), [1, 2, 3], engine="turbo"
            )


class TestNeighbourhoodGraph:
    def test_three_colouring_graph_structure(self):
        graph = build_neighbourhood_graph(cycle_colouring_problem(3))
        assert len(graph.states) == 6  # ordered pairs of distinct colours
        assert not graph.has_self_loop()
        assert graph.has_cycle()

    def test_independent_set_has_self_loop(self):
        graph = build_neighbourhood_graph(cycle_independent_set_problem())
        assert graph.has_self_loop()
        assert (0, 0) in graph.self_loop_states()

    def test_mis_closed_walk_lengths_match_paper(self):
        # The paper's Figure 2 caption: state 00 has walks of lengths 3 and 5.
        graph = build_neighbourhood_graph(cycle_maximal_independent_set_problem())
        lengths = graph.closed_walk_lengths((0, 0), 12)
        assert 3 in lengths
        assert 5 in lengths
        assert 4 not in lengths
        assert {6, 7, 8, 9, 10}.issubset(lengths)

    def test_mis_flexibility(self):
        graph = build_neighbourhood_graph(cycle_maximal_independent_set_problem())
        flexible = graph.flexible_states()
        # Lengths 3 and 5 are coprime so the state is flexible; the exact
        # flexibility is 5 (lengths 5, 6, 7, ... are all realisable while 4
        # is not).
        assert flexible[(0, 0)] == 5
        assert flexible[(0, 1)] == 2

    def test_two_colouring_not_flexible(self):
        graph = build_neighbourhood_graph(cycle_colouring_problem(2))
        assert graph.flexible_states() == {}
        assert graph.has_cycle()

    def test_walk_of_length_reconstruction(self):
        graph = build_neighbourhood_graph(cycle_colouring_problem(3))
        walk = graph.walk_of_length((1, 2), 5)
        assert walk is not None
        assert walk[0] == walk[-1] == (1, 2)
        assert len(walk) == 6
        for first, second in zip(walk, walk[1:]):
            assert second in graph.successors[first]
        assert graph.walk_of_length((1, 2), 1) is None


class TestClassification:
    def test_figure_2_classification(self):
        expectations = {
            cycle_colouring_problem(2).name: ComplexityClass.GLOBAL,
            cycle_colouring_problem(3).name: ComplexityClass.LOG_STAR,
            cycle_maximal_independent_set_problem().name: ComplexityClass.LOG_STAR,
            cycle_independent_set_problem().name: ComplexityClass.CONSTANT,
        }
        for problem in (
            cycle_colouring_problem(2),
            cycle_colouring_problem(3),
            cycle_maximal_independent_set_problem(),
            cycle_independent_set_problem(),
        ):
            result = classify_cycle_problem(problem)
            assert result.complexity is expectations[problem.name]
            assert result.exact

    def test_maximal_matching_is_log_star(self):
        result = classify_cycle_problem(cycle_maximal_matching_problem())
        assert result.complexity is ComplexityClass.LOG_STAR

    def test_agreement_problem_is_constant(self):
        result = classify_cycle_problem(cycle_consistent_orientation_problem())
        assert result.complexity is ComplexityClass.CONSTANT

    def test_unsolvable_problem_is_global(self):
        # Strictly increasing labels admit no cycle in H at all.
        problem = CycleLCL(
            name="strictly-increasing",
            alphabet=(0, 1, 2),
            radius=1,
            feasible_windows=frozenset(
                (a, b, c) for a in (0, 1, 2) for b in (0, 1, 2) for c in (0, 1, 2) if a < b < c
            ),
        )
        result = classify_cycle_problem(problem)
        assert result.complexity is ComplexityClass.GLOBAL
        assert result.evidence["solvable_for_some_lengths"] is False


class TestCycleSynthesis:
    @pytest.mark.parametrize(
        "problem_factory",
        [
            cycle_colouring_problem,
        ],
    )
    def test_synthesis_refuses_wrong_class(self, problem_factory):
        with pytest.raises(SynthesisError):
            synthesise_cycle_algorithm(problem_factory(2))
        with pytest.raises(SynthesisError):
            synthesise_cycle_algorithm(cycle_independent_set_problem())

    @pytest.mark.parametrize(
        "problem",
        [
            cycle_colouring_problem(3),
            cycle_colouring_problem(4),
            cycle_maximal_independent_set_problem(),
            cycle_maximal_matching_problem(),
        ],
        ids=lambda p: p.name,
    )
    def test_synthesised_algorithms_produce_feasible_outputs(self, problem):
        algorithm = synthesise_cycle_algorithm(problem)
        identifiers = cycle_identifiers(60, seed=7)
        labels, rounds = algorithm.run(identifiers)
        assert verify_cycle_labelling(problem, labels) == []
        assert rounds > 0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(20, 120), st.integers(0, 50))
    def test_three_colouring_synthesis_over_many_instances(self, length, seed):
        problem = cycle_colouring_problem(3)
        algorithm = synthesise_cycle_algorithm(problem)
        labels, _rounds = algorithm.run(cycle_identifiers(length, seed=seed))
        assert verify_cycle_labelling(problem, labels) == []

    def test_rounds_grow_slowly_with_length(self):
        problem = cycle_colouring_problem(3)
        algorithm = synthesise_cycle_algorithm(problem)
        _, rounds_small = algorithm.run(cycle_identifiers(30, seed=1))
        _, rounds_large = algorithm.run(cycle_identifiers(300, seed=1))
        # Θ(log* n) behaviour: the round count barely moves over a 10x size
        # increase (certainly far below linear growth).
        assert rounds_large <= rounds_small + 20
        assert rounds_large < 300 / 2

    def test_too_short_cycle_rejected(self):
        algorithm = synthesise_cycle_algorithm(cycle_colouring_problem(3))
        with pytest.raises(UnsolvableInstanceError):
            algorithm.run(cycle_identifiers(4, seed=0))


class TestGlobalCycleSolver:
    def test_two_colouring_even_cycle(self):
        problem = cycle_colouring_problem(2)
        labels = solve_globally_on_cycle(problem, 24)
        assert verify_cycle_labelling(problem, labels) == []

    def test_two_colouring_odd_cycle_unsolvable(self):
        with pytest.raises(UnsolvableInstanceError):
            solve_globally_on_cycle(cycle_colouring_problem(2), 25)

    def test_mis_solvable_globally(self):
        problem = cycle_maximal_independent_set_problem()
        labels = solve_globally_on_cycle(problem, 17)
        assert verify_cycle_labelling(problem, labels) == []
