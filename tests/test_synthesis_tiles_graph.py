"""Tests for tile enumeration and the tile neighbourhood graph (Appendix A.1).

The quantitative targets come straight from the paper: the 16 tiles shown
for 3×2 windows at k = 1 (Section 7's illustration) and — in the slow
benchmark — the 2079 tiles for 7×5 windows at k = 3.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SynthesisError
from repro.grid.subgrid import Window
from repro.synthesis.tile_graph import build_tile_graph, occurring_windows
from repro.synthesis.tiles import (
    enumerate_tiles,
    is_tile,
    maximum_anchor_count,
    tiles_containing_anchor_at,
)


class TestTileEnumeration:
    def test_paper_count_for_k1_windows(self):
        # Section 7 displays the complete list of k = 1 tiles on 3×2 windows:
        # sixteen of them (all placements of 1-3 anchors; the all-empty
        # pattern is not extendable because the two middle cells can only be
        # dominated by conflicting outside anchors).
        assert len(enumerate_tiles(2, 3, 1)) == 16
        assert len(enumerate_tiles(3, 2, 1)) == 16

    def test_all_zero_window_is_not_a_tile_for_3x2(self):
        empty = Window(((0, 0, 0), (0, 0, 0)))
        assert not is_tile(empty, 1)

    def test_all_zero_wide_window_is_a_tile_for_k1(self):
        # In a 3x3 window the centre cell cannot be dominated from outside,
        # but an all-zero 2x2 window can be completed.
        assert is_tile(Window(((0, 0), (0, 0))), 1)
        assert not is_tile(Window(((0, 0, 0), (0, 0, 0), (0, 0, 0))), 1)

    def test_single_anchor_windows_are_tiles(self):
        for tile in tiles_containing_anchor_at(enumerate_tiles(2, 3, 1), 0, 0):
            assert tile.value(0, 0) == 1

    def test_independence_is_enforced(self):
        adjacent_anchors = Window(((1, 1), (0, 0)))
        assert not is_tile(adjacent_anchors, 1)
        diagonal_anchors = Window(((1, 0), (0, 1)))
        assert is_tile(diagonal_anchors, 1)
        assert not is_tile(diagonal_anchors, 2)

    def test_k2_counts_are_consistent_between_orientations(self):
        assert len(enumerate_tiles(3, 4, 2)) == len(enumerate_tiles(4, 3, 2))

    def test_invalid_parameters(self):
        with pytest.raises(SynthesisError):
            enumerate_tiles(0, 3, 1)
        with pytest.raises(SynthesisError):
            enumerate_tiles(3, 3, 0)

    def test_maximum_anchor_count(self):
        tiles = enumerate_tiles(2, 3, 1)
        assert maximum_anchor_count(tiles) == 3
        assert maximum_anchor_count(()) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 1_000_000))
    def test_heredity_property(self, seed):
        """Every sub-window of a tile is again a tile (Appendix A.1)."""
        import random

        rng = random.Random(seed)
        tiles = enumerate_tiles(3, 3, 2)
        tile = tiles[rng.randrange(len(tiles))]
        x0 = rng.randrange(2)
        y0 = rng.randrange(2)
        sub = tile.subwindow(x0, y0, 2, 2)
        assert is_tile(sub, 2)


class TestTileGraph:
    def test_build_and_validate(self):
        graph = build_tile_graph(2, 2, 1)
        assert graph.tile_count == len(enumerate_tiles(2, 2, 1))
        assert graph.edge_count > 0
        graph.validate_heredity()  # should not raise

    def test_edges_connect_enumerated_tiles(self):
        graph = build_tile_graph(2, 3, 1)
        tile_set = set(graph.tiles)
        for west, east in graph.horizontal_pairs:
            assert west in tile_set and east in tile_set
        for south, north in graph.vertical_pairs:
            assert south in tile_set and north in tile_set

    def test_undirected_adjacency_symmetry(self):
        graph = build_tile_graph(2, 2, 1)
        adjacency = graph.undirected_adjacency()
        for tile, neighbours in adjacency.items():
            for neighbour in neighbours:
                assert tile in adjacency[neighbour]

    def test_occurring_windows_grouping(self):
        tiles = enumerate_tiles(2, 3, 1)
        grouped = occurring_windows(tiles)
        assert sum(len(group) for group in grouped.values()) == 16
        assert 0 not in grouped  # the all-zero pattern is not a tile
        assert set(grouped) == {1, 2, 3}
        assert len(grouped[1]) == 6
        assert len(grouped[2]) == 8
        assert len(grouped[3]) == 2
