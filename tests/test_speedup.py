"""Tests for the speed-up machinery: Voronoi tiles, normal form, bounded growth."""

import pytest

from repro.errors import SimulationError, SynthesisError
from repro.grid.identifiers import random_identifiers
from repro.grid.subgrid import Window
from repro.grid.torus import ToroidalGrid
from repro.speedup.bounded_growth import (
    classify_locality,
    grid_growth_bound,
    simulation_palette_size,
    speedup_threshold,
)
from repro.speedup.normal_form import (
    FunctionAnchorRule,
    NormalFormAlgorithm,
    apply_anchor_rule,
    choose_normal_form_k,
)
from repro.speedup.voronoi import (
    VoronoiDecomposition,
    compute_voronoi_decomposition,
    local_identifier_assignment,
)
from repro.symmetry.mis import compute_anchors


@pytest.fixture()
def grid_and_anchors():
    grid = ToroidalGrid.square(12)
    identifiers = random_identifiers(grid, seed=6)
    anchors = compute_anchors(grid, identifiers, k=2, norm="l1")
    return grid, identifiers, anchors


class TestVoronoi:
    def test_every_node_is_assigned_to_a_nearest_anchor(self, grid_and_anchors):
        grid, _identifiers, anchors = grid_and_anchors
        decomposition = compute_voronoi_decomposition(grid, anchors.members, search_radius=2)
        assert set(decomposition.owner) == set(grid.nodes())
        for node, owner in decomposition.owner.items():
            own_distance = grid.l1_distance(node, owner)
            for other in anchors.members:
                assert own_distance <= grid.l1_distance(node, other)

    def test_local_coordinates_point_to_the_owner(self, grid_and_anchors):
        grid, _identifiers, anchors = grid_and_anchors
        decomposition = compute_voronoi_decomposition(grid, anchors.members)
        for node in grid.nodes():
            displacement = decomposition.local_coordinates[node]
            assert grid.shift(decomposition.owner[node], displacement) == node

    def test_tile_sizes_and_radius(self, grid_and_anchors):
        grid, _identifiers, anchors = grid_and_anchors
        decomposition = compute_voronoi_decomposition(grid, anchors.members)
        sizes = decomposition.tile_sizes()
        assert sum(sizes.values()) == grid.node_count
        # every node is within k = 2 of its anchor because the anchors are
        # maximal in G^(2)
        assert decomposition.max_tile_radius(grid) <= 2
        anchor = next(iter(anchors.members))
        assert anchor in decomposition.tile(anchor)

    def test_empty_anchor_set_rejected(self):
        grid = ToroidalGrid.square(6)
        with pytest.raises(SimulationError):
            compute_voronoi_decomposition(grid, set())

    def test_diagonal_step_towards_anchor_stays_in_tile(self, grid_and_anchors):
        # The consistent tie-break guarantees this; the L_M solver relies on it.
        grid, _identifiers, anchors = grid_and_anchors
        decomposition = compute_voronoi_decomposition(grid, anchors.members)
        for node in grid.nodes():
            dx, dy = decomposition.local_coordinates[node]
            if dx == 0 and dy == 0:
                continue
            step = (-1 if dx > 0 else (1 if dx < 0 else 0), -1 if dy > 0 else (1 if dy < 0 else 0))
            towards = grid.shift(node, step)
            assert decomposition.owner[towards] == decomposition.owner[node]

    def test_tile_lookups_cover_empty_tiles(self):
        # A decomposition constructed directly may contain anchors that own
        # nothing; tile/tile_sizes must report them as empty rather than
        # scanning the owner map and silently omitting them.
        grid = ToroidalGrid.square(6)
        busy, idle = (0, 0), (3, 3)
        owner = {node: busy for node in grid.nodes()}
        decomposition = VoronoiDecomposition(anchors={busy, idle}, owner=owner)
        assert decomposition.tile(idle) == []
        assert sorted(decomposition.tile(busy)) == sorted(grid.nodes())
        sizes = decomposition.tile_sizes()
        assert sizes[idle] == 0
        assert sizes[busy] == grid.node_count
        assert decomposition.tile((5, 5)) == []  # unknown anchor: empty, no error

    def test_tile_index_is_built_once_and_tracks_growth(self, grid_and_anchors):
        grid, _identifiers, anchors = grid_and_anchors
        decomposition = compute_voronoi_decomposition(grid, anchors.members)
        first = decomposition._tiles()
        assert decomposition._tiles() is first  # cached, not rebuilt per call
        # tile() returns copies: mutating one must not corrupt the index.
        anchor = next(iter(anchors.members))
        nodes = decomposition.tile(anchor)
        nodes.append(("sentinel",))
        assert ("sentinel",) not in decomposition.tile(anchor)
        # Growing the owner map invalidates and rebuilds the index.
        extra_anchor = ("extra",)
        decomposition.anchors.add(extra_anchor)
        decomposition.owner[("extra-node",)] = extra_anchor
        assert decomposition.tile(extra_anchor) == [("extra-node",)]

    def test_invalidate_tiles_after_same_size_mutation(self):
        grid = ToroidalGrid.square(6)
        first, second = (0, 0), (3, 3)
        owner = {node: first for node in grid.nodes()}
        decomposition = VoronoiDecomposition(anchors={first, second}, owner=owner)
        assert decomposition.tile_sizes()[second] == 0
        # A same-size reassignment is invisible to the length guard; the
        # documented contract is an explicit invalidation.
        decomposition.owner[(1, 1)] = second
        decomposition.invalidate_tiles()
        assert decomposition.tile(second) == [(1, 1)]
        assert decomposition.tile_sizes()[first] == grid.node_count - 1

    def test_dict_and_indexed_engines_agree(self, grid_and_anchors):
        grid, _identifiers, anchors = grid_and_anchors
        reference = compute_voronoi_decomposition(grid, anchors.members, engine="dict")
        indexed = compute_voronoi_decomposition(grid, anchors.members, engine="indexed")
        assert reference.owner == indexed.owner
        assert reference.local_coordinates == indexed.local_coordinates
        with pytest.raises(ValueError):
            compute_voronoi_decomposition(grid, anchors.members, engine="numpy")

    def test_local_identifiers_are_locally_unique(self, grid_and_anchors):
        grid, _identifiers, anchors = grid_and_anchors
        decomposition = compute_voronoi_decomposition(grid, anchors.members)
        local_ids = local_identifier_assignment(grid, decomposition, uniqueness_radius=1)
        assert len(local_ids) == grid.node_count
        for node in grid.nodes():
            for other in grid.ball(node, 1):
                if other != node:
                    assert local_ids[node] != local_ids[other]

    def test_local_identifier_uniqueness_violation_detected(self, grid_and_anchors):
        grid, _identifiers, anchors = grid_and_anchors
        decomposition = compute_voronoi_decomposition(grid, anchors.members)
        # Demanding uniqueness over a radius larger than the anchor spacing
        # must fail: distinct tiles repeat the same local coordinates.
        with pytest.raises(SimulationError):
            local_identifier_assignment(grid, decomposition, uniqueness_radius=8)


class TestNormalForm:
    def test_choose_normal_form_k(self):
        # A constant-locality base algorithm gets a small even k: the first
        # even k with locality < k/4 - 4.
        assert choose_normal_form_k(lambda n: 0) == 18
        assert choose_normal_form_k(lambda n: 3) == 30
        with pytest.raises(SynthesisError):
            choose_normal_form_k(lambda n: n, maximum=64)

    def test_anchor_rule_window_dimensions(self):
        rule = FunctionAnchorRule(5, 3, lambda window: window.count(1))
        assert rule.radius == 2

    def test_apply_anchor_rule_counts_anchors(self):
        grid = ToroidalGrid.square(10)
        identifiers = random_identifiers(grid, seed=8)
        anchors = compute_anchors(grid, identifiers, k=2)
        rule = FunctionAnchorRule(3, 3, lambda window: window.count(1))
        outputs = apply_anchor_rule(grid, anchors, rule)
        indicator = anchors.indicator(grid)
        for node in grid.nodes():
            expected = sum(
                indicator[grid.shift(node, (dx, dy))] for dx in (-1, 0, 1) for dy in (-1, 0, 1)
            )
            assert outputs[node] == expected

    def test_normal_form_algorithm_runs_and_reports_rounds(self):
        grid = ToroidalGrid.square(9)
        identifiers = random_identifiers(grid, seed=2)
        # "Am I an anchor?" as a trivial problem-specific rule.
        rule = FunctionAnchorRule(1, 1, lambda window: window.value(0, 0))
        algorithm = NormalFormAlgorithm(rule=rule, k=2, name="anchor-indicator")
        result = algorithm.run(grid, identifiers)
        assert set(result.node_labels.values()) <= {0, 1}
        assert result.rounds > 0
        assert result.metadata["k"] == 2
        assert result.metadata["anchor_count"] == sum(result.node_labels.values())

    def test_normal_form_requires_two_dimensions(self):
        cube = ToroidalGrid.square(5, dimension=3)
        identifiers = random_identifiers(cube, seed=1)
        rule = FunctionAnchorRule(1, 1, lambda window: 0)
        with pytest.raises(SynthesisError):
            NormalFormAlgorithm(rule=rule, k=1).run(cube, identifiers)


class TestBoundedGrowth:
    def test_grid_growth_bounds(self):
        assert grid_growth_bound(1)(3) == 7
        assert grid_growth_bound(2)(2) == 13
        assert grid_growth_bound(3)(1) == 27

    def test_speedup_threshold_for_constant_locality(self):
        growth = grid_growth_bound(2)
        k = speedup_threshold(growth, lambda n: 1)
        # f(2*1+3) = f(5) = 61, so the smallest suitable k is 62.
        assert k == 62
        assert simulation_palette_size(growth, lambda n: 1, k) == 62

    def test_speedup_threshold_absent_for_sqrt_locality(self):
        growth = grid_growth_bound(2)
        assert classify_locality(growth, lambda n: n, maximum=2000) is None
        with pytest.raises(SynthesisError):
            speedup_threshold(growth, lambda n: n, maximum=2000)

    def test_growth_inverse(self):
        growth = grid_growth_bound(2)
        assert growth.inverse_at(5) == 1
        assert growth.inverse_at(6) == 2

    def test_invalid_hereditary_constant(self):
        with pytest.raises(SynthesisError):
            speedup_threshold(grid_growth_bound(2), lambda n: 0, hereditary_constant=0)
