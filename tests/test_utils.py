"""Tests for the shared arithmetic and iteration helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.iter import chunks, pairwise_cyclic, product_range, sliding_windows, transpose
from repro.utils.math import (
    ceil_div,
    is_prime,
    iterated_log,
    log_star,
    next_prime,
    sign,
    toroidal_difference,
    toroidal_distance,
)


class TestLogStar:
    def test_small_values(self):
        assert log_star(0) == 0
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_is_monotone(self):
        values = [log_star(n) for n in range(1, 2000)]
        assert values == sorted(values)

    def test_iterated_log_matches_definition(self):
        assert iterated_log(256, 1) == pytest.approx(8.0)
        assert iterated_log(256, 2) == pytest.approx(3.0)
        assert iterated_log(2, 5) == 0.0


class TestPrimes:
    def test_small_primes(self):
        primes = [n for n in range(2, 50) if is_prime(n)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]

    def test_non_primes(self):
        for n in (-7, 0, 1, 4, 9, 100, 121):
            assert not is_prime(n)

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(14) == 17
        assert next_prime(17) == 17

    @given(st.integers(min_value=2, max_value=2000))
    def test_next_prime_is_prime_and_not_smaller(self, n):
        p = next_prime(n)
        assert p >= n
        assert is_prime(p)


class TestToroidalArithmetic:
    def test_difference_examples(self):
        assert toroidal_difference(3, 1, 10) == 2
        assert toroidal_difference(1, 3, 10) == -2
        assert toroidal_difference(9, 0, 10) == -1
        assert toroidal_difference(0, 9, 10) == 1

    def test_distance_examples(self):
        assert toroidal_distance(0, 9, 10) == 1
        assert toroidal_distance(2, 7, 10) == 5

    @given(st.integers(0, 99), st.integers(0, 99), st.integers(3, 100))
    def test_difference_consistent_with_distance(self, a, b, n):
        a, b = a % n, b % n
        diff = toroidal_difference(a, b, n)
        assert abs(diff) == toroidal_distance(a, b, n) or (
            # the antipodal point on an even cycle has two representations
            abs(diff) == n - toroidal_distance(a, b, n)
        )
        assert (b + diff) % n == a

    @given(st.integers(0, 99), st.integers(0, 99), st.integers(3, 100))
    def test_distance_is_a_metric_on_the_cycle(self, a, b, n):
        a, b = a % n, b % n
        assert toroidal_distance(a, b, n) == toroidal_distance(b, a, n)
        assert toroidal_distance(a, a, n) == 0
        assert 0 <= toroidal_distance(a, b, n) <= n // 2

    def test_difference_tie_breaking_on_even_side(self):
        # On an even cycle the antipodal displacement n/2 has two
        # representations (+n/2 and -n/2); the contract picks +n/2 so the
        # result always lies in the half-open interval (-n/2, n/2].
        assert toroidal_difference(3, 0, 6) == 3
        assert toroidal_difference(0, 3, 6) == 3
        assert toroidal_difference(5, 1, 8) == 4
        assert toroidal_difference(1, 5, 8) == 4
        # Just inside the tie: one step off the antipode keeps its sign.
        assert toroidal_difference(2, 0, 6) == 2
        assert toroidal_difference(4, 0, 6) == -2

    @given(st.integers(0, 99), st.integers(0, 99), st.integers(3, 100))
    def test_difference_lies_in_half_open_interval(self, a, b, n):
        a, b = a % n, b % n
        diff = toroidal_difference(a, b, n)
        assert -n / 2 < diff <= n / 2

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            toroidal_distance(1, 2, 0)
        with pytest.raises(ValueError):
            toroidal_difference(1, 2, -1)


class TestMisc:
    def test_ceil_div(self):
        assert ceil_div(7, 2) == 4
        assert ceil_div(8, 2) == 4
        assert ceil_div(0, 3) == 0
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_sign(self):
        assert sign(5) == 1
        assert sign(-2) == -1
        assert sign(0) == 0


class TestIterationHelpers:
    def test_chunks(self):
        assert list(chunks([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]
        with pytest.raises(ValueError):
            list(chunks([1], 0))

    def test_sliding_windows(self):
        assert list(sliding_windows("abcd", 2)) == [("a", "b"), ("b", "c"), ("c", "d")]
        assert list(sliding_windows([1, 2], 3)) == []

    def test_pairwise_cyclic(self):
        assert list(pairwise_cyclic([1, 2, 3])) == [(1, 2), (2, 3), (3, 1)]

    def test_product_range(self):
        assert list(product_range(2, 2)) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_transpose(self):
        assert transpose([[1, 2], [3, 4]]) == [(1, 3), (2, 4)]

    @given(st.lists(st.integers(), min_size=1, max_size=30), st.integers(1, 10))
    def test_chunks_cover_everything(self, items, size):
        reassembled = [x for chunk in chunks(items, size) for x in chunk]
        assert reassembled == items
