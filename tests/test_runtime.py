"""Edge-case tests for the persistent shared-memory runtime.

The happy path — five-tier byte-identical results — lives in
``tests/test_equivalence_shm.py``; this module pins the runtime's failure
and lifecycle contracts: segment-name collisions, worker death mid-round,
the ``REPRO_WORKERS=1`` degrade path (with its one-time warning),
double-buffer swap correctness on odd round counts, and deterministic
shutdown/orphan cleanup of the shared segments.
"""

import gc
import os

import pytest

from repro.errors import SimulationError
from repro.grid.indexer import GridIndexer
from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import FunctionRule
from repro.local_model.engine import ShmEngine, plan_chunks
from repro.local_model.simulator import apply_rule
from repro.local_model.store import LabelCodec, shm_available
from repro.runtime import PoolBrokenError, SharedCodeBuffer, WorkerPool

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform lacks shm-tier prerequisites"
)

np = pytest.importorskip("numpy")


def _segment_exists(name):
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


def _grid_fixture(side=6):
    grid = ToroidalGrid((side, side))
    labels = {node: (i * 13) % 40 for i, node in enumerate(grid.nodes())}
    return grid, labels


def _min_plus(offset):
    return FunctionRule(1, lambda view: min(view.values()) + offset)


def _make_pool(grid, codec, rules, workers=2):
    indexer = GridIndexer.for_grid(grid)
    return WorkerPool(
        indexer,
        codec,
        {id(rule): rule for rule in rules},
        plan_chunks(indexer.node_count, workers),
    )


class TestSharedCodeBuffer:
    def test_name_collisions_are_retried(self):
        # Occupy the first candidate name; create() must survive the
        # collision and land on the second.
        taken = SharedCodeBuffer.create(8)
        try:
            buffer = SharedCodeBuffer.create(
                8, names=iter([taken.name, taken.name, f"{taken.name}_free"])
            )
            try:
                assert buffer.name == f"{taken.name}_free"
                buffer.array[:] = np.arange(8, dtype=np.int32)
                attached = SharedCodeBuffer.attach(buffer.name, 8)
                assert attached.array.tolist() == list(range(8))
                attached.close()
            finally:
                buffer.unlink()
        finally:
            taken.unlink()

    def test_exhausted_candidates_raise_cleanly(self):
        taken = SharedCodeBuffer.create(4)
        try:
            with pytest.raises(SimulationError, match="name attempts"):
                SharedCodeBuffer.create(4, names=iter([taken.name]))
        finally:
            taken.unlink()

    def test_unlink_is_idempotent_and_closes(self):
        buffer = SharedCodeBuffer.create(4)
        name = buffer.name
        buffer.unlink()
        buffer.unlink()
        assert not _segment_exists(name)
        with pytest.raises(SimulationError, match="closed"):
            buffer.array


class TestDoubleBuffer:
    @pytest.mark.parametrize("rounds", [1, 2, 3, 5])
    def test_swap_correctness_on_odd_and_even_round_counts(self, rounds):
        # Drive the pool directly: after k rounds of `+1` the snapshot
        # must be the input plus k, whichever physical buffer k rounds of
        # swapping landed on.
        grid, labels = _grid_fixture()
        codec = LabelCodec(range(41 + rounds))
        rule = _min_plus(1)
        with _make_pool(grid, codec, [rule]) as pool:
            indexer = pool.indexer
            codes = np.asarray(
                [codec.encode(labels[node]) for node in indexer.nodes],
                dtype=np.int32,
            )
            pool.load(codes)
            expected = {node: value for node, value in labels.items()}
            for round_number in range(1, rounds + 1):
                before = pool.current_index
                pool.round(id(rule))
                assert pool.current_index == 1 - before
                expected = apply_rule(grid, expected, rule)
            result = [codec.decode(code) for code in pool.snapshot()]
            assert result == [expected[node] for node in indexer.nodes]
            assert pool.current_index == rounds % 2

    def test_snapshot_is_owned_memory(self):
        grid, labels = _grid_fixture(4)
        codec = LabelCodec(range(50))
        rule = _min_plus(1)
        with _make_pool(grid, codec, [rule]) as pool:
            codes = np.zeros(pool.node_count, dtype=np.int32)
            pool.load(codes)
            snapshot = pool.snapshot()
            pool.round(id(rule))
        # The pool (and its segments) are gone; the snapshot must survive.
        assert snapshot.tolist() == [0] * pool.node_count


class TestWorkerDeath:
    def test_worker_death_mid_round_degrades_with_a_warning(self):
        grid, labels = _grid_fixture()
        parent = os.getpid()

        def update(view):
            if os.getpid() != parent:
                os._exit(23)
            return min(view.values())

        rule = FunctionRule(1, update)
        reference = apply_rule(grid, labels, rule)
        with ShmEngine(grid, workers=2, table_threshold=1) as engine:
            with pytest.warns(RuntimeWarning, match="worker-pool failure"):
                result = engine.apply_rule(labels, rule).to_dict()
            assert result == reference
            # The engine is marked broken: later rounds run serially, stay
            # correct, and do not warn a second time.
            assert engine._broken and engine._pool is None
            again = engine.apply_rule(labels, rule).to_dict()
            assert again == reference

    def test_spawn_failure_keeps_the_parallel_rung(self, monkeypatch):
        # A pool that cannot even spawn (process limits, /dev/shm quota)
        # must not demote the engine to the serial scan: per-round forks
        # need neither shared memory nor a persistent pool.
        import repro.runtime.pool as pool_module

        def refuse_spawn(*args, **kwargs):
            raise OSError("out of processes")

        monkeypatch.setattr(pool_module.WorkerPool, "__init__", refuse_spawn)
        grid, labels = _grid_fixture()
        rule = _min_plus(13)
        reference = apply_rule(grid, labels, rule)
        with ShmEngine(grid, workers=2, table_threshold=1) as engine:
            with pytest.warns(RuntimeWarning, match="spawn failure"):
                result = engine.apply_rule(labels, rule).to_dict()
            assert result == reference
            assert engine._broken and not engine._serial_only
            # The fallback engine is the parallel tier, not the bare scan.
            assert engine._fallback is not None

    def test_pool_reports_the_dead_worker(self):
        grid, labels = _grid_fixture()
        parent = os.getpid()

        def update(view):
            if os.getpid() != parent:
                os._exit(9)
            return 0

        rule = FunctionRule(1, update)
        codec = LabelCodec(sorted(set(labels.values())))
        pool = _make_pool(grid, codec, [rule])
        try:
            pool.load(np.zeros(pool.node_count, dtype=np.int32))
            with pytest.raises(PoolBrokenError, match="worker"):
                pool.round(id(rule))
            # Broken, not closed: resources stay alive so heal() can
            # repair the pool in place; until then work is refused.
            assert pool.broken and not pool.closed
            with pytest.raises(PoolBrokenError, match="broken"):
                pool.round(id(rule))
        finally:
            pool.close()


class TestDegradePaths:
    def test_single_worker_degrades_with_a_one_time_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        grid, labels = _grid_fixture()
        rule = _min_plus(7)
        reference = apply_rule(grid, labels, rule)
        with ShmEngine(grid, table_threshold=1) as engine:
            assert engine.workers == 1
            with pytest.warns(RuntimeWarning, match="cannot shard"):
                first = engine.apply_rule(labels, rule).to_dict()
            assert first == reference
            # One-time: the second application must not warn again.
            import warnings as warnings_module

            with warnings_module.catch_warnings():
                warnings_module.simplefilter("error")
                second = engine.apply_rule(labels, rule).to_dict()
            assert second == reference
            assert engine.pool_spawns == 0

    def test_parallel_unsafe_rules_degrade_silently(self):
        grid, labels = _grid_fixture()
        rule = _min_plus(3)
        rule.parallel_safe = False
        reference = apply_rule(grid, labels, rule)
        with ShmEngine(grid, workers=4, table_threshold=1) as engine:
            import warnings as warnings_module

            with warnings_module.catch_warnings():
                warnings_module.simplefilter("error")
                result = engine.apply_rule(labels, rule).to_dict()
            assert result == reference
            assert engine.rule_tier(rule) == "list"
            assert engine.pool_spawns == 0

    def test_unregistered_rule_respawns_the_pool(self):
        # Direct apply_rule calls with rules the pool has never seen are
        # correct (workers inherit rules at fork time, so the pool must
        # respawn) — the cost is one extra spawn, pinned here so a later
        # regression cannot silently turn it into a wrong answer.
        grid, labels = _grid_fixture()
        first, second = _min_plus(11), _min_plus(17)
        with ShmEngine(grid, workers=2, table_threshold=1) as engine:
            out_first = engine.apply_rule(labels, first).to_dict()
            assert engine.pool_spawns == 1
            out_second = engine.apply_rule(labels, second).to_dict()
            assert engine.pool_spawns == 2
            # Both rules are registered now; alternating is free.
            engine.apply_rule(labels, first)
            assert engine.pool_spawns == 2
        assert out_first == apply_rule(grid, labels, first)
        assert out_second == apply_rule(grid, labels, second)


class TestShutdown:
    def test_context_manager_shutdown_is_deterministic(self):
        grid, labels = _grid_fixture()
        rule = _min_plus(5)
        with ShmEngine(grid, workers=2, table_threshold=1) as engine:
            engine.apply_rule(labels, rule)
            pool = engine._pool
            names = [buffer.name for buffer in pool._buffers]
            processes = list(pool._processes)
            assert all(_segment_exists(name) for name in names)
        assert pool.closed
        assert all(not process.is_alive() for process in processes)
        assert not any(_segment_exists(name) for name in names)
        with pytest.raises(PoolBrokenError, match="shut down"):
            pool.round(id(rule))

    def test_orphaned_segments_are_cleaned_up_without_close(self):
        # An engine dropped without close() (a crashed caller) must not
        # leak segments: the buffer finalizers unlink them at collection.
        grid, labels = _grid_fixture()
        rule = _min_plus(5)
        engine = ShmEngine(grid, workers=2, table_threshold=1)
        engine.apply_rule(labels, rule)
        names = [buffer.name for buffer in engine._pool._buffers]
        assert all(_segment_exists(name) for name in names)
        del engine
        gc.collect()
        assert not any(_segment_exists(name) for name in names)
