"""Chaos equivalence leg: schedules under randomized fault plans.

Each test derives a private RNG from ``--equivalence-seed``, draws a
randomized :class:`FaultPlan` (worker kills, hangs, corrupt replies,
spawn/segment failures — see :meth:`FaultPlan.random`) and asserts that
shm-tier schedules run under it stay **byte-identical** to the dict
oracle: same labellings, same first-failing-node exceptions — whichever
faults fire, whether healing succeeds (:meth:`WorkerPool.heal` respawns
the broken workers and the round retries) or the retry budget exhausts
into the established degrade ladder.

The two acceptance paths of the resilience layer are pinned explicitly:
a healed pool *finishing its schedule on the shm tier* (one pool spawn,
respawned workers, no serial degrade) and bounded retries *exhausting
into the degrade ladder* (the pinned ``worker-pool failure`` warning,
serial for the rest of the schedule, still byte-identical).

When ``BENCH_RESULTS_DIR`` is set (the CI chaos leg), the module writes
``BENCH_chaos_resilience.json`` with the observed heal/degrade counters
so resilience regressions show up in ``bench-summary.json``.
"""

import json
import os
import warnings
from pathlib import Path

import pytest

from equivalence import (
    assert_equivalent,
    chaos_fault_plan,
    derive_rng,
    grid_corpus,
    run_chaos_schedule,
    run_dict_schedule,
)

from repro.local_model.algorithm import FunctionRule
from repro.local_model.store import shm_available
from repro.runtime import faults
from repro.runtime.faults import FaultPlan, WorkerFault

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform lacks shm-tier prerequisites"
)

#: Round deadline for every chaos run: far below the 30 s hang faults
#: inject, far above what a real round on these grids needs.
ROUND_TIMEOUT = "0.5"

_RESILIENCE = {
    "schedules": 0,
    "pool_spawns": 0,
    "pool_heals": 0,
    "worker_respawns": 0,
    "degraded_runs": 0,
    "healed_events": 0,
    "degrade_events": 0,
}


def _tally(stats):
    _RESILIENCE["schedules"] += 1
    _RESILIENCE["pool_spawns"] += stats.get("pool_spawns", 0)
    _RESILIENCE["pool_heals"] += stats.get("pool_heals", 0)
    _RESILIENCE["worker_respawns"] += stats.get("worker_respawns", 0)
    _RESILIENCE["degraded_runs"] += 1 if stats.get("broken") else 0
    events = stats.get("events", {})
    _RESILIENCE["healed_events"] += events.get("healed", 0)
    _RESILIENCE["degrade_events"] += events.get("degraded", 0)


@pytest.fixture(autouse=True)
def _chaos_env(monkeypatch):
    """Hermetic fault plane + round deadline for every test here."""
    faults.reset()
    monkeypatch.delenv(faults.PLAN_VARIABLE, raising=False)
    monkeypatch.setenv("REPRO_ROUND_TIMEOUT", ROUND_TIMEOUT)
    yield
    faults.reset()


@pytest.fixture(scope="module", autouse=True)
def _record_resilience():
    """Fold the module's resilience counters into the bench pipeline."""
    yield
    directory = os.environ.get("BENCH_RESULTS_DIR")
    if not directory:
        return
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    payload = {"benchmark": "chaos_resilience", **_RESILIENCE}
    scratch = path / "BENCH_chaos_resilience.json.tmp"
    scratch.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(scratch, path / "BENCH_chaos_resilience.json")


def _min_plus(offset):
    return FunctionRule(1, lambda view: min(view.values()) + offset)


def _schedule(rng):
    """A two-phase schedule totalling 4 rounds over a 40-label alphabet."""
    a = rng.randrange(1, 7)
    spread = FunctionRule(1, lambda view: min(view.values()) + a)
    mix = FunctionRule(
        1, lambda view: (max(view.values()) * 3 + min(view.values())) % 97
    )
    return [(spread, 2), (mix, 2)]


def _labels(rng, grid):
    return {node: rng.randrange(40) for node in grid.nodes()}


class TestChaosEquivalence:
    def test_random_fault_plans_stay_byte_identical(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "chaos:random-plans")
        for grid in grid_corpus(rng, extras=0):
            for workers in (2, 3):
                labels = _labels(rng, grid)
                schedule = _schedule(rng)
                plan = chaos_fault_plan(rng, workers=workers, rounds=4)
                stats = {}
                with warnings.catch_warnings():
                    # Degrades are legitimate chaos outcomes; equivalence
                    # is the invariant under test.
                    warnings.simplefilter("ignore", RuntimeWarning)
                    assert_equivalent(
                        lambda: run_dict_schedule(grid, labels, schedule),
                        lambda: run_chaos_schedule(
                            grid, labels, schedule, plan,
                            workers=workers, stats=stats,
                        ),
                        f"seed={equivalence_seed} grid={grid!r} "
                        f"workers={workers} plan={plan!r}",
                    )
                _tally(stats)

    def test_raising_rules_fail_identically_under_faults(
        self, equivalence_seed
    ):
        rng = derive_rng(equivalence_seed, "chaos:raising-rules")
        for grid in grid_corpus(rng, extras=0):
            poison = rng.randrange(40)

            def update(view, poison=poison):
                values = sorted(view.values())
                if values[0] == poison:
                    raise ValueError(f"poisoned label {poison}")
                return values[0] + 1

            schedule = [(FunctionRule(1, update), 3)]
            labels = _labels(rng, grid)
            plan = chaos_fault_plan(rng, workers=2, rounds=3)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                assert_equivalent(
                    lambda: run_dict_schedule(grid, labels, schedule),
                    lambda: run_chaos_schedule(
                        grid, labels, schedule, plan, workers=2
                    ),
                    f"seed={equivalence_seed} grid={grid!r} "
                    f"poison={poison} plan={plan!r}",
                )

    def test_healed_pool_finishes_the_schedule_on_the_shm_tier(
        self, equivalence_seed
    ):
        # Acceptance: one worker kill mid-schedule, healed in place — the
        # schedule finishes on the persistent pool (a single spawn, the
        # dead worker respawned) with no serial degrade and no warning.
        rng = derive_rng(equivalence_seed, "chaos:healed")
        grid = next(grid_corpus(rng, extras=0))
        labels = _labels(rng, grid)
        schedule = _schedule(rng)
        plan = FaultPlan(
            worker_faults=[WorkerFault(kind="kill", worker=0, round=2)]
        )
        stats = {}
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = run_chaos_schedule(
                grid, labels, schedule, plan, workers=2, stats=stats
            )
        assert result == run_dict_schedule(grid, labels, schedule)
        assert stats["pool_spawns"] == 1
        assert stats["pool_heals"] >= 1
        assert stats["worker_respawns"] >= 1
        assert not stats["broken"]
        assert stats["events"]["healed"] >= 1
        assert stats["events"]["degraded"] == 0
        _tally(stats)

    def test_exhausted_retries_take_the_degrade_ladder(
        self, equivalence_seed, monkeypatch
    ):
        # Acceptance: a worker that dies on *every* round exhausts the
        # bounded retry budget and the engine takes the established
        # serial-degrade ladder — with the pinned warning — while the
        # labelling stays byte-identical.
        monkeypatch.setenv("REPRO_POOL_RETRIES", "1")
        rng = derive_rng(equivalence_seed, "chaos:exhausted")
        grid = next(grid_corpus(rng, extras=0))
        labels = _labels(rng, grid)
        schedule = _schedule(rng)
        plan = FaultPlan(worker_faults=[WorkerFault(kind="kill", worker=0)])
        stats = {}
        with pytest.warns(RuntimeWarning, match="worker-pool failure"):
            result = run_chaos_schedule(
                grid, labels, schedule, plan, workers=2, stats=stats
            )
        assert result == run_dict_schedule(grid, labels, schedule)
        assert stats["pool_heals"] == 1  # the budget, fully spent
        assert stats["broken"]
        assert stats["events"]["degraded"] >= 1
        _tally(stats)
