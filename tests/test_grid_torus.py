"""Tests for the toroidal (and rectangular) grid substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidGridError
from repro.grid.torus import (
    Direction,
    EAST,
    NORTH,
    SOUTH,
    WEST,
    RectangularGrid,
    ToroidalGrid,
    adjacency_map,
    edge_endpoints,
)

node_coords = st.tuples(st.integers(0, 7), st.integers(0, 7))


class TestConstruction:
    def test_square_constructor(self):
        grid = ToroidalGrid.square(5)
        assert grid.sides == (5, 5)
        assert grid.dimension == 2
        assert grid.node_count == 25
        assert grid.edge_count == 50
        assert grid.degree == 4

    def test_rectangular_and_higher_dimensional(self):
        grid = ToroidalGrid((4, 6))
        assert grid.node_count == 24
        cube = ToroidalGrid.square(3, dimension=3)
        assert cube.node_count == 27
        assert cube.degree == 6

    def test_too_small_side_rejected(self):
        with pytest.raises(InvalidGridError):
            ToroidalGrid((2, 5))
        with pytest.raises(InvalidGridError):
            ToroidalGrid(())
        with pytest.raises(InvalidGridError):
            ToroidalGrid.square(5, dimension=0)

    def test_equality_and_hash(self):
        assert ToroidalGrid.square(4) == ToroidalGrid((4, 4))
        assert hash(ToroidalGrid.square(4)) == hash(ToroidalGrid((4, 4)))
        assert ToroidalGrid.square(4) != ToroidalGrid.square(5)


class TestAdjacency:
    def test_neighbours_wrap_around(self):
        grid = ToroidalGrid.square(4)
        neighbours = set(grid.neighbour_nodes((0, 0)))
        assert neighbours == {(1, 0), (3, 0), (0, 1), (0, 3)}

    def test_directions_have_names(self):
        assert EAST.name == "east"
        assert WEST.name == "west"
        assert NORTH.name == "north"
        assert SOUTH.name == "south"
        assert EAST.opposite() == WEST
        assert Direction(2, 1).name == "axis2+"

    def test_step_and_shift_agree(self):
        grid = ToroidalGrid.square(5)
        assert grid.step((4, 2), EAST) == (0, 2)
        assert grid.shift((4, 2), (1, 0)) == (0, 2)
        assert grid.step((0, 0), SOUTH) == (0, 4)

    def test_are_adjacent(self):
        grid = ToroidalGrid.square(5)
        assert grid.are_adjacent((0, 0), (4, 0))
        assert not grid.are_adjacent((0, 0), (2, 0))
        assert not grid.are_adjacent((0, 0), (1, 1))

    def test_adjacency_map_is_symmetric(self):
        grid = ToroidalGrid.square(4)
        adjacency = adjacency_map(grid)
        for node, neighbours in adjacency.items():
            assert len(neighbours) == 4
            for neighbour in neighbours:
                assert node in adjacency[neighbour]

    @settings(max_examples=30)
    @given(node_coords, st.sampled_from([EAST, WEST, NORTH, SOUTH]))
    def test_step_is_invertible(self, node, direction):
        grid = ToroidalGrid.square(8)
        there = grid.step(node, direction)
        assert grid.step(there, direction.opposite()) == node


class TestDistances:
    def test_l1_and_linf(self):
        grid = ToroidalGrid.square(8)
        assert grid.l1_distance((0, 0), (3, 2)) == 5
        assert grid.linf_distance((0, 0), (3, 2)) == 3
        # wrap-around shortcuts
        assert grid.l1_distance((0, 0), (7, 7)) == 2
        assert grid.linf_distance((0, 0), (7, 7)) == 1

    @settings(max_examples=50)
    @given(node_coords, node_coords)
    def test_displacement_recovers_node(self, u, v):
        grid = ToroidalGrid.square(8)
        displacement = grid.displacement(u, v)
        assert grid.shift(v, displacement) == u
        assert sum(abs(c) for c in displacement) == grid.l1_distance(u, v)

    @settings(max_examples=50)
    @given(node_coords, node_coords)
    def test_linf_at_most_l1(self, u, v):
        grid = ToroidalGrid.square(8)
        assert grid.linf_distance(u, v) <= grid.l1_distance(u, v)
        assert grid.l1_distance(u, v) <= 2 * grid.linf_distance(u, v)

    def test_ball_sizes(self):
        grid = ToroidalGrid.square(9)
        assert len(grid.ball((0, 0), 1, "l1")) == 5
        assert len(grid.ball((0, 0), 1, "linf")) == 9
        assert len(grid.ball((0, 0), 2, "l1")) == 13

    def test_ball_deduplicates_on_small_torus(self):
        grid = ToroidalGrid.square(3)
        assert len(grid.ball((0, 0), 2, "l1")) == 9  # the whole grid

    def test_wrapping_ball_members_unique_and_complete(self):
        # Once the radius exceeds the sides, offsets wrap many times over;
        # every node must still appear exactly once, for every norm.
        grid = ToroidalGrid((3, 4))
        for norm in ("l1", "linf"):
            for radius in (2, 3, 5):
                for node in [(0, 0), (2, 3), (1, 2)]:
                    ball = grid.ball(node, radius, norm)
                    assert len(ball) == len(set(ball))
                    if radius >= 5:
                        assert sorted(ball) == sorted(grid.nodes())

    def test_wrapping_linf_ball_covers_short_axis_first(self):
        # On a 3x5 torus a radius-2 L-infinity ball wraps (and saturates)
        # the length-3 axis but not the length-5 axis: 3 * 5 = 15 nodes.
        grid = ToroidalGrid((3, 5))
        ball = grid.ball((1, 1), 2, "linf")
        assert len(ball) == len(set(ball)) == 15

    def test_even_side_displacement_is_antipodal_positive(self):
        # Tie-breaking of toroidal_difference surfaces through displacement:
        # on even sides the antipodal component is +n/2, never -n/2.
        grid = ToroidalGrid((4, 6))
        assert grid.displacement((2, 3), (0, 0)) == (2, 3)
        assert grid.displacement((0, 0), (2, 3)) == (2, 3)


class TestEdgesAndRows:
    def test_edge_count_and_endpoints(self):
        grid = ToroidalGrid.square(4)
        edges = list(grid.edges())
        assert len(edges) == 32
        tail, head = edge_endpoints(grid, ((3, 1), 0))
        assert tail == (3, 1)
        assert head == (0, 1)

    def test_incident_edges(self):
        grid = ToroidalGrid.square(4)
        incident = grid.incident_edges((1, 1))
        assert len(incident) == 4
        assert ((1, 1), 0) in incident
        assert ((0, 1), 0) in incident
        assert ((1, 1), 1) in incident
        assert ((1, 0), 1) in incident

    def test_edge_between(self):
        grid = ToroidalGrid.square(4)
        assert grid.edge_between((1, 1), (2, 1)) == ((1, 1), 0)
        assert grid.edge_between((2, 1), (1, 1)) == ((1, 1), 0)
        assert grid.edge_between((0, 0), (0, 3)) == ((0, 3), 1)
        with pytest.raises(InvalidGridError):
            grid.edge_between((0, 0), (2, 2))

    def test_rows(self):
        grid = ToroidalGrid.square(4)
        rows_axis0 = list(grid.rows(0))
        assert len(rows_axis0) == 4
        assert all(len(row) == 4 for row in rows_axis0)
        # a row along axis 0 varies the x coordinate only
        for row in rows_axis0:
            assert len({node[1] for node in row}) == 1
        with pytest.raises(InvalidGridError):
            list(grid.rows(2))

    def test_every_node_in_exactly_one_row_per_axis(self):
        grid = ToroidalGrid((4, 5))
        for axis in range(2):
            seen = [node for row in grid.rows(axis) for node in row]
            assert sorted(seen) == sorted(grid.nodes())


class TestRectangularGrid:
    def test_degrees_and_corners(self):
        grid = RectangularGrid(4, 3)
        assert grid.node_count == 12
        assert sorted(grid.corners()) == [(0, 0), (0, 2), (3, 0), (3, 2)]
        assert grid.degree((0, 0)) == 2
        assert grid.degree((1, 0)) == 3
        assert grid.degree((1, 1)) == 4

    def test_ball_and_distance(self):
        grid = RectangularGrid(5, 5)
        assert grid.l1_distance((0, 0), (4, 4)) == 8  # no wrap-around
        assert len(grid.ball((0, 0), 1)) == 3
        assert len(grid.ball((2, 2), 1)) == 5

    def test_too_small(self):
        with pytest.raises(InvalidGridError):
            RectangularGrid(1, 5)
