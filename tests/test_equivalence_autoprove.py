"""Equivalence suite for ``REPRO_STATICS_AUTOPROVE=1`` (PR 9's tentpole).

Under the autoprove posture a rule with *no* ``parallel_safe``
declaration shards exactly when the interprocedural purity analysis
proves its body safe, and stays on the serial tier otherwise — in both
cases byte-identical to the dict oracle, labels *and* first-failing-node
exceptions, across all five engine tiers.  These tests pin that
contract, the one-pool-spawn invariant, the one-time
:class:`~repro.runtime.telemetry.StaticsEvent` telemetry, and the
auto-policy rung skipping for schedules with no sharding-eligible rule.
"""

import warnings

import pytest

from equivalence import (
    assert_engines_agree,
    derive_rng,
    random_torus,
    rule_engine_factories,
)

from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import FunctionRule, LocalRule
from repro.local_model.engine import ParallelEngine, ShmEngine
from repro.local_model.rules import (
    CATALOGUE,
    BorderRule,
    MinNeighbourRule,
    ThresholdFlipRule,
    _origin,
)
from repro.local_model.simulator import apply_rule
from repro.local_model.store import resolve_engine, shm_available
from repro.statics.purity import clear_analysis_cache

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform lacks shm-tier prerequisites"
)


@pytest.fixture(autouse=True)
def _autoprove(monkeypatch):
    """Every test here runs under the autoprove posture with 2 workers."""
    monkeypatch.setenv("REPRO_STATICS_AUTOPROVE", "1")
    monkeypatch.setenv("REPRO_WORKERS", "2")
    clear_analysis_cache()
    yield
    clear_analysis_cache()


def _identifier_labels(rng, grid):
    identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
    return {node: identifiers[node] for node in grid.nodes()}


def _poison_rule():
    """A helper-based raising rule: proven safe, raises on one label."""

    class PoisonHelperRule(LocalRule):
        radius = 1

        def update(self, view):
            return _checked_minimum(view)

    return PoisonHelperRule()


def _checked_minimum(view):
    smallest = min(view.values())
    if smallest == 0:
        raise ValueError(f"poisoned label {smallest}")
    return smallest


class TestAutoprovedSharding:
    def test_catalogue_rules_match_all_five_tiers(self, equivalence_seed):
        """Undeclared-but-proven rules shard byte-identically, warning-free."""
        rng = derive_rng(equivalence_seed, "autoprove-catalogue")
        for rule_class in (MinNeighbourRule, BorderRule, ThresholdFlipRule):
            grid = random_torus(rng)
            if rule_class is MinNeighbourRule:
                labels = _identifier_labels(rng, grid)
            else:
                labels = {node: rng.choice([0, 1]) for node in grid.nodes()}
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert_engines_agree(
                    rule_engine_factories(
                        grid,
                        labels,
                        rule_class(),
                        workers=2,
                        table_threshold=1,
                        include_shm=True,
                    ),
                    f"seed={equivalence_seed} rule={rule_class.__name__} "
                    f"grid={grid.sides}",
                )

    def test_shm_tier_executes_the_proof_with_one_pool_spawn(
        self, equivalence_seed
    ):
        """The acceptance criterion: a real undeclared catalogue rule runs
        on the shm tier (pool actually spawned) byte-identically to the
        dict oracle, with exactly one autoprove telemetry event."""
        rng = derive_rng(equivalence_seed, "autoprove-shm-spawn")
        grid = ToroidalGrid((rng.randint(6, 9), rng.randint(6, 9)))
        labels = _identifier_labels(rng, grid)
        rule = MinNeighbourRule()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with ShmEngine(grid, table_threshold=1) as engine:
                store = engine.store(labels)
                assert engine.rule_tier(rule) == "shm"
                current = store
                for _ in range(3):
                    current = engine.apply_rule(current, rule)
                assert engine.pool_spawns == 1
                assert engine._pool.spawn_verdicts == {id(rule): "proven-safe"}
                result = current.to_dict()
        events = engine.statics_events
        assert len(events) == 1
        assert (events[0].engine, events[0].kind) == ("shm", "autoprove")
        assert "PROVEN_SAFE" in events[0].detail
        expected = labels
        for _ in range(3):
            expected = apply_rule(grid, expected, MinNeighbourRule())
        assert result == expected

    def test_parallel_tier_shards_on_the_proof(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "autoprove-parallel")
        grid = random_torus(rng)
        labels = _identifier_labels(rng, grid)
        rule = MinNeighbourRule()
        engine = ParallelEngine(grid, workers=2, table_threshold=1)
        assert engine.rule_tier(rule, labels) == "sharded"
        result = engine.apply_rule(labels, rule).to_dict()
        assert result == apply_rule(grid, labels, MinNeighbourRule())
        kinds = [(event.engine, event.kind) for event in engine.statics_events]
        assert kinds == [("parallel", "autoprove")]

    def test_exceptions_stay_first_failing_node_across_tiers(
        self, equivalence_seed
    ):
        """The exception leg: a proven-safe helper rule that raises must
        fail identically (type, message, node) on every tier."""
        rng = derive_rng(equivalence_seed, "autoprove-poison")
        grid = random_torus(rng)
        labels = _identifier_labels(rng, grid)
        # Plant the poison label so at least one ball raises.
        poisoned = rng.choice(sorted(labels))
        labels[poisoned] = 0
        from repro.statics.purity import Verdict, analyse_rule

        rule = _poison_rule()
        assert analyse_rule(rule).verdict is Verdict.PROVEN_SAFE
        assert_engines_agree(
            rule_engine_factories(
                grid, labels, rule, workers=2, table_threshold=1, include_shm=True
            ),
            f"seed={equivalence_seed} grid={grid.sides} poisoned={poisoned}",
        )


class TestAutoblockedDegradation:
    def test_unknown_rule_degrades_byte_identically(self, equivalence_seed):
        """An undecided rule must not shard — and must not change results."""
        rng = derive_rng(equivalence_seed, "autoblock-unknown")
        grid = ToroidalGrid((rng.randint(6, 9), rng.randint(6, 9)))
        labels = _identifier_labels(rng, grid)
        rule = FunctionRule(1, lambda view: min(view.values()))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with ShmEngine(grid, table_threshold=1) as engine:
                store = engine.store(labels)
                assert engine.rule_tier(rule) == "list"
                result = engine.apply_rule(store, rule).to_dict()
                assert engine.pool_spawns == 0
        # The shm engine blocks the rule, then its parallel fallback
        # re-judges (and blocks) it for the per-round-fork rung: one
        # deduped event per engine.
        events = engine.statics_events
        assert [(event.engine, event.kind) for event in events] == [
            ("shm", "autoblock"),
            ("parallel", "autoblock"),
        ]
        assert all("serial tier" in event.detail for event in events)
        assert result == apply_rule(
            grid, labels, FunctionRule(1, lambda view: min(view.values()))
        )

    def test_declared_rules_keep_the_old_path(self, equivalence_seed):
        """An explicit parallel_safe declaration bypasses autoprove
        entirely: the rule shards on the author's word, no telemetry."""
        rng = derive_rng(equivalence_seed, "autoprove-declared")
        grid = ToroidalGrid((rng.randint(6, 9), rng.randint(6, 9)))
        labels = _identifier_labels(rng, grid)

        class DeclaredRule(LocalRule):
            radius = 1
            parallel_safe = True

            def update(self, view):
                pick = lambda values: min(values)  # noqa: E731 - UNKNOWN body
                return pick(view.values())

        rule = DeclaredRule()
        with ShmEngine(grid, table_threshold=1) as engine:
            store = engine.store(labels)
            assert engine.rule_tier(rule) == "shm"
            engine.apply_rule(store, rule)
            assert engine.pool_spawns == 1
        assert engine.statics_events == ()


class TestAutoPolicy:
    def test_auto_skips_sharded_rungs_for_unprovable_schedules(self):
        unknown = FunctionRule(1, lambda view: min(view.values()))
        resolved = resolve_engine(
            "auto",
            allowed=("indexed", "array", "parallel", "shm"),
            node_count=1 << 21,
            rules=[unknown],
        )
        assert resolved in ("array", "indexed")

    def test_auto_keeps_sharded_rungs_for_proven_schedules(self):
        resolved = resolve_engine(
            "auto",
            allowed=("indexed", "array", "parallel", "shm"),
            node_count=1 << 21,
            rules=[MinNeighbourRule()],
        )
        assert resolved == "shm"

    def test_auto_is_unchanged_without_rules(self):
        resolved = resolve_engine(
            "auto",
            allowed=("indexed", "array", "parallel", "shm"),
            node_count=1 << 21,
        )
        assert resolved == "shm"

    def test_default_posture_trusts_every_undeclared_rule(self, monkeypatch):
        """Without AUTOPROVE the rung skipping never engages: the declared
        default (trust) keeps today's behaviour byte-for-byte."""
        monkeypatch.delenv("REPRO_STATICS_AUTOPROVE", raising=False)
        unknown = FunctionRule(1, lambda view: min(view.values()))
        resolved = resolve_engine(
            "auto",
            allowed=("indexed", "array", "parallel", "shm"),
            node_count=1 << 21,
            rules=[unknown],
        )
        assert resolved == "shm"

    def test_every_catalogue_rule_is_autoprove_eligible(self):
        from repro.local_model.algorithm import sharding_eligible

        for rule_class in CATALOGUE:
            assert sharding_eligible(rule_class()), rule_class.__name__


def test_origin_helper_matches_view_shape():
    """Guard the catalogue's origin helper the closure proofs lean on."""
    grid = ToroidalGrid((4, 4))
    labels = {node: 1 for node in grid.nodes()}
    result = apply_rule(grid, labels, MinNeighbourRule())
    assert result == labels
    assert _origin({(0, 0): 1, (0, 1): 2}) == (0, 0)
