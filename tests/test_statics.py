"""Tests for :mod:`repro.statics` — purity prover, tier inference, lint, CLI.

The verdict-matrix rules below are defined at module level on purpose: the
purity prover reads rule bodies through ``inspect.getsource``, which only
works for code living in a real file (a heredoc/REPL rule degrades to
``UNKNOWN``, which is itself covered by the lambda cases).
"""

import json
import random
import textwrap
import time
import warnings

import pytest

from repro.local_model.algorithm import (
    FunctionRule,
    LocalRule,
    checked_parallel_safe,
    rule_traits,
)
from repro.local_model.store import resolve_engine
from repro.statics.contracts import (
    AllowlistError,
    apply_allowlist,
    load_allowlist,
    run_contract_checks,
)
from repro.statics.purity import (
    STRICT_VARIABLE,
    Verdict,
    analyse_rule,
    clear_analysis_cache,
    maybe_warn_parallel_unsafe,
)
from repro.statics.tiers import ball_size, infer_tier_eligibility
from repro.statics import cli


# --------------------------------------------------------------------------
# The verdict matrix
# --------------------------------------------------------------------------

_COUNTER = {"calls": 0}


class PureMinRule(LocalRule):
    radius = 1

    def update(self, view):
        return min(view.values())


class PureFreshLocalsRule(LocalRule):
    radius = 1

    def update(self, view):
        counts = {}
        for value in view.values():
            counts[value] = counts.get(value, 0) + 1
        best = sorted(counts.items())
        return best[0][0]


class ClosureMutatingRule(LocalRule):
    radius = 1

    def __init__(self):
        cell = [0]

        def update(view):
            cell[0] += 1
            return min(view.values()) + cell[0] * 0

        self._update = update

    def update(self, view):
        return self._update(view)


class CapturedDictRule(LocalRule):
    radius = 1

    def update(self, view):
        _COUNTER["calls"] += 1
        return min(view.values())


class RandomRule(LocalRule):
    radius = 1

    def update(self, view):
        return random.random()


class TimeRule(LocalRule):
    radius = 1

    def update(self, view):
        return time.time()


class SelfMutatingRule(LocalRule):
    radius = 1

    def __init__(self):
        self.seen = []

    def update(self, view):
        self.seen.append(min(view.values()))
        return self.seen[-1]


class TestVerdictMatrix:
    def setup_method(self):
        clear_analysis_cache()

    def test_pure_rules_are_proven_safe(self):
        assert analyse_rule(PureMinRule()).verdict is Verdict.PROVEN_SAFE
        assert analyse_rule(PureFreshLocalsRule()).verdict is Verdict.PROVEN_SAFE

    def test_captured_dict_write_is_proven_unsafe(self):
        analysis = analyse_rule(CapturedDictRule())
        assert analysis.verdict is Verdict.PROVEN_UNSAFE

    def test_random_and_time_calls_are_proven_unsafe(self):
        assert analyse_rule(RandomRule()).verdict is Verdict.PROVEN_UNSAFE
        assert analyse_rule(TimeRule()).verdict is Verdict.PROVEN_UNSAFE

    def test_attribute_mutation_on_self_is_proven_unsafe(self):
        assert analyse_rule(SelfMutatingRule()).verdict is Verdict.PROVEN_UNSAFE

    def test_closure_cell_mutation_is_proven_unsafe(self):
        # The rule's trampoline calls a captured closure; the closure body
        # mutates its cell, and that is what must be detected.
        rule = ClosureMutatingRule()
        assert analyse_rule(FunctionRule(1, rule._update)).verdict is Verdict.PROVEN_UNSAFE

    def test_pure_function_rule_is_proven_safe(self):
        # FunctionRule's `update` is a trampoline through self._function;
        # the analysis must look through it at the wrapped function.
        def plain(view):
            return min(view.values())

        assert analyse_rule(FunctionRule(1, plain)).verdict is Verdict.PROVEN_SAFE

    def test_lambda_degrades_to_unknown(self):
        rule = FunctionRule(1, lambda view: min(view.values()))
        assert analyse_rule(rule).verdict is Verdict.UNKNOWN

    def test_analysis_is_cached_per_code_object(self):
        first = analyse_rule(PureMinRule())
        second = analyse_rule(PureMinRule())
        assert first is second


# --------------------------------------------------------------------------
# Warning semantics
# --------------------------------------------------------------------------


class TestWarnings:
    def setup_method(self):
        clear_analysis_cache()

    def test_unsafe_declared_safe_warns_exactly_once_per_instance(self):
        rule = SelfMutatingRule()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            maybe_warn_parallel_unsafe(rule)
            maybe_warn_parallel_unsafe(rule)
        hits = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(hits) == 1
        assert "PROVEN_UNSAFE" in str(hits[0].message)

    def test_unknown_rules_do_not_warn(self):
        rule = FunctionRule(1, lambda view: min(view.values()))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(5):
                maybe_warn_parallel_unsafe(rule)
        assert [w for w in caught if issubclass(w.category, RuntimeWarning)] == []

    def test_opted_out_rules_do_not_warn(self):
        rule = SelfMutatingRule()
        rule.parallel_safe = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert checked_parallel_safe(rule) is False
        assert [w for w in caught if issubclass(w.category, RuntimeWarning)] == []

    def test_strict_mode_raises_every_time(self, monkeypatch):
        monkeypatch.setenv(STRICT_VARIABLE, "1")
        rule = SelfMutatingRule()
        for _ in range(2):
            with pytest.raises(RuntimeError, match="PROVEN_UNSAFE"):
                maybe_warn_parallel_unsafe(rule)


# --------------------------------------------------------------------------
# Trait consolidation
# --------------------------------------------------------------------------


class TestRuleTraits:
    def test_defaults_for_duck_typed_rules(self):
        class Bare:
            pass

        traits = rule_traits(Bare())
        assert traits.radius == 1
        assert traits.norm == "l1"
        assert traits.parallel_safe is True
        assert traits.update_batch is None
        assert traits.ball_spec == (1, "l1")

    def test_declared_traits_are_read(self):
        def batch(matrix):
            return matrix[:, 0]

        rule = FunctionRule(2, lambda view: 0, norm="linf", batch=batch)
        traits = rule_traits(rule)
        assert traits.ball_spec == (2, "linf")
        assert traits.update_batch is batch

    def test_resolve_engine_auto_respects_allowed(self):
        assert resolve_engine("auto", allowed=("dict", "indexed")) == "indexed"
        assert resolve_engine("auto", allowed=("dict",)) == "dict"


# --------------------------------------------------------------------------
# Tier-eligibility inference
# --------------------------------------------------------------------------


class TestTierInference:
    def test_ball_sizes_match_the_paper_geometry(self):
        assert ball_size(2, 1, "l1") == 5
        assert ball_size(2, 2, "l1") == 13
        assert ball_size(2, 1, "linf") == 9
        assert ball_size(1, 3, "l1") == 7
        assert ball_size(3, 1, "l1") == 7

    def test_pure_small_rule_is_table_and_shard_eligible(self):
        report = infer_tier_eligibility(PureMinRule(), alphabet_size=4)
        assert report.table_compilable is True
        assert report.shardable is True
        assert not report.fallback_only
        assert report.eligible_tiers[0] == "table"
        assert report.eligible_tiers[-1] == "list"

    def test_unsafe_rule_is_not_shardable(self):
        report = infer_tier_eligibility(SelfMutatingRule(), alphabet_size=1000)
        assert report.table_compilable is False
        assert report.shardable is False
        assert report.fallback_only
        assert any("PROVEN_UNSAFE" in note for note in report.notes)

    def test_degrade_ladder_mirrors_the_runtime_fallthrough(self):
        # Shardable rules enter at the persistent shm rung and demote
        # through parallel forks to the serial scan; unsafe rules have
        # nothing to fall from.
        safe = infer_tier_eligibility(PureMinRule(), alphabet_size=4)
        assert safe.degrade_ladder == ("table", "shm", "parallel", "serial")
        unsafe = infer_tier_eligibility(SelfMutatingRule(), alphabet_size=1000)
        assert unsafe.degrade_ladder == ("serial",)

    def test_degrade_ladder_round_trips_through_json(self):
        document = infer_tier_eligibility(PureMinRule(), alphabet_size=4).to_json()
        assert document["degrade_ladder"] == ["table", "shm", "parallel", "serial"]
        assert document["degrade_ladder"][-1] == "serial"

    def test_batch_rule_is_batch_eligible(self):
        rule = FunctionRule(1, lambda view: 0, batch=lambda matrix: matrix[:, 0])
        report = infer_tier_eligibility(rule, alphabet_size=10**6)
        assert report.batch_vectorisable
        assert "batch" in report.eligible_tiers

    def test_to_json_round_trips(self):
        report = infer_tier_eligibility(PureMinRule())
        document = json.loads(json.dumps(report.to_json()))
        assert document["rule"] == "PureMinRule"
        assert document["purity"] == "proven-safe"

    def test_topology_overrides_the_torus_ball_size(self):
        from repro.grid.topology import DirectedCycleTopology, TreeTopology

        # The star hub's radius-1 ball has 6 slots, against the 2-D torus
        # default of 5 — the compile exponent follows the topology.
        star = infer_tier_eligibility(
            PureMinRule(), alphabet_size=2, topology=TreeTopology.star(6)
        )
        assert star.size_of_ball == 6
        torus_default = infer_tier_eligibility(PureMinRule(), alphabet_size=2)
        assert torus_default.size_of_ball == 5
        cycle = infer_tier_eligibility(
            PureMinRule(), alphabet_size=2, topology=DirectedCycleTopology(99)
        )
        assert cycle.size_of_ball == 3
        assert cycle.table_compilable is True


# --------------------------------------------------------------------------
# Contract lint on seeded violations
# --------------------------------------------------------------------------


def _seed_tree(tmp_path, source, name="bad.py"):
    package = tmp_path / "src" / "repro"
    package.mkdir(parents=True)
    (package / name).write_text(textwrap.dedent(source))
    return tmp_path


class TestContractLint:
    def test_clean_repo_tree_has_no_findings(self, repo_root):
        findings = run_contract_checks(repo_root)
        allowlist = load_allowlist(repo_root / ".statics-allowlist")
        new, _allowlisted, stale = apply_allowlist(findings, allowlist)
        assert new == []
        assert stale == []

    def test_seeded_grid_shift_is_flagged(self, tmp_path):
        root = _seed_tree(
            tmp_path,
            """
            def sneaky(grid, node):
                return grid.shift(node, (1, 0))
            """,
        )
        findings = run_contract_checks(root)
        assert [f.check for f in findings] == ["grid-shift"]
        assert findings[0].symbol == "sneaky"

    def test_self_shift_is_not_flagged(self, tmp_path):
        root = _seed_tree(
            tmp_path,
            """
            class Torus:
                def shift(self, node, offset):
                    return node

                def neighbour(self, node):
                    return self.shift(node, (1, 0))
            """,
        )
        assert run_contract_checks(root) == []

    def test_seeded_unrouted_engine_param_is_flagged(self, tmp_path):
        root = _seed_tree(
            tmp_path,
            """
            def compute(grid, engine="indexed"):
                if engine == "indexed":
                    return 1
                return 2
            """,
        )
        findings = run_contract_checks(root)
        assert [f.check for f in findings] == ["engine-routing"]

    def test_routed_engine_param_passes(self, tmp_path):
        root = _seed_tree(
            tmp_path,
            """
            from repro.local_model.store import resolve_engine

            def compute(grid, engine="indexed"):
                engine = resolve_engine(engine, allowed=("dict", "indexed"))
                return engine

            def forwarding(grid, engine="indexed"):
                return compute(grid, engine=engine)
            """,
        )
        assert run_contract_checks(root) == []

    def test_synthesis_vocabulary_is_out_of_scope(self, tmp_path):
        root = _seed_tree(
            tmp_path,
            """
            def synthesise(problem, engine="csp"):
                return engine
            """,
        )
        assert run_contract_checks(root) == []

    def test_raw_multiprocessing_outside_runtime_is_flagged(self, tmp_path):
        root = _seed_tree(
            tmp_path,
            """
            from multiprocessing import shared_memory

            def leak():
                return shared_memory
            """,
        )
        findings = run_contract_checks(root)
        assert [f.check for f in findings] == ["raw-multiprocessing"]

    def test_fault_plane_import_outside_runtime_is_flagged(self, tmp_path):
        root = _seed_tree(
            tmp_path,
            """
            from repro.runtime.faults import current_plan

            def cheat(view):
                return 0 if current_plan() else 1
            """,
        )
        findings = run_contract_checks(root)
        assert [f.check for f in findings] == ["fault-plane"]
        assert findings[0].symbol == "repro.runtime.faults"

    def test_fault_symbols_via_the_package_surface_are_flagged(self, tmp_path):
        # `from repro.runtime import FaultPlan` is the same leak through
        # the package front door.
        root = _seed_tree(
            tmp_path,
            """
            from repro.runtime import FaultPlan, WorkerPool

            def plan():
                return FaultPlan(spawn_failures=1)
            """,
        )
        findings = run_contract_checks(root)
        assert [f.check for f in findings] == ["fault-plane"]
        assert findings[0].symbol == "repro.runtime.FaultPlan"

    def test_runtime_layer_may_import_the_fault_plane(self, tmp_path):
        runtime = tmp_path / "src" / "repro" / "runtime"
        runtime.mkdir(parents=True)
        (runtime / "helper.py").write_text(
            "from repro.runtime.faults import current_plan\n"
        )
        assert run_contract_checks(tmp_path) == []

    def test_buffer_acquire_without_release_is_flagged(self, tmp_path):
        root = _seed_tree(
            tmp_path,
            """
            from repro.runtime.buffers import SharedCodeBuffer

            def grab(n):
                return SharedCodeBuffer.create(n)
            """,
        )
        findings = run_contract_checks(root)
        assert [f.check for f in findings] == ["shared-buffer-lifecycle"]

    def test_seeded_neighbour_table_call_is_flagged(self, tmp_path):
        root = _seed_tree(
            tmp_path,
            """
            from repro.grid.geometry import ball_offsets

            def rebuild(grid, radius):
                return [ball_offsets(grid.dimension, radius, "l1")]
            """,
        )
        findings = run_contract_checks(root)
        assert [f.check for f in findings] == ["neighbour-tables"]
        assert findings[0].symbol == "rebuild"

    def test_grid_layer_may_build_neighbour_tables(self, tmp_path):
        root = _seed_tree(tmp_path, "", name="placeholder.py")
        grid_package = root / "src" / "repro" / "grid"
        grid_package.mkdir()
        (grid_package / "mine.py").write_text(
            textwrap.dedent(
                """
                from repro.grid.geometry import offsets_within

                def table(dimension, radius):
                    return tuple(offsets_within(dimension, radius))
                """
            )
        )
        assert run_contract_checks(root) == []

    def test_benchmark_without_bench_json_is_flagged(self, tmp_path):
        bench = tmp_path / "benchmarks"
        bench.mkdir()
        (bench / "test_bench_thing.py").write_text("def test_thing(benchmark):\n    pass\n")
        findings = run_contract_checks(tmp_path)
        assert [f.check for f in findings] == ["bench-json"]


class TestAllowlist:
    def test_entry_requires_justification(self, tmp_path):
        listing = tmp_path / ".statics-allowlist"
        listing.write_text("grid-shift:src/repro/bad.py:sneaky\n")
        with pytest.raises(AllowlistError, match="justification"):
            load_allowlist(listing)

    def test_allowlisted_finding_is_split_out_and_stale_entries_reported(self, tmp_path):
        root = _seed_tree(
            tmp_path,
            """
            def sneaky(grid, node):
                return grid.shift(node, (1, 0))
            """,
        )
        listing = tmp_path / ".statics-allowlist"
        listing.write_text(
            "grid-shift:src/repro/bad.py:sneaky  # geometry helper\n"
            "grid-shift:src/repro/gone.py:fixed  # finding since fixed\n"
        )
        findings = run_contract_checks(root)
        new, allowlisted, stale = apply_allowlist(findings, load_allowlist(listing))
        assert new == []
        assert [f.symbol for f in allowlisted] == ["sneaky"]
        assert stale == ["grid-shift:src/repro/gone.py:fixed"]


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        root = _seed_tree(tmp_path, "x = 1\n")
        assert cli.main(["--root", str(root)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_nonzero_on_seeded_violation(self, tmp_path, capsys):
        root = _seed_tree(
            tmp_path,
            """
            def sneaky(grid, node):
                return grid.shift(node, (1, 0))
            """,
        )
        assert cli.main(["--root", str(root)]) == 1
        output = capsys.readouterr().out
        assert "grid-shift" in output
        assert "fingerprint:" in output

    def test_json_document_shape(self, tmp_path, capsys):
        root = _seed_tree(
            tmp_path,
            """
            def sneaky(grid, node):
                return grid.shift(node, (1, 0))
            """,
        )
        assert cli.main(["--root", str(root), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["findings"][0]["check"] == "grid-shift"
        assert document["allowlisted"] == []
        assert document["stale"] == []

    def test_malformed_allowlist_exits_two(self, tmp_path, capsys):
        root = _seed_tree(tmp_path, "x = 1\n")
        (root / ".statics-allowlist").write_text("some:entry:here\n")
        assert cli.main(["--root", str(root)]) == 2

    def test_rules_report_prints_the_degrade_ladder(self):
        import io

        entry = infer_tier_eligibility(PureMinRule(), alphabet_size=4).to_json()
        stream = io.StringIO()
        cli._print_text([], [], [], [entry], stream)
        output = stream.getvalue()
        assert "tiers=[table,sharded,list]" in output
        assert "ladder=table>shm>parallel>serial" in output

    def test_real_repo_is_green(self, repo_root, capsys):
        assert cli.main(["--root", str(repo_root)]) == 0


@pytest.fixture()
def repo_root():
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    if not (root / "src" / "repro").is_dir():
        pytest.skip("repository layout not available")
    return root


# --------------------------------------------------------------------------
# CLI: allowlist hygiene, GitHub annotations, closure columns (PR 9)
# --------------------------------------------------------------------------


class TestCliHygiene:
    def test_stale_allowlist_entries_fail_the_run(self, tmp_path, capsys):
        root = _seed_tree(tmp_path, "x = 1\n")
        (root / ".statics-allowlist").write_text(
            "grid-shift:src/repro/gone.py:fixed  # finding since fixed\n"
        )
        assert cli.main(["--root", str(root)]) == 1
        output = capsys.readouterr().out
        assert "stale allowlist entry" in output
        assert "--prune" in output

    def test_prune_rewrites_the_allowlist_and_exits_zero(self, tmp_path, capsys):
        root = _seed_tree(
            tmp_path,
            """
            def sneaky(grid, node):
                return grid.shift(node, (1, 0))
            """,
        )
        listing = root / ".statics-allowlist"
        listing.write_text(
            "# kept comment\n"
            "grid-shift:src/repro/bad.py:sneaky  # geometry helper\n"
            "grid-shift:src/repro/gone.py:fixed  # finding since fixed\n"
        )
        assert cli.main(["--root", str(root), "--prune"]) == 0
        text = listing.read_text()
        assert "# kept comment" in text
        assert "bad.py:sneaky" in text
        assert "gone.py:fixed" not in text
        # A second run is clean without --prune.
        assert cli.main(["--root", str(root)]) == 0

    def test_stale_entries_fail_the_json_document(self, tmp_path, capsys):
        root = _seed_tree(tmp_path, "x = 1\n")
        (root / ".statics-allowlist").write_text(
            "grid-shift:src/repro/gone.py:fixed  # fixed\n"
        )
        assert cli.main(["--root", str(root), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["stale"] == ["grid-shift:src/repro/gone.py:fixed"]
        assert document["summary"]["stale"] == 1


class TestCliGithubFormat:
    def test_findings_become_error_annotations(self, tmp_path, capsys):
        root = _seed_tree(
            tmp_path,
            """
            def sneaky(grid, node):
                return grid.shift(node, (1, 0))
            """,
        )
        assert cli.main(["--root", str(root), "--format", "github"]) == 1
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("::error file=src/repro/bad.py,line=")
        assert "[grid-shift]" in lines[0]
        assert "fingerprint: grid-shift:src/repro/bad.py:sneaky" in lines[0]

    def test_stale_entries_annotate_the_allowlist(self, tmp_path, capsys):
        root = _seed_tree(tmp_path, "x = 1\n")
        (root / ".statics-allowlist").write_text(
            "grid-shift:src/repro/gone.py:fixed  # fixed\n"
        )
        assert cli.main(["--root", str(root), "--format", "github"]) == 1
        output = capsys.readouterr().out
        assert "::error file=.statics-allowlist::" in output

    def test_clean_tree_emits_nothing(self, tmp_path, capsys):
        root = _seed_tree(tmp_path, "x = 1\n")
        assert cli.main(["--root", str(root), "--format", "github"]) == 0
        assert capsys.readouterr().out == ""


class TestClosureReporting:
    def test_rules_report_shows_closure_columns(self):
        import io

        from repro.local_model.rules import BorderRule

        entry = infer_tier_eligibility(BorderRule()).to_json()
        stream = io.StringIO()
        cli._print_text([], [], [], [entry], stream)
        output = stream.getvalue()
        assert "closure=proven-closed" in output
        assert "Σ_out=['interior','border']" in output
        assert "autoprove=yes" in output

    def test_tier_eligibility_carries_closure_fields(self):
        from repro.local_model.rules import GreedyColourRule

        entry = infer_tier_eligibility(GreedyColourRule())
        assert entry.closure == "proven-closed"
        assert entry.proven_output_alphabet == (0, 1, 2, 3, 4)
        assert entry.autoprove_shardable is True
        assert entry.shm_overflow_free is True
        assert not entry.parallel_safe_declared

    def test_escaping_rule_becomes_a_contract_finding(self):
        from repro.statics.tiers import closure_findings

        class LeakyRule(LocalRule):
            radius = 1
            alphabet = (0, 1)

            def update(self, view):
                return 2

        findings = closure_findings(rules=[LeakyRule])
        assert [f.check for f in findings] == ["alphabet-closure"]
        assert findings[0].symbol.endswith("LeakyRule")
        assert "2" in findings[0].message

    def test_closed_rules_produce_no_findings(self):
        from repro.local_model.rules import CATALOGUE
        from repro.statics.tiers import closure_findings

        assert closure_findings(rules=[cls for cls in CATALOGUE]) == []

    def test_json_summary_counts_verdicts(self):
        from repro.local_model.rules import BorderRule, MinNeighbourRule

        rules = [
            infer_tier_eligibility(BorderRule()).to_json(),
            infer_tier_eligibility(MinNeighbourRule()).to_json(),
        ]
        summary = cli._summarise([], [], [], rules)
        assert summary["rules"] == 2
        assert summary["purity"] == {"proven-safe": 2}
        assert summary["closure"] == {"proven-closed": 1}
        assert summary["autoprove_shardable"] == 2

    def test_real_repo_rules_report_is_green(self, repo_root, capsys):
        assert cli.main(["--root", str(repo_root), "--rules"]) == 0
        output = capsys.readouterr().out
        assert "purity=proven-safe" in output
        assert "closure=proven-closed" in output
