"""Tests for the CSP and CDCL SAT solvers used by the synthesis engine."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SynthesisError
from repro.synthesis.csp import BinaryCSP, solve_binary_csp
from repro.synthesis.sat import CNF, solve_cnf, verify_assignment


class TestBinaryCSP:
    def test_simple_satisfiable_instance(self):
        csp = BinaryCSP()
        csp.add_variable("x", (0, 1))
        csp.add_variable("y", (0, 1))
        csp.add_constraint("x", "y", lambda a, b: a != b)
        result = solve_binary_csp(csp)
        assert result.satisfiable
        assert result.assignment["x"] != result.assignment["y"]

    def test_unsatisfiable_triangle_with_two_colours(self):
        csp = BinaryCSP()
        for name in "abc":
            csp.add_variable(name, (0, 1))
        for first, second in itertools.combinations("abc", 2):
            csp.add_constraint(first, second, lambda x, y: x != y)
        result = solve_binary_csp(csp)
        assert not result.satisfiable
        assert not result.exhausted_budget

    def test_triangle_with_three_colours(self):
        csp = BinaryCSP()
        for name in "abc":
            csp.add_variable(name, (0, 1, 2))
        for first, second in itertools.combinations("abc", 2):
            csp.add_constraint(first, second, lambda x, y: x != y)
        result = solve_binary_csp(csp)
        assert result.satisfiable
        values = [result.assignment[name] for name in "abc"]
        assert len(set(values)) == 3

    def test_cycle_graph_colouring(self):
        # An odd cycle needs three colours; with two it is unsatisfiable.
        def build(colours, length):
            csp = BinaryCSP()
            for index in range(length):
                csp.add_variable(index, tuple(range(colours)))
            for index in range(length):
                csp.add_constraint(index, (index + 1) % length, lambda a, b: a != b)
            return csp

        assert not solve_binary_csp(build(2, 7)).satisfiable
        assert solve_binary_csp(build(3, 7)).satisfiable
        assert solve_binary_csp(build(2, 8)).satisfiable

    def test_budget_exhaustion_reported(self):
        # K8 with 7 colours is unsatisfiable but has a huge symmetric search
        # space; a tiny node budget must therefore be reported as exhausted.
        csp = BinaryCSP()
        for index in range(8):
            csp.add_variable(index, tuple(range(7)))
        for first in range(8):
            for second in range(first + 1, 8):
                csp.add_constraint(first, second, lambda a, b: a != b)
        result = solve_binary_csp(csp, node_budget=50)
        assert not result.satisfiable
        assert result.exhausted_budget

    def test_invalid_usage(self):
        csp = BinaryCSP()
        csp.add_variable("x", (0,))
        with pytest.raises(SynthesisError):
            csp.add_variable("x", (0, 1))
        with pytest.raises(SynthesisError):
            csp.add_variable("empty", ())
        with pytest.raises(SynthesisError):
            csp.add_constraint("x", "missing", lambda a, b: True)

    def test_empty_csp_is_satisfiable(self):
        assert solve_binary_csp(BinaryCSP()).satisfiable


class TestCNFBasics:
    def test_add_clause_validation(self):
        cnf = CNF()
        cnf.add_clause((1, -2))
        assert cnf.variable_count == 2
        with pytest.raises(SynthesisError):
            cnf.add_clause(())
        with pytest.raises(SynthesisError):
            cnf.add_clause((0,))

    def test_new_variable(self):
        cnf = CNF()
        assert cnf.new_variable() == 1
        assert cnf.new_variable() == 2


class TestSATSolver:
    def test_trivial_instances(self):
        cnf = CNF()
        cnf.add_clause((1,))
        cnf.add_clause((-2,))
        result = solve_cnf(cnf)
        assert result.satisfiable
        assert result.assignment[1] is True
        assert result.assignment[2] is False

    def test_unsatisfiable_unit_clash(self):
        cnf = CNF()
        cnf.add_clause((1,))
        cnf.add_clause((-1,))
        assert not solve_cnf(cnf).satisfiable

    def test_pigeonhole_3_into_2_is_unsat(self):
        # Variables x[p][h]: pigeon p in hole h.
        cnf = CNF()
        var = {}
        for pigeon in range(3):
            for hole in range(2):
                var[(pigeon, hole)] = cnf.new_variable()
        for pigeon in range(3):
            cnf.add_clause(var[(pigeon, hole)] for hole in range(2))
        for hole in range(2):
            for first in range(3):
                for second in range(first + 1, 3):
                    cnf.add_clause((-var[(first, hole)], -var[(second, hole)]))
        result = solve_cnf(cnf)
        assert not result.satisfiable
        assert result.conflicts > 0

    def test_graph_colouring_encoding(self):
        # 4-colouring of K4 is satisfiable, 3-colouring is not.
        def colouring_cnf(colours):
            cnf = CNF()
            var = {}
            for node in range(4):
                for colour in range(colours):
                    var[(node, colour)] = cnf.new_variable()
            for node in range(4):
                cnf.add_clause(var[(node, colour)] for colour in range(colours))
            for first in range(4):
                for second in range(first + 1, 4):
                    for colour in range(colours):
                        cnf.add_clause((-var[(first, colour)], -var[(second, colour)]))
            return cnf

        assert solve_cnf(colouring_cnf(4)).satisfiable
        assert not solve_cnf(colouring_cnf(3)).satisfiable

    def test_empty_formula(self):
        assert solve_cnf(CNF()).satisfiable

    def test_budget_reported(self):
        # A hard-ish random instance with a tiny conflict budget.
        rng = random.Random(0)
        cnf = CNF()
        variables = 30
        for _ in range(140):
            clause = set()
            while len(clause) < 3:
                literal = rng.randint(1, variables) * rng.choice((1, -1))
                clause.add(literal)
            cnf.add_clause(tuple(clause))
        result = solve_cnf(cnf, conflict_budget=1)
        assert result.satisfiable or result.exhausted_budget or result.conflicts <= 1

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000), st.integers(4, 9), st.integers(5, 30))
    def test_agrees_with_brute_force_on_random_instances(self, seed, variables, clause_count):
        rng = random.Random(seed)
        cnf = CNF()
        clauses = []
        for _ in range(clause_count):
            width = rng.randint(1, 3)
            clause = set()
            while len(clause) < width:
                literal = rng.randint(1, variables) * rng.choice((1, -1))
                if -literal not in clause:
                    clause.add(literal)
            clauses.append(tuple(clause))
            cnf.add_clause(tuple(clause))

        def brute_force():
            for bits in range(1 << variables):
                assignment = {v: bool(bits >> (v - 1) & 1) for v in range(1, variables + 1)}
                if all(
                    any(assignment[abs(l)] == (l > 0) for l in clause) for clause in clauses
                ):
                    return True
            return False

        result = solve_cnf(cnf)
        assert result.satisfiable == brute_force()
        if result.satisfiable:
            assert verify_assignment(cnf, result.assignment)
