"""Tests for the experiment harness (round sweeps and report tables)."""

from repro.analysis.experiments import ExperimentTable
from repro.analysis.report import format_markdown_table
from repro.analysis.rounds import log_star_curve, measure_over_sizes
from repro.local_model.algorithm import AlgorithmResult


class TestRoundMeasurements:
    def test_measure_over_sizes_records_everything(self):
        def fake_algorithm(grid, identifiers):
            return AlgorithmResult(rounds=grid.sides[0] // 2, metadata={"n": grid.sides[0]})

        measurement = measure_over_sizes("fake", [6, 8, 10], fake_algorithm)
        assert measurement.sizes == [6, 8, 10]
        assert measurement.rounds == [3, 4, 5]
        assert measurement.metadata[0]["n"] == 6
        rows = measurement.as_rows()
        assert rows[0]["n"] == 6
        assert rows[0]["log*(n)"] >= 1
        assert measurement.growth_ratio() == 5 / 3

    def test_log_star_curve(self):
        assert log_star_curve([2, 16, 65536]) == [1, 3, 4]

    def test_growth_ratio_handles_empty(self):
        from repro.analysis.rounds import RoundMeasurement

        assert RoundMeasurement("x").growth_ratio() == float("inf")


class TestReportFormatting:
    def test_markdown_table(self):
        table = format_markdown_table(
            ["name", "value", "flag"],
            [{"name": "a", "value": 1.23456, "flag": True}, {"name": "b", "value": 2}],
        )
        lines = table.splitlines()
        assert lines[0].startswith("| name")
        assert "1.23" in lines[2]
        assert "yes" in lines[2]
        assert lines[3].endswith("|  |")  # missing cell rendered blank

    def test_experiment_table_render_and_show(self, capsys):
        table = ExperimentTable("E0", "demo", ["a", "b"])
        table.add_row(a=1, b=2)
        table.add_note("a note")
        rendered = table.render()
        assert "## E0: demo" in rendered
        assert "a note" in rendered
        table.show()
        captured = capsys.readouterr()
        assert "E0" in captured.out
