"""Tests for the on-disk synthesis outcome cache and the bench aggregator.

The disk cache must behave as a pure accelerator: a warm file returns a
byte-identical outcome without solving, while every kind of damage —
missing files, truncated JSON, foreign keys, tampered labels — silently
falls back to a fresh solve (which then repairs the file).  The benchmark
summary aggregator is tested alongside because it shares the "merge JSON
artifacts, skip the corrupt ones" contract.
"""

import importlib.util
import json
import os
from pathlib import Path

import pytest

from repro.orientation.problems import x_orientation_problem
from repro.synthesis import disk_cache
from repro.synthesis.synthesiser import (
    clear_synthesis_cache,
    synthesise,
    synthesise_with_budget,
)

# The smallest window the {1,3,4}-orientation problem synthesises at
# k = 1; discovered once per test session via the budget sweep.
_WINDOW = {}


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(disk_cache.CACHE_DIR_VARIABLE, str(tmp_path))
    clear_synthesis_cache()
    yield tmp_path / "synthesis"
    clear_synthesis_cache()


def _window(problem):
    key = problem.name
    if key not in _WINDOW:
        # The discovery sweep must not itself seed the disk cache the
        # surrounding test is about to inspect.
        previous = os.environ.get(disk_cache.CACHE_DIR_VARIABLE)
        os.environ[disk_cache.CACHE_DIR_VARIABLE] = ""
        try:
            search = synthesise_with_budget(problem, max_k=1)
        finally:
            if previous is None:
                os.environ.pop(disk_cache.CACHE_DIR_VARIABLE, None)
            else:
                os.environ[disk_cache.CACHE_DIR_VARIABLE] = previous
        assert search.succeeded
        _WINDOW[key] = (search.best.k, search.best.width, search.best.height)
        clear_synthesis_cache()
    return _WINDOW[key]


def _solve(problem, **overrides):
    k, width, height = _window(problem)
    return synthesise(problem, k, width, height, **overrides)


def _cache_key(problem):
    k, width, height = _window(problem)
    return (problem, k, width, height, "auto", 500_000, 300_000)


class TestDiskCacheRoundTrip:
    def test_success_persists_and_reloads_identically(self, cache_dir):
        problem = x_orientation_problem({1, 3, 4})
        fresh = _solve(problem)
        assert fresh.success
        path = disk_cache.cache_path(problem, _cache_key(problem))
        assert path is not None and path.exists()
        # Simulate a cold process: drop the in-process caches, then hit
        # the disk document.
        clear_synthesis_cache()
        warm = _solve(problem)
        assert warm.success
        assert warm.table == fresh.table
        assert warm.k == fresh.k and warm.engine == fresh.engine

    def test_missing_file_is_a_miss(self, cache_dir):
        problem = x_orientation_problem({1, 3, 4})
        loaded = disk_cache.load_outcome(problem, _cache_key(problem))
        assert loaded is None

    def test_failures_are_not_persisted(self, cache_dir):
        from repro.core.catalog import vertex_colouring_problem

        problem = vertex_colouring_problem(3)
        outcome = synthesise(problem, k=1, width=3, height=2)
        assert not outcome.success
        assert not cache_dir.exists() or not list(cache_dir.glob("*.json"))

    def test_use_cache_false_bypasses_the_disk(self, cache_dir):
        problem = x_orientation_problem({1, 3, 4})
        outcome = _solve(problem, use_cache=False)
        assert outcome.success
        assert not cache_dir.exists() or not list(cache_dir.glob("*.json"))

    def test_disabled_via_empty_variable(self, monkeypatch):
        monkeypatch.setenv(disk_cache.CACHE_DIR_VARIABLE, "")
        assert disk_cache.synthesis_cache_dir() is None
        problem = x_orientation_problem({1, 3, 4})
        assert disk_cache.cache_path(problem, _cache_key(problem)) is None


class TestDiskCacheCorruption:
    def _warm_path(self, cache_dir):
        problem = x_orientation_problem({1, 3, 4})
        reference = _solve(problem)
        assert reference.success
        path = disk_cache.cache_path(problem, _cache_key(problem))
        assert path.exists()
        return problem, reference, path

    def test_truncated_json_falls_back_to_a_fresh_solve(self, cache_dir):
        problem, reference, path = self._warm_path(cache_dir)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        clear_synthesis_cache()
        assert disk_cache.load_outcome(problem, _cache_key(problem)) is None
        repaired = _solve(problem)
        assert repaired.success and repaired.table == reference.table
        # The fresh solve rewrote a valid document.
        assert json.loads(path.read_text())["key"]["k"] == 1

    def test_foreign_key_is_rejected(self, cache_dir):
        problem, _, path = self._warm_path(cache_dir)
        document = json.loads(path.read_text())
        document["key"]["k"] = 99
        path.write_text(json.dumps(document))
        clear_synthesis_cache()
        assert disk_cache.load_outcome(problem, _cache_key(problem)) is None

    def test_tampered_labels_violating_the_problem_are_rejected(self, cache_dir):
        problem, _, path = self._warm_path(cache_dir)
        document = json.loads(path.read_text())
        # An orientation label outside the problem's node predicate: the
        # loader must not hand back a table the verifier would reject.
        document["table"][0][1] = repr(("not", "a", "label"))
        path.write_text(json.dumps(document))
        clear_synthesis_cache()
        assert disk_cache.load_outcome(problem, _cache_key(problem)) is None

    def test_misshaped_window_cells_are_rejected(self, cache_dir):
        problem, _, path = self._warm_path(cache_dir)
        document = json.loads(path.read_text())
        document["table"][0][0] = [[0]]
        path.write_text(json.dumps(document))
        clear_synthesis_cache()
        assert disk_cache.load_outcome(problem, _cache_key(problem)) is None

    def test_tile_count_mismatch_is_rejected(self, cache_dir):
        problem, _, path = self._warm_path(cache_dir)
        document = json.loads(path.read_text())
        document["table"] = document["table"][:-1]
        path.write_text(json.dumps(document))
        clear_synthesis_cache()
        assert disk_cache.load_outcome(problem, _cache_key(problem)) is None

    def test_unevaluable_label_reprs_are_rejected(self, cache_dir):
        problem, _, path = self._warm_path(cache_dir)
        document = json.loads(path.read_text())
        document["table"][0][1] = "object()"
        path.write_text(json.dumps(document))
        clear_synthesis_cache()
        assert disk_cache.load_outcome(problem, _cache_key(problem)) is None


class TestFingerprint:
    def test_distinct_problems_get_distinct_paths(self, cache_dir):
        first = x_orientation_problem({1, 3, 4})
        second = x_orientation_problem({0, 1, 3})
        key_first = _cache_key(first)
        key_second = (second,) + key_first[1:]
        assert disk_cache.cache_path(first, key_first) != disk_cache.cache_path(
            second, key_second
        )

    def test_budgets_are_part_of_the_key(self, cache_dir):
        problem = x_orientation_problem({1, 3, 4})
        base = _cache_key(problem)
        other = base[:-2] + (1000, 2000)
        assert disk_cache.cache_path(problem, base) != disk_cache.cache_path(
            problem, other
        )


def _load_aggregate_module():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "aggregate.py"
    spec = importlib.util.spec_from_file_location("bench_aggregate", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchAggregate:
    def test_merges_and_skips_corrupt_files(self, tmp_path, capsys):
        aggregate = _load_aggregate_module()
        (tmp_path / "BENCH_alpha.json").write_text(
            json.dumps({"benchmark": "alpha", "speedup": 2.0})
        )
        (tmp_path / "BENCH_beta.json").write_text(
            json.dumps({"benchmark": "beta", "speedup": 3.5})
        )
        (tmp_path / "BENCH_broken.json").write_text("{ nope")
        (tmp_path / "unrelated.json").write_text("{}")
        assert aggregate.main([str(tmp_path)]) == 0
        summary_path = tmp_path / aggregate.DEFAULT_SUMMARY_NAME
        summary = json.loads(summary_path.read_text())
        assert summary["count"] == 2
        assert sorted(summary["benchmarks"]) == ["alpha", "beta"]
        assert summary["skipped"] == ["BENCH_broken.json"]
        # Re-running must not ingest its own summary output.
        assert aggregate.main([str(tmp_path)]) == 0
        assert json.loads(summary_path.read_text())["count"] == 2

    def test_missing_directory_fails_cleanly(self, tmp_path):
        aggregate = _load_aggregate_module()
        assert aggregate.main([str(tmp_path / "absent")]) == 1

    def test_custom_output_path(self, tmp_path):
        aggregate = _load_aggregate_module()
        (tmp_path / "BENCH_one.json").write_text(json.dumps({"benchmark": "one"}))
        output = tmp_path / "out" / "merged.json"
        assert aggregate.main([str(tmp_path), "--output", str(output)]) == 0
        assert json.loads(output.read_text())["count"] == 1
