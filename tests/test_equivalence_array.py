"""Randomized three-engine equivalence suite (see ``tests/equivalence.py``).

Each test derives a private RNG from ``--equivalence-seed`` (default 0),
draws randomized instances — square, non-square and 1-dimensional tori,
random finite-alphabet rules, random anchor sets and marked-edge sets —
and asserts that the ``"dict"`` reference, the ``"indexed"`` fast path and
the numpy-backed ``"array"`` tier produce byte-identical outcomes,
including identical exceptions.  All three array-tier execution strategies
(compiled lookup table, vectorised ``update_batch``, list fallback) are
exercised.
"""

import pytest

from equivalence import (
    assert_engines_agree,
    assert_equivalent,
    derive_rng,
    grid_corpus,
)

from repro.colouring.edge_colouring import _colour_segments
from repro.colouring.vertex4 import _border_counts
from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import FunctionRule
from repro.local_model.engine import (
    ArrayEngine,
    IndexedEngine,
    SchedulePhase,
    run_schedule,
)
from repro.local_model.simulator import apply_rule, iterate_rule
from repro.speedup.normal_form import FunctionAnchorRule, apply_anchor_rule
from repro.symmetry.mis import compute_anchors
from repro.synthesis.lookup import LookupAnchorRule
from repro.synthesis.tiles import enumerate_tiles


def _random_finite_rule(rng, alphabet_size, radius):
    """A deterministic, order-invariant rule over a finite alphabet."""
    a, b, c = rng.randrange(1, 7), rng.randrange(7), rng.randrange(7)

    def update(view):
        values = sorted(view.values())
        return (a * values[0] + b * values[-1] + c * sum(values)) % alphabet_size

    return FunctionRule(radius, update)


def _engine_corpus(rng):
    """Tori covering the engine edge cases: 2-D shapes plus a 1-D cycle."""
    yield from grid_corpus(rng, extras=1)
    yield ToroidalGrid((rng.randint(5, 11),))


class TestRuleApplicationEquivalence:
    def test_table_tier_matches_both_engines(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "array-table-tier")
        for trial, grid in enumerate(_engine_corpus(rng)):
            radius = rng.choice([1, 1, 2])
            # Keep |Σ|^ball_size under the compile threshold: the radius-2
            # L1 ball has 13 offsets in two dimensions.
            alphabet_size = 2 if radius == 2 else rng.randint(2, 4)
            rule = _random_finite_rule(rng, alphabet_size, radius)
            labels = {
                node: rng.randrange(alphabet_size) for node in grid.nodes()
            }
            array_engine = ArrayEngine(grid)
            assert array_engine.store(labels) is not None
            assert array_engine.rule_tier(rule) == "table"
            context = (
                f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                f"alphabet={alphabet_size} radius={radius}"
            )
            assert_engines_agree(
                {
                    "dict": lambda: apply_rule(grid, labels, rule),
                    "indexed": lambda: IndexedEngine(grid)
                    .apply_rule(labels, rule)
                    .to_dict(),
                    "array": lambda: array_engine.apply_rule(labels, rule)
                    .to_dict(),
                },
                context,
            )

    def test_batch_and_list_tiers_on_large_alphabets(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "array-batch-list")
        for trial, grid in enumerate(_engine_corpus(rng)):
            identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
            labels = {node: identifiers[node] for node in grid.nodes()}
            plain = FunctionRule(1, lambda view: min(view.values()))
            batched = FunctionRule(
                1,
                lambda view: min(view.values()),
                batch=lambda neighbourhoods: neighbourhoods.min(axis=1),
            )
            # A threshold of 1 forces both rules off the lookup-table tier.
            array_engine = ArrayEngine(grid, table_threshold=1)
            array_engine.store(labels)
            assert array_engine.rule_tier(plain) == "list"
            assert array_engine.rule_tier(batched) == "batch"
            context = f"seed={equivalence_seed} trial={trial} grid={grid.sides}"
            for tier_name, rule in (("list", plain), ("batch", batched)):
                assert_engines_agree(
                    {
                        "dict": lambda r=rule: apply_rule(grid, labels, r),
                        "indexed": lambda r=rule: IndexedEngine(grid)
                        .apply_rule(labels, r)
                        .to_dict(),
                        "array": lambda r=rule: array_engine.apply_rule(labels, r)
                        .to_dict(),
                    },
                    f"{context} tier={tier_name}",
                )

    def test_iterate_rule_including_budget_exhaustion(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "array-iterate")
        for trial, grid in enumerate(_engine_corpus(rng)):
            alphabet_size = rng.randint(2, 4)
            rule = FunctionRule(1, lambda view: min(view.values()))
            labels = {
                node: rng.randrange(alphabet_size) for node in grid.nodes()
            }
            target = min(labels.values())

            def stop(current):
                return all(value == target for value in current.values())

            context = (
                f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                f"alphabet={alphabet_size}"
            )
            # Generous budget: all engines converge to the flooded minimum.
            budget = max(grid.sides) + 1
            assert_engines_agree(
                {
                    "dict": lambda: iterate_rule(
                        grid, labels, rule, stop, budget
                    ),
                    "indexed": lambda: IndexedEngine(grid)
                    .iterate_rule(labels, rule, stop, budget)
                    .to_dict(),
                    "array": lambda: ArrayEngine(grid)
                    .iterate_rule(labels, rule, stop, budget)
                    .to_dict(),
                },
                f"{context} budget={budget}",
            )
            # Impossible predicate: identical SimulationError from every tier.
            assert_engines_agree(
                {
                    "dict": lambda: iterate_rule(
                        grid, labels, rule, lambda current: False, 2
                    ),
                    "indexed": lambda: IndexedEngine(grid).iterate_rule(
                        labels, rule, lambda current: False, 2
                    ),
                    "array": lambda: ArrayEngine(grid).iterate_rule(
                        labels, rule, lambda current: False, 2
                    ),
                },
                f"{context} exhausted",
            )

    def test_run_schedule_array_matches_indexed(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "array-schedule")
        for trial, grid in enumerate(_engine_corpus(rng)):
            alphabet_size = rng.randint(2, 4)
            labels = {
                node: rng.randrange(alphabet_size) for node in grid.nodes()
            }
            flood = _random_finite_rule(rng, alphabet_size, 1)
            smooth = _random_finite_rule(rng, alphabet_size, 1)
            schedule = [
                SchedulePhase(flood, name="flood", iterations=2),
                SchedulePhase(smooth, name="smooth", iterations=1),
            ]
            assert_equivalent(
                lambda: run_schedule(grid, labels, schedule).to_dict(),
                lambda: run_schedule(
                    grid, labels, schedule, engine="array"
                ).to_dict(),
                f"seed={equivalence_seed} trial={trial} grid={grid.sides}",
            )


class TestConsumerEquivalence:
    def test_conflict_colouring_schedule_rounds(self, equivalence_seed):
        # Random conflict-colouring instances: ragged colour lists, a
        # modular forbidden predicate, a greedy proper schedule colouring.
        # The array tier's per-class vectorised rounds must match the
        # sequential greedy byte for byte — assignments, round counts and
        # the SimulationError of an infeasible node (forced by the
        # occasional single-colour list meeting a dense conflict).
        from repro.symmetry.conflict_colouring import (
            ConflictColouringInstance,
            solve_conflict_colouring,
        )

        rng = derive_rng(equivalence_seed, "array-conflict-colouring")
        for trial in range(12):
            count = rng.randint(2, 14)
            nodes = [f"n{index}" for index in range(count)]
            adjacency = {node: [] for node in nodes}
            for i in range(count):
                for j in range(i + 1, count):
                    if rng.random() < 0.4:
                        adjacency[nodes[i]].append(nodes[j])
                        adjacency[nodes[j]].append(nodes[i])
            available = {
                node: tuple(rng.sample(range(10), rng.randint(1, 4)))
                for node in nodes
            }
            modulus = rng.randint(2, 5)

            def forbidden(u, v, cu, cv, modulus=modulus):
                return (cu + cv) % modulus == 0

            schedule = {}
            for node in nodes:
                used = {
                    schedule[neighbour]
                    for neighbour in adjacency[node]
                    if neighbour in schedule
                }
                schedule[node] = next(
                    colour for colour in range(count + 1) if colour not in used
                )
            instance = ConflictColouringInstance(adjacency, available, forbidden)
            assert_engines_agree(
                {
                    engine: lambda e=engine: solve_conflict_colouring(
                        instance, schedule, engine=e
                    )
                    for engine in ("dict", "indexed", "array")
                },
                f"seed={equivalence_seed} trial={trial} nodes={count} "
                f"modulus={modulus}",
            )

    def test_conflict_colouring_partial_predicates_raise_identically(self):
        # Without a batch hook the array engine must reproduce the exact
        # predicate call sequence — including a predicate that raises on
        # pairs the short-circuiting greedy never reaches.
        from repro.symmetry.conflict_colouring import (
            ConflictColouringInstance,
            solve_conflict_colouring,
        )

        lookup = {(1, 2): False, (2, 1): False}

        def partial_forbidden(u, v, cu, cv):
            return lookup[(cu, cv)]  # KeyError outside the table

        instance = ConflictColouringInstance(
            adjacency={"u": ["v"], "v": ["u"]},
            available={"u": (1,), "v": (2, 9)},
            forbidden=partial_forbidden,
        )
        schedule = {"u": 0, "v": 1}
        for engine in ("dict", "array"):
            result = solve_conflict_colouring(instance, schedule, engine=engine)
            # Colour 2 passes first; pair (9, 1) is never evaluated.
            assert result.assignment == {"u": 1, "v": 2}, engine

    def test_conflict_colouring_preserves_each_nodes_own_colour_objects(self):
        # Regression: equal-but-distinct colour objects (1 vs 1.0) must
        # come back as the *node's own list entry* on every engine — the
        # array tier once canonicalised them through a shared codec.
        from repro.symmetry.conflict_colouring import (
            ConflictColouringInstance,
            solve_conflict_colouring,
        )

        instance = ConflictColouringInstance(
            adjacency={"u": ["v"], "v": ["u"]},
            available={"u": (1,), "v": (1.0, 2.0)},
            forbidden=lambda *args: False,
        )
        schedule = {"u": 0, "v": 1}
        for engine in ("dict", "array"):
            result = solve_conflict_colouring(instance, schedule, engine=engine)
            assert type(result.assignment["v"]) is float, engine
            assert repr(result.assignment["v"]) == "1.0", engine

    def test_border_counts(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "array-border-counts")
        for trial, grid in enumerate(grid_corpus(rng)):
            nodes = list(grid.nodes())
            anchors = rng.sample(nodes, rng.randint(1, max(1, len(nodes) // 6)))
            radii = {anchor: rng.randint(1, 3) for anchor in anchors}
            assert_engines_agree(
                {
                    engine: lambda e=engine: _border_counts(grid, radii, engine=e)
                    for engine in ("dict", "indexed", "array")
                },
                f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                f"anchors={len(anchors)}",
            )

    def test_colour_segments_including_uncovered_rows(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "array-colour-segments")
        for trial, grid in enumerate(grid_corpus(rng)):
            # Draw a marked set covering most rows; with probability ~1/2
            # drop one axis's marks entirely so the "row has no marked
            # edge" failure is compared across engines too.
            marked = set()
            dropped_axis = rng.choice([None, 0, 1])
            for axis in range(grid.dimension):
                if axis == dropped_axis:
                    continue
                for row in grid.rows(axis):
                    picks = rng.randint(1, max(1, len(row) // 3))
                    for node in rng.sample(row, picks):
                        marked.add((node, axis))
            assert_engines_agree(
                {
                    engine: lambda e=engine: _colour_segments(
                        grid, marked, 5, engine=e
                    )
                    for engine in ("dict", "indexed", "array")
                },
                f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                f"marked={len(marked)} dropped_axis={dropped_axis}",
            )

    def test_apply_anchor_rule(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "array-anchor-rule")
        for trial, grid in enumerate(grid_corpus(rng, min_side=5, extras=1)):
            identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
            anchors = compute_anchors(grid, identifiers, k=rng.choice([1, 2]))
            width, height = rng.choice([(3, 2), (3, 3), (2, 3)])
            weight = rng.randrange(1, 9)
            rule = FunctionAnchorRule(
                width,
                height,
                lambda window: weight * window.count(1)
                + sum(sum(column) for column in window.cells),
            )
            assert_engines_agree(
                {
                    engine: lambda e=engine: apply_anchor_rule(
                        grid, anchors, rule, engine=e
                    )
                    for engine in ("dict", "indexed", "array")
                },
                f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                f"window={width}x{height}",
            )

    def test_apply_anchor_rule_incomplete_lookup_table(self, equivalence_seed):
        """A table missing some occurring window must fail identically."""
        rng = derive_rng(equivalence_seed, "array-anchor-lookup")
        for trial in range(3):
            side = rng.randint(6, 9)
            grid = ToroidalGrid((side, side + trial % 2))
            identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
            anchors = compute_anchors(grid, identifiers, k=1)
            tiles = enumerate_tiles(3, 2, 1)
            # Keep a random strict subset of tiles, so some anchor windows
            # hit the SynthesisError path (and some runs stay complete).
            population = rng.randint(1, len(tiles))
            table = {tile: position for position, tile in enumerate(tiles)}
            for tile in rng.sample(tiles, len(tiles) - population):
                del table[tile]
            rule = LookupAnchorRule(3, 2, table)
            assert_engines_agree(
                {
                    engine: lambda e=engine: apply_anchor_rule(
                        grid, anchors, rule, engine=e
                    )
                    for engine in ("dict", "indexed", "array")
                },
                f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                f"table_size={population}",
            )


class TestTopologyFamilies:
    def test_array_tier_matches_both_engines_on_every_family(
        self, equivalence_seed
    ):
        from equivalence import random_topology_labels, rule_engine_factories, topology_cases

        rng = derive_rng(equivalence_seed, "array-topology-families")
        for case, (name, topology) in enumerate(topology_cases(rng)):
            alphabet_size = rng.randint(2, 4)
            rule = _random_finite_rule(rng, alphabet_size, rng.choice([1, 1, 2]))
            labels = random_topology_labels(rng, topology, range(alphabet_size))
            factories = rule_engine_factories(topology, labels, rule)
            assert_engines_agree(
                {tier: factories[tier] for tier in ("dict", "indexed", "array")},
                f"seed={equivalence_seed} case={case} family={name} "
                f"topology={topology!r} alphabet={alphabet_size}",
            )
