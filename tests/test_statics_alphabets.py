"""Adversarial tests for the alphabet-closure abstract interpretation.

Each rule below is a trap for a specific unsoundness: concatenation
pushing labels outside Σ, dict-lookup relabelling (closed and escaping
variants), escapes hidden on one branch only, implicit ``return None``,
and helper indirection.  The analysis must stay sound — ``PROVEN_CLOSED``
only when every abstract return is inside Σ — while proving the closed
cases precisely.
"""

import pytest

from repro.local_model.algorithm import LocalRule
from repro.local_model.rules import (
    CATALOGUE,
    BorderRule,
    GreedyColourRule,
    MajorityRule,
    MinNeighbourRule,
    ThresholdFlipRule,
)
from repro.statics.alphabets import (
    ClosureVerdict,
    analyse_closure,
    clear_closure_cache,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_closure_cache()
    yield
    clear_closure_cache()


# --------------------------------------------------------------------------
# Closed rules the analysis must prove
# --------------------------------------------------------------------------


class LiteralRule(LocalRule):
    radius = 1
    alphabet = ("red", "black")

    def update(self, view):
        if view[(0, 0)] == "red":
            return "black"
        return "red"


class EchoRule(LocalRule):
    radius = 1
    alphabet = (0, 1, 2)

    def update(self, view):
        return view[(0, 0)]


class MinOverViewRule(LocalRule):
    radius = 1
    alphabet = (0, 1, 2)

    def update(self, view):
        return min(view.values())


class ClosedRelabelRule(LocalRule):
    """Dict-lookup relabelling whose table stays inside Σ."""

    radius = 1
    alphabet = (0, 1)

    def update(self, view):
        return {0: 1, 1: 0}[view[(0, 0)]]


class SelfAlphabetRule(LocalRule):
    radius = 1
    alphabet = ("a", "b", "c")

    def update(self, view):
        for candidate in self.alphabet:
            if candidate != view[(0, 0)]:
                return candidate
        return self.alphabet[0]


class PartialOutputRule(LocalRule):
    """Only ever returns a strict subset of Σ — the proven output shows it."""

    radius = 1
    alphabet = (0, 1, 2, 3)

    def update(self, view):
        return 1 if view[(0, 0)] == 0 else 0


class TestProvenClosed:
    @pytest.mark.parametrize(
        "rule_class",
        [LiteralRule, EchoRule, MinOverViewRule, ClosedRelabelRule, SelfAlphabetRule],
        ids=lambda c: c.__name__,
    )
    def test_closed_rules_prove(self, rule_class):
        analysis = analyse_closure(rule_class())
        assert analysis.verdict is ClosureVerdict.PROVEN_CLOSED, (
            analysis.describe()
        )
        assert set(analysis.proven_output) <= set(rule_class.alphabet)

    def test_proven_output_is_exact_for_partial_rules(self):
        analysis = analyse_closure(PartialOutputRule())
        assert analysis.verdict is ClosureVerdict.PROVEN_CLOSED
        assert analysis.proven_output == (0, 1)

    def test_proven_output_ordering_follows_the_declared_alphabet(self):
        analysis = analyse_closure(EchoRule())
        assert analysis.proven_output == (0, 1, 2)


# --------------------------------------------------------------------------
# Escaping rules the analysis must refute
# --------------------------------------------------------------------------


class ConcatEscapeRule(LocalRule):
    """String concatenation manufactures labels outside Σ."""

    radius = 1
    alphabet = ("a", "b")

    def update(self, view):
        return view[(0, 0)] + "!"


class EscapingRelabelRule(LocalRule):
    """Dict-lookup relabelling with one out-of-Σ table entry."""

    radius = 1
    alphabet = (0, 1)

    def update(self, view):
        return {0: 1, 1: 2}[view[(0, 0)]]


class BranchEscapeRule(LocalRule):
    """The escape hides on one branch; the other is perfectly closed."""

    radius = 1
    alphabet = ("interior", "border")

    def update(self, view):
        if view[(0, 0)] == view[(0, 1)]:
            return "interior"
        return "outside"


class ImplicitNoneRule(LocalRule):
    """Falling off the end returns None, which is not in Σ."""

    radius = 1
    alphabet = (0, 1)

    def update(self, view):
        if view[(0, 0)] == 0:
            return 1


class TestProvenEscapes:
    @pytest.mark.parametrize(
        ("rule_class", "fragment"),
        [
            (ConcatEscapeRule, "a!"),
            (EscapingRelabelRule, "2"),
            (BranchEscapeRule, "outside"),
            (ImplicitNoneRule, "None"),
        ],
        ids=lambda v: v.__name__ if isinstance(v, type) else v,
    )
    def test_escapes_are_refuted_with_the_label(self, rule_class, fragment):
        analysis = analyse_closure(rule_class())
        assert analysis.verdict is ClosureVerdict.PROVEN_ESCAPES, (
            analysis.describe()
        )
        assert any(fragment in escape for escape in analysis.escapes), (
            analysis.escapes
        )


# --------------------------------------------------------------------------
# Honest unknowns
# --------------------------------------------------------------------------


class ArithmeticRule(LocalRule):
    radius = 1
    alphabet = (0, 1)

    def update(self, view):
        return len(view) % 2


class TestUnknowns:
    def test_no_declared_alphabet_is_vacuously_unknown(self):
        analysis = analyse_closure(MinNeighbourRule())
        assert analysis.verdict is ClosureVerdict.UNKNOWN
        assert any("no declared alphabet" in r for r in analysis.reasons)

    def test_unbounded_arithmetic_stays_unknown(self):
        # len(view) % 2 happens to stay in {0, 1}, but the abstraction
        # has no view-size model — honest ⊤, never a wrong escape proof.
        analysis = analyse_closure(ArithmeticRule())
        assert analysis.verdict is ClosureVerdict.UNKNOWN

    def test_alphabet_override_parameter(self):
        # MinNeighbour over a known binary labelling: closure provable
        # only once the caller supplies the Σ the rule never declared
        # (its helper seeds the fold from the node's own label, so no
        # out-of-Σ initializer leaks into the abstraction).
        analysis = analyse_closure(MinNeighbourRule(), alphabet=(0, 1))
        assert analysis.verdict is ClosureVerdict.PROVEN_CLOSED
        assert analysis.proven_output == (0, 1)

    def test_over_approximation_is_documented_behaviour(self):
        # Majority's tie-break helper initialises its fold with None;
        # concretely a non-empty view never returns it, but the
        # abstraction joins branches, so the None escape is "provable
        # under the abstraction" — the documented over-approximation.
        analysis = analyse_closure(MajorityRule(), alphabet=(0, 1))
        assert analysis.verdict is ClosureVerdict.PROVEN_ESCAPES
        assert analysis.escapes == ("None",)


# --------------------------------------------------------------------------
# The in-repo catalogue (acceptance criterion)
# --------------------------------------------------------------------------


class TestCatalogueClosure:
    @pytest.mark.parametrize(
        ("rule_class", "expected_output"),
        [
            (BorderRule, ("interior", "border")),
            (ThresholdFlipRule, (0, 1)),
            (GreedyColourRule, (0, 1, 2, 3, 4)),
        ],
        ids=lambda v: v.__name__ if isinstance(v, type) else str(v),
    )
    def test_declared_catalogue_rules_prove_closed(self, rule_class, expected_output):
        analysis = analyse_closure(rule_class())
        assert analysis.verdict is ClosureVerdict.PROVEN_CLOSED, (
            analysis.describe()
        )
        assert analysis.proven_output == expected_output

    def test_every_catalogue_rule_is_never_refuted(self):
        for rule_class in CATALOGUE:
            analysis = analyse_closure(rule_class())
            assert analysis.verdict is not ClosureVerdict.PROVEN_ESCAPES

    def test_results_are_cached(self):
        from repro.statics.alphabets import _CLOSURE_CACHE

        first = analyse_closure(BorderRule())
        assert _CLOSURE_CACHE
        assert analyse_closure(BorderRule()) is first
