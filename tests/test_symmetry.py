"""Tests for the symmetry-breaking substrate (Cole–Vishkin, Linial, MIS, ...)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.verifier import verify_maximal_independent_set
from repro.errors import InvalidProblemError, SimulationError
from repro.grid.identifiers import adversarial_identifiers, cycle_identifiers, random_identifiers
from repro.grid.power import PowerGraph
from repro.grid.torus import ToroidalGrid, adjacency_map
from repro.symmetry.cole_vishkin import colour_directed_cycle, greedy_cycle_mis, three_colour_rows
from repro.symmetry.conflict_colouring import ConflictColouringInstance, solve_conflict_colouring
from repro.symmetry.distance_colouring import distance_colouring
from repro.symmetry.linial import linial_colour_reduction, linial_step, verify_proper_colouring_map
from repro.symmetry.mis import compute_anchors, compute_mis
from repro.symmetry.reduction import greedy_mis_from_colouring, reduce_colours_to
from repro.symmetry.ruling_sets import row_ruling_set
from repro.utils.math import log_star


def proper_on_cycle(colours):
    n = len(colours)
    return all(colours[i] != colours[(i + 1) % n] for i in range(n))


class TestColeVishkin:
    def test_three_colours_on_simple_cycle(self):
        result = colour_directed_cycle(list(range(1, 51)))
        assert proper_on_cycle(result.colours)
        assert set(result.colours) <= {0, 1, 2}

    def test_round_count_is_log_star_like(self):
        short = colour_directed_cycle(cycle_identifiers(20, seed=1))
        long = colour_directed_cycle(cycle_identifiers(2000, seed=1))
        assert long.rounds <= short.rounds + 3
        assert long.rounds <= 4 * (log_star(4 * 2000) + 3)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(3, 300), st.integers(0, 100))
    def test_random_identifier_assignments(self, length, seed):
        identifiers = cycle_identifiers(length, seed=seed)
        result = colour_directed_cycle(identifiers)
        assert proper_on_cycle(result.colours)
        assert set(result.colours) <= {0, 1, 2}

    def test_rejects_bad_input(self):
        with pytest.raises(SimulationError):
            colour_directed_cycle([1, 2])
        with pytest.raises(SimulationError):
            colour_directed_cycle([1, 2, 2, 3])

    def test_three_colour_rows(self):
        grid = ToroidalGrid.square(8)
        identifiers = random_identifiers(grid, seed=3)
        colours, rounds = three_colour_rows(grid, identifiers, axis=0)
        assert rounds > 0
        for row in grid.rows(0):
            row_colours = [colours[node] for node in row]
            assert proper_on_cycle(row_colours)

    def test_greedy_cycle_mis(self):
        identifiers = cycle_identifiers(40, seed=2)
        colouring = colour_directed_cycle(identifiers)
        membership, rounds = greedy_cycle_mis(colouring.colours)
        assert rounds <= 3
        n = len(membership)
        for i in range(n):
            if membership[i]:
                assert not membership[(i + 1) % n]
            else:
                assert membership[(i - 1) % n] or membership[(i + 1) % n]


class TestLinial:
    def test_single_step_keeps_colouring_proper_and_shrinks_palette(self):
        grid = ToroidalGrid.square(12)
        adjacency = adjacency_map(grid)
        identifiers = random_identifiers(grid, seed=5)
        initial = {node: identifiers[node] for node in grid.nodes()}
        stepped = linial_step(adjacency, initial, max_degree=4)
        assert verify_proper_colouring_map(adjacency, stepped)
        assert max(stepped.values()) < max(initial.values())

    def test_iterated_reduction(self):
        # The polynomial construction only shrinks palettes that are larger
        # than ~(2Δ)², so use a grid with enough identifiers for one step to
        # make progress.
        grid = ToroidalGrid.square(16)
        adjacency = adjacency_map(grid)
        identifiers = adversarial_identifiers(grid)
        initial = {node: identifiers[node] for node in grid.nodes()}
        result = linial_colour_reduction(adjacency, initial, max_degree=4)
        assert verify_proper_colouring_map(adjacency, result.colours)
        assert result.palette_size < grid.node_count
        assert result.rounds >= 1
        assert result.history[0] > result.history[-1]

    def test_improper_input_detected(self):
        grid = ToroidalGrid.square(5)
        adjacency = adjacency_map(grid)
        constant = {node: 1 for node in grid.nodes()}
        with pytest.raises(SimulationError):
            linial_step(adjacency, constant, max_degree=4)

    def test_empty_graph(self):
        result = linial_colour_reduction({}, {})
        assert result.colours == {}
        assert result.rounds == 0


class TestReduction:
    def test_reduce_to_degree_plus_one(self):
        grid = ToroidalGrid.square(9)
        adjacency = adjacency_map(grid)
        identifiers = random_identifiers(grid, seed=7)
        initial = {node: identifiers[node] for node in grid.nodes()}
        result = reduce_colours_to(adjacency, initial)
        assert result.palette_size <= 5
        assert verify_proper_colouring_map(adjacency, result.colours)
        assert result.rounds > 0

    def test_reduce_to_explicit_target(self):
        grid = ToroidalGrid.square(6)
        adjacency = adjacency_map(grid)
        initial = {node: index for index, node in enumerate(grid.nodes())}
        result = reduce_colours_to(adjacency, initial, target=10)
        assert result.palette_size <= 10
        assert verify_proper_colouring_map(adjacency, result.colours)

    def test_target_below_degree_rejected(self):
        grid = ToroidalGrid.square(5)
        adjacency = adjacency_map(grid)
        initial = {node: index for index, node in enumerate(grid.nodes())}
        with pytest.raises(SimulationError):
            reduce_colours_to(adjacency, initial, target=3)

    def test_greedy_mis_from_colouring(self):
        grid = ToroidalGrid.square(8)
        adjacency = adjacency_map(grid)
        colours = {node: sum(node) % 2 for node in grid.nodes()}
        result = greedy_mis_from_colouring(adjacency, colours)
        membership = {node: 1 if node in result.members else 0 for node in grid.nodes()}
        assert verify_maximal_independent_set(grid, membership).valid
        assert result.rounds == 2


class TestAnchors:
    @pytest.mark.parametrize("k,norm", [(1, "l1"), (2, "l1"), (3, "l1"), (2, "linf")])
    def test_anchor_sets_are_maximal_independent_sets_of_the_power(self, k, norm):
        grid = ToroidalGrid.square(14)
        identifiers = random_identifiers(grid, seed=k)
        anchors = compute_anchors(grid, identifiers, k, norm=norm)
        power = PowerGraph(grid, k, norm)
        result = verify_maximal_independent_set(
            grid, anchors.indicator(grid), adjacency=power.adjacency()
        )
        assert result.valid
        assert anchors.rounds > 0
        assert set(anchors.phase_rounds) == {"linial", "batch-reduction", "greedy-mis"}

    def test_anchor_rounds_scale_with_simulation_overhead(self):
        grid = ToroidalGrid.square(12)
        identifiers = random_identifiers(grid, seed=1)
        l1 = compute_anchors(grid, identifiers, 2, norm="l1")
        linf = compute_anchors(grid, identifiers, 2, norm="linf")
        assert linf.k == l1.k == 2
        assert linf.norm == "linf"

    def test_anchor_rounds_stay_flat_as_n_grows(self):
        rounds = []
        for n in (12, 16, 24):
            grid = ToroidalGrid.square(n)
            identifiers = random_identifiers(grid, seed=2)
            rounds.append(compute_anchors(grid, identifiers, 2).rounds)
        assert max(rounds) <= rounds[0] + 60  # far below linear growth (12 -> 24)

    def test_compute_mis_generic_graph(self):
        adjacency = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}
        result = compute_mis(adjacency, {0: 10, 1: 3, 2: 7, 3: 1})
        members = result.members
        for node, neighbours in adjacency.items():
            if node in members:
                assert not any(n in members for n in neighbours)
            else:
                assert any(n in members for n in neighbours)


class TestDistanceColouring:
    def test_lemma_17_palette_and_validity(self):
        grid = ToroidalGrid.square(12)
        identifiers = random_identifiers(grid, seed=11)
        result = distance_colouring(grid, identifiers, k=2)
        assert result.palette_size <= (2 * 2 + 1) ** 2
        for node in grid.nodes():
            for other in grid.ball(node, 2, "linf"):
                if other != node:
                    assert result.colours[node] != result.colours[other]


class TestConflictColouring:
    def test_greedy_solves_feasible_instance(self):
        # A path of three nodes; adjacent nodes must not pick equal values.
        adjacency = {"a": ["b"], "b": ["a", "c"], "c": ["b"]}
        instance = ConflictColouringInstance(
            adjacency=adjacency,
            available={"a": [1, 2], "b": [1, 2], "c": [1, 2]},
            forbidden=lambda u, v, cu, cv: cu == cv,
        )
        assert instance.list_size() == 2
        assert instance.max_conflict_degree() == 1
        schedule = {"a": 0, "b": 1, "c": 0}
        result = solve_conflict_colouring(instance, schedule)
        assert result.assignment["a"] != result.assignment["b"]
        assert result.assignment["b"] != result.assignment["c"]
        assert result.rounds == 2

    def test_greedy_reports_failure(self):
        adjacency = {"a": ["b"], "b": ["a"]}
        instance = ConflictColouringInstance(
            adjacency=adjacency,
            available={"a": [1], "b": [1]},
            forbidden=lambda u, v, cu, cv: cu == cv,
        )
        with pytest.raises(SimulationError):
            solve_conflict_colouring(instance, {"a": 0, "b": 1})

    def test_improper_schedule_is_rejected(self):
        # Regression: an improper schedule used to be accepted silently,
        # degrading the "simultaneous" class rounds into a sequential
        # greedy (and over-counting the round complexity).
        adjacency = {"a": ["b"], "b": ["a", "c"], "c": ["b"]}
        instance = ConflictColouringInstance(
            adjacency=adjacency,
            available={node: [1, 2] for node in adjacency},
            forbidden=lambda u, v, cu, cv: cu == cv,
        )
        with pytest.raises(InvalidProblemError, match=r"not proper.*'a'.*'b'"):
            solve_conflict_colouring(instance, {"a": 0, "b": 0, "c": 1})

    def test_schedule_missing_a_node_is_rejected(self):
        # Regression: a node absent from the schedule used to surface as a
        # bare KeyError from the class-bucketing loop.
        adjacency = {"a": ["b"], "b": ["a"]}
        instance = ConflictColouringInstance(
            adjacency=adjacency,
            available={"a": [1, 2], "b": [1, 2]},
            forbidden=lambda u, v, cu, cv: cu == cv,
        )
        with pytest.raises(InvalidProblemError, match="missing node 'b'"):
            solve_conflict_colouring(instance, {"a": 0})

    def test_degree_and_list_size_name_uncovered_nodes(self):
        # Regression: adjacency referencing a node without a colour list
        # used to raise a bare KeyError from max_conflict_degree.
        instance = ConflictColouringInstance(
            adjacency={"a": ["ghost"]},
            available={"a": [1, 2]},
            forbidden=lambda u, v, cu, cv: cu == cv,
        )
        with pytest.raises(InvalidProblemError, match="'ghost'"):
            instance.max_conflict_degree()
        with pytest.raises(InvalidProblemError, match="'ghost'"):
            instance.list_size()
        uncovered = ConflictColouringInstance(
            adjacency={"a": ["b"], "b": ["a"]},
            available={"b": [1]},
            forbidden=lambda u, v, cu, cv: cu == cv,
        )
        with pytest.raises(InvalidProblemError, match="no colour list for node 'a'"):
            uncovered.max_conflict_degree()

    def test_solver_rejects_scheduled_node_without_colour_list(self):
        # Regression: a proper schedule over an instance whose `available`
        # misses a node used to pass both schedule checks and then leak a
        # bare KeyError from the greedy loop.
        instance = ConflictColouringInstance(
            adjacency={"a": ["b"], "b": ["a"]},
            available={"a": [1, 2]},
            forbidden=lambda u, v, cu, cv: cu == cv,
        )
        with pytest.raises(InvalidProblemError, match="no colour list for node 'b'"):
            solve_conflict_colouring(instance, {"a": 0, "b": 1})

    def test_proper_schedule_with_extra_scheduled_nodes_still_solves(self):
        # Nodes outside the conflict graph may appear in the schedule; they
        # are ignored rather than rejected.
        adjacency = {"a": ["b"], "b": ["a"]}
        instance = ConflictColouringInstance(
            adjacency=adjacency,
            available={"a": [1, 2], "b": [1, 2]},
            forbidden=lambda u, v, cu, cv: cu == cv,
        )
        result = solve_conflict_colouring(instance, {"a": 0, "b": 1, "z": 0})
        assert result.assignment["a"] != result.assignment["b"]


class TestRowRulingSets:
    def test_definition_properties_within_rows(self):
        grid = ToroidalGrid.square(16)
        identifiers = random_identifiers(grid, seed=4)
        ruling = row_ruling_set(grid, identifiers, axis=0, spacing=3)
        assert ruling.rounds > 0
        for row in grid.rows(0):
            length = len(row)
            positions = [i for i, node in enumerate(row) if node in ruling.members]
            assert positions, "every row must contain a member"
            # pairwise distance > spacing along the row
            for i in positions:
                for j in positions:
                    if i != j:
                        distance = min((i - j) % length, (j - i) % length)
                        assert distance > 3
            # every node within spacing of some member
            for i in range(length):
                assert min(
                    min((i - j) % length, (j - i) % length) for j in positions
                ) <= 3
