"""Randomized dict-vs-indexed equivalence suite (see ``tests/equivalence.py``).

Each test derives a private RNG from ``--equivalence-seed`` (default 0),
draws randomized instances — square and non-square tori, odd sides,
multiple radii/spacings, random cycle problems — and asserts that the
``"dict"`` reference engine and the ``"indexed"`` fast path produce
byte-identical outcomes, including identical exceptions.
"""

from equivalence import assert_equivalent, derive_rng, grid_corpus

from repro.colouring.jk_independent import compute_jk_independent_set
from repro.cycles.lcl1d import CycleLCL, verify_cycle_labelling
from repro.cycles.neighbourhood_graph import build_neighbourhood_graph
from repro.grid.identifiers import random_identifiers
from repro.grid.indexer import cyclic_power_pattern
from repro.grid.torus import ToroidalGrid
from repro.speedup.voronoi import (
    compute_voronoi_decomposition,
    local_identifier_assignment,
)
from repro.symmetry.fastpath import compute_mis_indexed
from repro.symmetry.mis import compute_anchors, compute_mis
from repro.symmetry.ruling_sets import row_ruling_set


class TestVoronoiEquivalence:
    def test_mis_anchor_decompositions(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "voronoi-mis")
        for trial, grid in enumerate(grid_corpus(rng)):
            identifier_seed = rng.randrange(10_000)
            identifiers = random_identifiers(grid, seed=identifier_seed)
            k = rng.choice([1, 2])
            anchors = compute_anchors(grid, identifiers, k=k)
            context = (
                f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                f"ids={identifier_seed} k={k}"
            )
            for search_radius in (None, k, k + 1):
                outcome = assert_equivalent(
                    lambda r=search_radius: compute_voronoi_decomposition(
                        grid, anchors.members, search_radius=r, engine="dict"
                    ),
                    lambda r=search_radius: compute_voronoi_decomposition(
                        grid, anchors.members, search_radius=r, engine="indexed"
                    ),
                    f"{context} radius={search_radius}",
                )
                assert outcome[0] == "ok"

    def test_arbitrary_anchor_sets_including_failures(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "voronoi-arbitrary")
        for trial, grid in enumerate(grid_corpus(rng)):
            nodes = list(grid.nodes())
            anchors = set(rng.sample(nodes, rng.randint(1, max(1, len(nodes) // 8))))
            search_radius = rng.randint(1, 3)
            assert_equivalent(
                lambda: compute_voronoi_decomposition(
                    grid, anchors, search_radius=search_radius, engine="dict"
                ),
                lambda: compute_voronoi_decomposition(
                    grid, anchors, search_radius=search_radius, engine="indexed"
                ),
                f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                f"anchors={len(anchors)} radius={search_radius}",
            )

    def test_local_identifier_assignment_both_outcomes(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "voronoi-local-ids")
        for trial, grid in enumerate(grid_corpus(rng, extras=1)):
            identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
            anchors = compute_anchors(grid, identifiers, k=2)
            decomposition = compute_voronoi_decomposition(grid, anchors.members)
            # Radius 1 must verify; a radius beyond the anchor spacing must
            # fail identically (same first violating pair in the message).
            for uniqueness_radius in (1, max(grid.sides)):
                assert_equivalent(
                    lambda r=uniqueness_radius: local_identifier_assignment(
                        grid, decomposition, r, engine="dict"
                    ),
                    lambda r=uniqueness_radius: local_identifier_assignment(
                        grid, decomposition, r, engine="indexed"
                    ),
                    f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                    f"uniqueness_radius={uniqueness_radius}",
                )


class TestRulingSetEquivalence:
    def test_row_ruling_sets(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "ruling-sets")
        for trial, grid in enumerate(grid_corpus(rng)):
            identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
            axis = rng.choice([0, 1])
            spacing = rng.randint(2, 5)
            assert_equivalent(
                lambda: row_ruling_set(grid, identifiers, axis, spacing, engine="dict"),
                lambda: row_ruling_set(
                    grid, identifiers, axis, spacing, engine="indexed"
                ),
                f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                f"axis={axis} spacing={spacing}",
            )


class TestPipelineEquivalence:
    def test_int_keyed_mis_pipeline_matches_reference(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "fastpath-pipeline")
        for trial in range(12):
            length = rng.randint(3, 24)
            spacing = rng.randint(1, length - 1)
            identifiers = rng.sample(range(1, 8 * length + 1), length)
            pattern = cyclic_power_pattern(length, spacing)
            keys = [("position", index) for index in range(length)]
            adjacency = {
                keys[index]: [keys[j] for j in pattern[index]]
                for index in range(length)
            }
            initial = {keys[index]: identifiers[index] for index in range(length)}

            def run_reference():
                computation = compute_mis(adjacency, initial, max_degree=2 * spacing)
                return (
                    sorted(key[1] for key in computation.members),
                    computation.rounds,
                    computation.phase_rounds,
                )

            def run_indexed():
                computation = compute_mis_indexed(
                    pattern, identifiers, max_degree=2 * spacing
                )
                return (
                    sorted(computation.members),
                    computation.rounds,
                    computation.phase_rounds,
                )

            assert_equivalent(
                run_reference,
                run_indexed,
                f"seed={equivalence_seed} trial={trial} length={length} "
                f"spacing={spacing}",
            )


class TestJKIndependentEquivalence:
    def test_jk_construction(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "jk-independent")
        for trial in range(4):
            # Sides must exceed the row spacing; odd and non-square shapes
            # are part of the draw.
            width = rng.randint(13, 16)
            height = rng.randint(13, 16)
            grid = ToroidalGrid((width, height))
            identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
            axis = rng.choice([0, 1])
            k = 1
            spacing = rng.randint(8, min(width, height) - 1)
            assert_equivalent(
                lambda: compute_jk_independent_set(
                    grid, identifiers, axis, k, spacing=spacing, engine="dict"
                ),
                lambda: compute_jk_independent_set(
                    grid, identifiers, axis, k, spacing=spacing, engine="indexed"
                ),
                f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                f"axis={axis} k={k} spacing={spacing}",
            )


def _random_cycle_problem(rng, trial):
    """A random (possibly degenerate) cycle LCL problem specification."""
    radius = rng.choice([1, 1, 2])
    alphabet = tuple(range(rng.randint(1, 3)))
    window_length = 2 * radius + 1
    universe = []

    def extend(prefix):
        if len(prefix) == window_length:
            universe.append(tuple(prefix))
            return
        for label in alphabet:
            extend(prefix + [label])

    extend([])
    population = rng.randint(0, len(universe))
    windows = frozenset(rng.sample(universe, population))
    return CycleLCL(
        name=f"random-{trial}", alphabet=alphabet, radius=radius,
        feasible_windows=windows,
    )


class TestCycleEquivalence:
    def test_window_verification(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "cycle-verify")
        for trial in range(10):
            problem = _random_cycle_problem(rng, trial)
            length = rng.randint(problem.window_length, problem.window_length + 9)
            labels = [rng.choice(problem.alphabet) for _ in range(length)]
            assert_equivalent(
                lambda: verify_cycle_labelling(problem, labels, engine="dict"),
                lambda: verify_cycle_labelling(problem, labels, engine="indexed"),
                f"seed={equivalence_seed} trial={trial} problem={problem.name} "
                f"radius={problem.radius} length={length}",
            )

    def test_neighbourhood_graph_walks(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "cycle-walks")
        for trial in range(8):
            problem = _random_cycle_problem(rng, trial)
            graph = build_neighbourhood_graph(problem)
            context = (
                f"seed={equivalence_seed} trial={trial} problem={problem.name} "
                f"states={len(graph.states)}"
            )
            assert_equivalent(
                graph.has_cycle_reference, graph.has_cycle, f"{context} has_cycle"
            )
            # The reference layering is quadratic in the state count, so cap
            # the compared horizon and sample the states on large problems —
            # the equivalence of one BFS layer pins all longer horizons.
            horizon = min(max(len(graph.states) ** 2, 8), 200)
            states = list(graph.states)
            if len(states) > 12:
                states = rng.sample(states, 12)
            for state in states:
                assert_equivalent(
                    lambda s=state: graph.closed_walk_lengths_reference(s, horizon),
                    lambda s=state: graph.closed_walk_lengths(s, horizon),
                    f"{context} closed_walk_lengths state={state!r}",
                )
                for length in (1, 2, rng.randint(3, 9)):
                    assert_equivalent(
                        lambda s=state, l=length: graph.walk_of_length_reference(s, l),
                        lambda s=state, l=length: graph.walk_of_length(s, l),
                        f"{context} walk_of_length state={state!r} length={length}",
                    )


class TestTopologyFamilies:
    def test_indexed_tier_matches_dict_on_every_family(self, equivalence_seed):
        from equivalence import (
            assert_engines_agree,
            random_topology_labels,
            rule_engine_factories,
            topology_cases,
        )

        from repro.local_model.algorithm import FunctionRule

        rng = derive_rng(equivalence_seed, "indexed-topology-families")
        for case, (name, topology) in enumerate(topology_cases(rng)):
            alphabet_size = rng.randint(2, 5)
            a, b = rng.randrange(1, 7), rng.randrange(7)
            rule = FunctionRule(
                rng.choice([1, 1, 2]),
                lambda view, a=a, b=b, m=alphabet_size: (
                    a * min(view.values()) + b * max(view.values())
                )
                % m,
            )
            labels = random_topology_labels(rng, topology, range(alphabet_size))
            factories = rule_engine_factories(topology, labels, rule)
            assert_engines_agree(
                {tier: factories[tier] for tier in ("dict", "indexed")},
                f"seed={equivalence_seed} case={case} family={name} "
                f"topology={topology!r} alphabet={alphabet_size}",
            )
