"""Tests for the LOCAL-model simulator layers."""

import pytest

from repro.errors import SimulationError
from repro.grid.identifiers import random_identifiers, row_major_identifiers
from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import AlgorithmResult, ConstantOutputAlgorithm, FunctionRule
from repro.local_model.messaging import FloodMinimumProgram, MessagePassingNetwork
from repro.local_model.order_invariant import (
    is_order_invariant,
    monotone_relabelling,
    order_normalise_view,
    order_pattern,
)
from repro.local_model.simulator import RoundLedger, apply_rule, iterate_rule, run_phase
from repro.local_model.views import collect_label_view, collect_view


@pytest.fixture()
def small_grid():
    return ToroidalGrid.square(5)


class TestViews:
    def test_collect_view_contents(self, small_grid):
        ids = row_major_identifiers(small_grid)
        view = collect_view(small_grid, (2, 2), 1, ids, labels={(2, 3): "north"})
        assert view.own_identifier == ids[(2, 2)]
        assert view.identifier_at((0, 1)) == ids[(2, 3)]
        assert view.label_at((0, 1)) == "north"
        assert view.label_at((1, 0), default="none") == "none"
        assert len(view.offsets()) == 5

    def test_collect_view_wraps(self, small_grid):
        ids = row_major_identifiers(small_grid)
        view = collect_view(small_grid, (0, 0), 1, ids)
        assert view.identifier_at((-1, 0)) == ids[(4, 0)]

    def test_collect_label_view_radius_zero(self, small_grid):
        labels = {node: sum(node) for node in small_grid.nodes()}
        view = collect_label_view(small_grid, (1, 1), 0, labels)
        assert view == {(0, 0): 2}

    def test_collect_view_default_grid_size_is_node_count(self, small_grid):
        # Regression: the default used to be grid.sides[0], which is wrong
        # on non-square tori (the paper's nodes know n, the node count).
        ids = row_major_identifiers(small_grid)
        assert collect_view(small_grid, (0, 0), 1, ids).grid_size == 25

        rectangular = ToroidalGrid((3, 5))
        rect_ids = row_major_identifiers(rectangular)
        view = collect_view(rectangular, (1, 2), 1, rect_ids)
        assert view.grid_size == 15
        # An explicit override still wins.
        view = collect_view(rectangular, (1, 2), 1, rect_ids, grid_size=99)
        assert view.grid_size == 99

    def test_empty_view_raises_clear_error(self):
        # Regression: _origin used to crash with StopIteration.
        from repro.local_model.views import NeighbourhoodView

        view = NeighbourhoodView(radius=0, identifiers={})
        with pytest.raises(SimulationError, match="empty identifier map"):
            view.own_identifier
        with pytest.raises(SimulationError, match="empty identifier map"):
            view.own_label


class TestSimulator:
    def test_apply_rule_minimum_flood(self, small_grid):
        ids = random_identifiers(small_grid, seed=2)
        labels = {node: ids[node] for node in small_grid.nodes()}
        rule = FunctionRule(1, lambda view: min(view.values()))
        ledger = RoundLedger()
        once = apply_rule(small_grid, labels, rule, ledger=ledger, phase="flood")
        for node in small_grid.nodes():
            expected = min(labels[v] for v in small_grid.ball(node, 1))
            assert once[node] == expected
        assert ledger.total == 1
        assert ledger.breakdown() == {"flood": 1}

    def test_iterate_rule_reaches_global_minimum(self, small_grid):
        ids = random_identifiers(small_grid, seed=5)
        labels = {node: ids[node] for node in small_grid.nodes()}
        rule = FunctionRule(1, lambda view: min(view.values()))
        ledger = RoundLedger()
        final = iterate_rule(
            small_grid,
            labels,
            rule,
            should_stop=lambda current: len(set(current.values())) == 1,
            max_iterations=20,
            ledger=ledger,
        )
        assert set(final.values()) == {min(ids[n] for n in small_grid.nodes())}
        # the diameter of a 5x5 torus is 4, so 4 rounds must suffice
        assert ledger.total <= 4 + 1

    def test_iterate_rule_raises_when_budget_exhausted(self, small_grid):
        labels = {node: 0 for node in small_grid.nodes()}
        rule = FunctionRule(1, lambda view: view[(0, 0)] + 1)  # never stabilises
        with pytest.raises(SimulationError):
            iterate_rule(small_grid, labels, rule, should_stop=lambda c: False, max_iterations=3)

    def test_run_phase_charges_linf_cost(self, small_grid):
        labels = {node: 1 for node in small_grid.nodes()}
        ledger = RoundLedger()
        result = run_phase(
            small_grid,
            labels,
            compute=lambda node, visible: sum(visible.values()),
            radius=1,
            ledger=ledger,
            phase="count",
            norm="linf",
        )
        assert all(value == 9 for value in result.values())
        assert ledger.total == 2  # radius * dimension

    def test_negative_charge_rejected(self):
        ledger = RoundLedger()
        with pytest.raises(SimulationError):
            ledger.charge("bad", -1)

    def test_run_phase_missing_label_fails_loudly(self, small_grid):
        # Regression: nodes absent from the labelling used to be silently
        # dropped from the visible mapping.
        labels = {node: 1 for node in small_grid.nodes()}
        del labels[(2, 2)]
        with pytest.raises(SimulationError) as excinfo:
            run_phase(
                small_grid,
                labels,
                compute=lambda node, visible: sum(visible.values()),
                radius=1,
                phase="partial",
            )
        assert "(2, 2)" in str(excinfo.value)
        assert "'partial'" in str(excinfo.value)


class TestMessagePassing:
    def test_flood_minimum_matches_direct_view(self):
        grid = ToroidalGrid.square(4)
        ids = random_identifiers(grid, seed=9)
        programs = {node: FloodMinimumProgram(radius=2) for node in grid.nodes()}
        trace = MessagePassingNetwork(grid, ids).run(programs, max_rounds=10)
        assert trace.rounds == 2
        for node in grid.nodes():
            expected = min(ids[v] for v in grid.ball(node, 2))
            assert trace.outputs[node] == expected

    def test_missing_program_rejected(self):
        grid = ToroidalGrid.square(4)
        ids = random_identifiers(grid)
        with pytest.raises(SimulationError):
            MessagePassingNetwork(grid, ids).run({}, max_rounds=1)

    def test_round_budget_enforced(self):
        grid = ToroidalGrid.square(4)
        ids = random_identifiers(grid)
        programs = {node: FloodMinimumProgram(radius=50) for node in grid.nodes()}
        with pytest.raises(SimulationError):
            MessagePassingNetwork(grid, ids).run(programs, max_rounds=3)


class TestOrderInvariance:
    def test_order_normalise_view(self):
        grid = ToroidalGrid.square(5)
        ids = row_major_identifiers(grid)
        view = collect_view(grid, (2, 2), 1, ids)
        ranks = order_normalise_view(view)
        assert sorted(ranks.values()) == [0, 1, 2, 3, 4]
        assert order_pattern(view) == order_pattern(view)

    def test_monotone_relabelling_preserves_order(self):
        grid = ToroidalGrid.square(4)
        ids = row_major_identifiers(grid)
        stretched = monotone_relabelling(ids)
        pairs = list(grid.nodes())
        for u in pairs[:5]:
            for v in pairs[5:10]:
                assert (ids[u] < ids[v]) == (stretched[u] < stretched[v])
        with pytest.raises(ValueError):
            monotone_relabelling(ids, stretch=0)

    def test_is_order_invariant_detects_value_dependence(self):
        grid = ToroidalGrid.square(4)
        ids = row_major_identifiers(grid)

        def value_dependent(grid_, assignment):
            return {node: assignment[node] % 2 for node in grid_.nodes()}

        def order_dependent(grid_, assignment):
            return {node: 0 for node in grid_.nodes()}

        assignments = [ids, monotone_relabelling(ids)]
        assert not is_order_invariant(value_dependent, grid, assignments)
        assert is_order_invariant(order_dependent, grid, assignments)
        with pytest.raises(ValueError):
            is_order_invariant(order_dependent, grid, [ids])


class TestAlgorithmResult:
    def test_constant_output_algorithm(self):
        grid = ToroidalGrid.square(4)
        ids = row_major_identifiers(grid)
        algorithm = ConstantOutputAlgorithm(node_label=0, edge_label="e")
        result = algorithm.run(grid, ids)
        assert result.rounds == 0
        assert set(result.node_labels.values()) == {0}
        assert set(result.edge_labels.values()) == {"e"}

    def test_with_extra_rounds(self):
        result = AlgorithmResult(node_labels={(0, 0): 1}, rounds=5)
        extended = result.with_extra_rounds(3)
        assert extended.rounds == 8
        assert result.rounds == 5
