"""Deterministic chaos suite for the fault-injection plane (PR 8).

Covers the plane itself (plan serialisation, env activation + caching,
seeded randomness, inertness when unset) and every injection point
end-to-end: worker kills, hangs and corrupt replies across worker counts
1/2/4, spawn and segment-creation failures with their retry ladders, the
``REPRO_ROUND_TIMEOUT`` round deadline, pool-level heal-then-degrade
sequencing, and the two regression satellites — corrupt pipe messages
surfacing as :class:`PoolBrokenError` (never raw
``EOFError``/``UnpicklingError``) and :meth:`WorkerPool.close` unlinking
its segments even when a stuck worker must be terminated.
"""

import time

import pytest

from repro.errors import SimulationError
from repro.grid.indexer import GridIndexer
from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import FunctionRule
from repro.local_model.engine import ShmEngine, plan_chunks
from repro.local_model.simulator import apply_rule
from repro.local_model.store import LabelCodec, shm_available
from repro.runtime import PoolBrokenError, SharedCodeBuffer, WorkerPool
from repro.runtime import faults
from repro.runtime.faults import FaultPlan, WorkerFault

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform lacks shm-tier prerequisites"
)

np = pytest.importorskip("numpy")


@pytest.fixture(autouse=True)
def _hermetic_fault_plane(monkeypatch):
    """No plan, no deadline, default retries unless a test opts in."""
    faults.reset()
    monkeypatch.delenv(faults.PLAN_VARIABLE, raising=False)
    monkeypatch.delenv("REPRO_ROUND_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_POOL_RETRIES", raising=False)
    yield
    faults.reset()


def _segment_exists(name):
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


def _grid_fixture(side=6):
    grid = ToroidalGrid((side, side))
    labels = {node: (i * 13) % 40 for i, node in enumerate(grid.nodes())}
    return grid, labels


def _min_plus(offset):
    return FunctionRule(1, lambda view: min(view.values()) + offset)


def _make_pool(grid, codec, rules, workers=2, **kwargs):
    indexer = GridIndexer.for_grid(grid)
    return WorkerPool(
        indexer,
        codec,
        {id(rule): rule for rule in rules},
        plan_chunks(indexer.node_count, workers),
        **kwargs,
    )


def _loaded_pool(grid, labels, rule, workers=2, **kwargs):
    codec = LabelCodec(sorted(set(labels.values())))
    pool = _make_pool(grid, codec, [rule], workers=workers, **kwargs)
    indexer = GridIndexer.for_grid(grid)
    codes = np.array(
        [codec.encode(labels[node]) for node in indexer.nodes],
        dtype=np.int32,
    )
    pool.load(codes)
    return pool


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            worker_faults=[
                WorkerFault(kind="kill", worker=1, round=3, exit_code=5),
                WorkerFault(kind="hang", seconds=2.5),
                WorkerFault(kind="corrupt", worker=0, mode="truncate"),
            ],
            spawn_failures=2,
            segment_failures=[1, 4],
            seed=99,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_random_plans_are_deterministic(self):
        first = FaultPlan.random(1234, workers=3, rounds=5)
        second = FaultPlan.random(1234, workers=3, rounds=5)
        assert first == second
        assert first != FaultPlan.random(1235, workers=3, rounds=5)
        # Every drawn worker fault targets a real worker and round.
        for fault in first.worker_faults:
            assert fault.kind in ("kill", "hang", "corrupt")
            assert 0 <= fault.worker < 3
            assert 1 <= fault.round <= 5

    def test_unknown_kinds_are_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            WorkerFault(kind="meltdown")
        with pytest.raises(ValueError, match="corrupt mode"):
            WorkerFault(kind="corrupt", mode="sprinkle")

    def test_worker_matching_wildcards(self):
        fault = WorkerFault(kind="kill")
        assert fault.matches(0, 1) and fault.matches(7, 99)
        pinned = WorkerFault(kind="kill", worker=1, round=2)
        assert pinned.matches(1, 2)
        assert not pinned.matches(0, 2) and not pinned.matches(1, 3)
        plan = FaultPlan(worker_faults=[pinned])
        assert plan.worker_action(1, 2) is pinned
        assert plan.worker_action(1, 3) is None

    def test_spawn_and_segment_counters(self):
        plan = FaultPlan(spawn_failures=2, segment_failures=[1, 3])
        assert plan.fail_spawn() and plan.fail_spawn()
        assert not plan.fail_spawn()  # third attempt succeeds
        assert plan.fail_segment_create()       # attempt 1
        assert not plan.fail_segment_create()   # attempt 2
        assert plan.fail_segment_create()       # attempt 3
        assert not plan.fail_segment_create()


class TestActivation:
    def test_inert_when_unset(self):
        assert faults.current_plan() is None

    def test_empty_env_value_is_inert(self, monkeypatch):
        monkeypatch.setenv(faults.PLAN_VARIABLE, "")
        assert faults.current_plan() is None

    def test_env_plan_is_parsed_once_and_keeps_its_counters(
        self, monkeypatch
    ):
        plan = FaultPlan(spawn_failures=1)
        monkeypatch.setenv(faults.PLAN_VARIABLE, plan.to_json())
        seen = faults.current_plan()
        assert seen == plan
        # Same instance on every lookup: parent-side attempt counters
        # must persist across injection-point calls.
        assert faults.current_plan() is seen
        assert seen.fail_spawn()
        assert not faults.current_plan().fail_spawn()

    def test_invalid_env_plan_warns_once_and_is_ignored(self, monkeypatch):
        monkeypatch.setenv(faults.PLAN_VARIABLE, "{not json")
        with pytest.warns(RuntimeWarning, match="unparseable"):
            assert faults.current_plan() is None
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert faults.current_plan() is None  # cached, no re-warn

    def test_installed_plan_shadows_the_environment(self, monkeypatch):
        monkeypatch.setenv(
            faults.PLAN_VARIABLE, FaultPlan(spawn_failures=9).to_json()
        )
        programmatic = FaultPlan()
        with faults.active(programmatic):
            assert faults.current_plan() is programmatic
        assert faults.current_plan() == FaultPlan(spawn_failures=9)

    def test_unset_plane_leaves_the_pool_untouched(self):
        grid, labels = _grid_fixture()
        rule = _min_plus(5)
        reference = apply_rule(grid, labels, rule)
        with ShmEngine(grid, workers=2, table_threshold=1) as engine:
            assert engine.apply_rule(labels, rule).to_dict() == reference
            assert engine.pool_heals == 0
            assert engine.degrade_events == ()


class TestEnvKnobs:
    def test_round_timeout_parsing(self, monkeypatch):
        from repro.runtime.pool import round_timeout_seconds

        assert round_timeout_seconds() is None
        monkeypatch.setenv("REPRO_ROUND_TIMEOUT", "2.5")
        assert round_timeout_seconds() == 2.5
        monkeypatch.setenv("REPRO_ROUND_TIMEOUT", "0")
        assert round_timeout_seconds() is None
        monkeypatch.setenv("REPRO_ROUND_TIMEOUT", "soon")
        with pytest.raises(SimulationError, match="REPRO_ROUND_TIMEOUT"):
            round_timeout_seconds()

    def test_retry_budget_parsing(self, monkeypatch):
        from repro.runtime.pool import DEFAULT_POOL_RETRIES, pool_retry_budget

        assert pool_retry_budget() == DEFAULT_POOL_RETRIES
        monkeypatch.setenv("REPRO_POOL_RETRIES", "5")
        assert pool_retry_budget() == 5
        monkeypatch.setenv("REPRO_POOL_RETRIES", "-3")
        assert pool_retry_budget() == 0
        monkeypatch.setenv("REPRO_POOL_RETRIES", "many")
        with pytest.raises(SimulationError, match="REPRO_POOL_RETRIES"):
            pool_retry_budget()


class TestEngineFaultMatrix:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("kind", ["kill", "hang", "corrupt", "spawn"])
    def test_engine_stays_byte_identical(self, kind, workers, monkeypatch):
        monkeypatch.setenv("REPRO_ROUND_TIMEOUT", "0.4")
        grid, labels = _grid_fixture()
        rule = _min_plus(3)
        reference = apply_rule(grid, apply_rule(grid, labels, rule), rule)
        if kind == "spawn":
            plan = FaultPlan(spawn_failures=1)
        else:
            plan = FaultPlan(
                worker_faults=[
                    WorkerFault(kind=kind, worker=0, round=1, seconds=30.0)
                ]
            )
        with faults.active(plan):
            with ShmEngine(grid, workers=workers, table_threshold=1) as engine:
                import warnings as warnings_module

                with warnings_module.catch_warnings():
                    # workers=1 degrades with its own (pinned elsewhere)
                    # warning; the invariant here is byte-equality.
                    warnings_module.simplefilter("ignore", RuntimeWarning)
                    result = engine.apply_rule(labels, rule)
                    result = engine.apply_rule(result, rule).to_dict()
                assert result == reference
                if workers == 1:
                    # No pool, so worker/spawn faults never fire: the
                    # plane must be inert on the serial path.
                    assert engine.pool_spawns == 0
                    assert engine.pool_heals == 0
                elif kind == "spawn":
                    # Absorbed by WorkerPool.spawn's retry, not a degrade.
                    assert engine.pool_spawns == 1
                    assert not engine._broken
                else:
                    assert engine.pool_spawns == 1
                    assert engine.pool_heals >= 1
                    assert engine.worker_respawns >= 1
                    assert not engine._broken


class TestPoolSupervision:
    def test_round_deadline_is_honored(self):
        grid, labels = _grid_fixture()
        rule = _min_plus(1)
        plan = FaultPlan(
            worker_faults=[WorkerFault(kind="hang", worker=0, seconds=30.0)]
        )
        with faults.active(plan):
            pool = _loaded_pool(grid, labels, rule, round_timeout=0.3)
        try:
            start = time.monotonic()
            with pytest.raises(PoolBrokenError, match="deadline"):
                pool.round(id(rule))
            assert time.monotonic() - start < 5.0
            assert pool.broken and not pool.closed
        finally:
            import repro.runtime.pool as pool_module

            # The hung worker would otherwise burn the full default grace.
            original = pool_module.SHUTDOWN_GRACE
            pool_module.SHUTDOWN_GRACE = 0.2
            try:
                pool.close()
            finally:
                pool_module.SHUTDOWN_GRACE = original

    def test_heal_then_degrade_sequencing(self):
        # Pool-level sequencing: a worker that dies every round is healed
        # as many times as the caller retries, each heal restoring a
        # working (then immediately re-broken) pool; the engine's bounded
        # budget turns the final failure into the degrade ladder.
        grid, labels = _grid_fixture()
        rule = _min_plus(2)
        plan = FaultPlan(worker_faults=[WorkerFault(kind="kill", worker=0)])
        with faults.active(plan):
            pool = _loaded_pool(grid, labels, rule)
            try:
                for expected_heals in (1, 2):
                    with pytest.raises(PoolBrokenError):
                        pool.round(id(rule))
                    assert pool.broken
                    assert pool.heal() >= 1
                    assert not pool.broken
                    assert pool.respawned_workers >= expected_heals
            finally:
                pool.close()

    def test_heal_without_a_break_is_a_no_op(self):
        grid, labels = _grid_fixture()
        rule = _min_plus(4)
        pool = _loaded_pool(grid, labels, rule)
        try:
            assert pool.heal() == 0
            assert pool.respawned_workers == 0
        finally:
            pool.close()

    def test_healed_pool_finishes_byte_identical_rounds(self):
        grid, labels = _grid_fixture()
        rule = _min_plus(6)
        reference = apply_rule(grid, labels, rule)
        codec_reference = sorted(set(reference.values()))
        plan = FaultPlan(
            worker_faults=[WorkerFault(kind="kill", worker=1, round=1)]
        )
        with faults.active(plan):
            pool = _loaded_pool(grid, labels, rule)
            try:
                with pytest.raises(PoolBrokenError):
                    pool.round(id(rule))
                assert pool.heal() >= 1
                pool.round(id(rule))  # round 2: the pinned fault is spent
                codes = pool.snapshot()
                codec = pool.codec
                indexer = GridIndexer.for_grid(grid)
                result = {
                    node: codec.decode(codes[position])
                    for position, node in enumerate(indexer.nodes)
                }
                assert result == reference
                assert sorted(set(result.values())) == codec_reference
            finally:
                pool.close()

    def test_spawn_retry_classmethod(self):
        grid, labels = _grid_fixture()
        rule = _min_plus(8)
        codec = LabelCodec(sorted(set(labels.values())))
        indexer = GridIndexer.for_grid(grid)
        chunks = plan_chunks(indexer.node_count, 2)
        with faults.active(FaultPlan(spawn_failures=2)):
            pool = WorkerPool.spawn(
                indexer, codec, {id(rule): rule}, chunks, retries=2
            )
            pool.close()
        with faults.active(FaultPlan(spawn_failures=3)):
            with pytest.raises(OSError, match="injected pool spawn"):
                WorkerPool.spawn(
                    indexer, codec, {id(rule): rule}, chunks, retries=1
                )

    def test_segment_creation_fault_is_absorbed_by_spawn_retry(self):
        grid, labels = _grid_fixture()
        rule = _min_plus(9)
        with faults.active(FaultPlan(segment_failures=[1])):
            with pytest.raises(OSError, match="injected shared-segment"):
                SharedCodeBuffer.create(4)
            # Attempt 2 (and later) succeed: one WorkerPool.spawn retry
            # absorbs a first-attempt segment failure.
            buffer = SharedCodeBuffer.create(4)
            buffer.unlink()
        reference = apply_rule(grid, labels, rule)
        with faults.active(FaultPlan(segment_failures=[1])):
            with ShmEngine(grid, workers=2, table_threshold=1) as engine:
                import warnings as warnings_module

                with warnings_module.catch_warnings():
                    warnings_module.simplefilter("error")
                    assert engine.apply_rule(labels, rule).to_dict() == reference


class TestSatelliteRegressions:
    @pytest.mark.parametrize("mode", ["garbage", "truncate"])
    def test_corrupt_replies_surface_as_pool_broken_error(self, mode):
        # Regression: a corrupt/truncated pipe message used to escape as
        # raw UnpicklingError/EOFError from _collect_replies.
        grid, labels = _grid_fixture()
        rule = _min_plus(7)
        plan = FaultPlan(
            worker_faults=[
                WorkerFault(kind="corrupt", worker=0, round=1, mode=mode)
            ]
        )
        with faults.active(plan):
            pool = _loaded_pool(grid, labels, rule)
            try:
                with pytest.raises(PoolBrokenError, match="worker 0"):
                    pool.round(id(rule))
                assert pool.broken and not pool.closed
                # Healed, the same pool finishes the round.
                assert pool.heal() >= 1
                pool.round(id(rule))
            finally:
                pool.close()

    def test_malformed_reply_shapes_surface_as_pool_broken_error(self):
        # A reply that unpickles fine but is not a protocol tuple must be
        # rejected by shape, not crash the barrier with an IndexError.
        import multiprocessing

        grid, labels = _grid_fixture()
        rule = _min_plus(11)
        pool = _loaded_pool(grid, labels, rule)
        try:
            real = pool._connections[0]
            test_end, pool_end = multiprocessing.Pipe()
            pool._connections[0] = pool_end
            pool._round_id += 1
            test_end.send(("nonsense",))
            with pytest.raises(PoolBrokenError, match="malformed"):
                pool._collect_replies()
            assert pool.broken
            # Let worker 0 (still wired to the real pipe) exit promptly.
            real.close()
            test_end.close()
        finally:
            pool.close()

    def test_stuck_worker_close_still_unlinks_segments(self, monkeypatch):
        # Regression: the close() terminate path was never covered.  A
        # worker hung mid-round must be terminated within the (shortened)
        # grace period and both shared segments still unlinked.
        import repro.runtime.pool as pool_module

        grid, labels = _grid_fixture()
        rule = _min_plus(1)
        plan = FaultPlan(
            worker_faults=[WorkerFault(kind="hang", worker=0, seconds=30.0)]
        )
        with faults.active(plan):
            pool = _loaded_pool(grid, labels, rule, round_timeout=0.3)
        segment_names = [buffer.name for buffer in pool._buffers]
        processes = list(pool._processes)
        with pytest.raises(PoolBrokenError, match="deadline"):
            pool.round(id(rule))
        monkeypatch.setattr(pool_module, "SHUTDOWN_GRACE", 0.2)
        start = time.monotonic()
        pool.close()
        assert time.monotonic() - start < 5.0
        assert pool.closed
        for process in processes:
            assert not process.is_alive()
        for name in segment_names:
            assert not _segment_exists(name)
