"""Tracing must observe, never perturb: byte-identity with tracing on.

The acceptance leg for the observability tentpole.  Two contracts:

* every engine tier produces byte-identical labellings whether the span
  tracer is installed or not — across all five tiers, on randomized
  inputs, with ``table_threshold=1`` so the sharding tiers demonstrably
  shard;
* a traced five-tier run on the shm tier yields a valid Chrome
  trace-event document containing the documented span hierarchy
  (``round`` → ``pool-round`` → ``worker-chunk``), the ``tier-dispatch``
  markers, the pool/worker metrics and the ``resolve_engine`` decision
  instant for ``engine="auto"`` schedules.
"""

import json
import warnings

import pytest

from equivalence import (
    assert_engines_agree,
    call_outcome,
    canonical_bytes,
    derive_rng,
    grid_corpus,
    rule_engine_factories,
)

from repro.grid.torus import ToroidalGrid
from repro.local_model import FunctionRule, SchedulePhase, run_schedule
from repro.local_model.rules import MajorityRule, MinNeighbourRule
from repro.local_model.store import shm_available
from repro.observability import metrics, trace
from repro.observability.decision import clear_decisions


@pytest.fixture(autouse=True)
def _isolated_observability():
    metrics.registry().reset()
    clear_decisions()
    previous = trace.uninstall()
    yield
    metrics.registry().reset()
    clear_decisions()
    trace.ACTIVE = previous


def _random_labels(rng, grid, alphabet_size=6):
    return {node: rng.randrange(alphabet_size) for node in grid.nodes()}


class TestTracingIsPure:
    def test_all_tiers_byte_identical_with_tracing_on(
        self, equivalence_seed, monkeypatch
    ):
        """Traced runs match untraced runs on every tier, rule by rule."""
        monkeypatch.setenv("REPRO_WORKERS", "2")
        include_shm = shm_available()
        rng = derive_rng(equivalence_seed, "trace-purity")
        for grid in grid_corpus(rng, extras=0):
            for rule in (MinNeighbourRule(), MajorityRule()):
                labels = _random_labels(rng, grid)
                context = (
                    f"trace-purity {grid.sides} rule={type(rule).__name__}"
                )
                with trace.disabled():
                    untraced = canonical_bytes(
                        call_outcome(
                            rule_engine_factories(
                                grid, labels, rule,
                                table_threshold=1, include_shm=include_shm,
                            )["dict"]
                        )
                    )
                with trace.capture():
                    traced = assert_engines_agree(
                        rule_engine_factories(
                            grid, labels, rule,
                            table_threshold=1, include_shm=include_shm,
                        ),
                        context,
                    )
                assert canonical_bytes(traced) == untraced, context

    def test_traced_schedule_matches_untraced_schedule(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "trace-schedule")
        grid = ToroidalGrid((rng.randint(5, 8), rng.randint(5, 8)))
        labels = _random_labels(rng, grid)
        schedule = [SchedulePhase(MinNeighbourRule(), "settle", 3)]
        with trace.disabled():
            baseline = run_schedule(grid, labels, schedule, engine="array").to_dict()
        with trace.capture():
            traced = run_schedule(grid, labels, schedule, engine="array").to_dict()
        assert canonical_bytes(traced) == canonical_bytes(baseline)


@pytest.mark.skipif(
    not shm_available(), reason="platform lacks shm-tier prerequisites"
)
class TestTracedShmSchedule:
    def test_trace_contains_the_documented_span_hierarchy(
        self, tmp_path, monkeypatch
    ):
        """The acceptance criterion: a traced shm run exports a valid
        Chrome document with round, pool-round, worker-chunk and
        tier-dispatch spans plus the pool/worker metrics."""
        monkeypatch.setenv("REPRO_WORKERS", "2")
        grid = ToroidalGrid((8, 8))
        rule = MinNeighbourRule()
        labels = {node: (3 * node[0] + node[1]) % 5 for node in grid.nodes()}
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with trace.capture() as tracer:
                from repro.local_model.engine import ShmEngine

                with ShmEngine(grid, table_threshold=1) as engine:
                    current = engine.store(labels)
                    for _ in range(3):
                        current = engine.apply_rule(current, rule)
                destination = trace.write_trace(tracer, tmp_path / "shm-trace.json")

        rounds = tracer.find(trace.SPAN_ROUND)
        assert len(rounds) == 3
        assert {span.args["tier"] for span in rounds} == {"shm"}
        pool_rounds = tracer.find(trace.SPAN_POOL_ROUND)
        assert len(pool_rounds) == 3
        chunks = tracer.find(trace.SPAN_WORKER_CHUNK)
        assert len(chunks) == 6  # 3 rounds x 2 workers
        assert {span.tid for span in chunks} == {1, 2}
        for chunk in chunks:
            assert chunk.duration > 0.0
            assert chunk.args["nodes"] == 32
        dispatches = tracer.find(trace.SPAN_TIER_DISPATCH)
        assert all(span.args["tier"] == "shm" for span in dispatches)

        registry = metrics.registry()
        assert registry.counter("engine_rounds_total", tier="shm") == 3
        assert registry.counter("pool_rounds_total") == 3
        assert registry.counter("pool_spawns_total") == 1
        assert registry.counter("pool_reuse_granted_total") == 2
        snapshot = registry.snapshot()["summaries"]
        assert snapshot["pool_round_barrier_seconds"]["count"] == 3
        assert snapshot["worker_chunk_seconds"]["count"] == 6

        payload = json.loads((tmp_path / "shm-trace.json").read_text())
        assert destination == str(tmp_path / "shm-trace.json")
        names = {event["name"] for event in payload["traceEvents"]}
        assert {
            trace.SPAN_ROUND,
            trace.SPAN_POOL_ROUND,
            trace.SPAN_WORKER_CHUNK,
            trace.SPAN_TIER_DISPATCH,
        } <= names
        counters = payload["repro"]["metrics"]["counters"]
        assert counters["engine_rounds_total{tier=shm}"] == 3

    def test_auto_schedule_records_the_decision_in_the_export(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        grid = ToroidalGrid((6, 6))
        rule = FunctionRule(1, lambda view: min(view.values()))
        labels = {node: (node[0] + 2 * node[1]) % 4 for node in grid.nodes()}
        with trace.capture() as tracer:
            run_schedule(
                grid, labels, [SchedulePhase(rule, "one", 1)], engine="auto"
            )
            trace.write_trace(tracer, tmp_path / "auto-trace.json")
        payload = json.loads((tmp_path / "auto-trace.json").read_text())
        decisions = payload["repro"]["decisions"]
        assert decisions and decisions[-1]["requested"] == "auto"
        instants = [
            event
            for event in payload["traceEvents"]
            if event["name"] == trace.SPAN_RESOLVE_ENGINE
        ]
        assert instants and instants[0]["ph"] == "i"
        (schedule_span,) = tracer.find(trace.SPAN_SCHEDULE)
        assert schedule_span.args["tier"] == decisions[-1]["resolved"]

    def test_untraced_pool_replies_carry_no_stats(self, monkeypatch):
        """Without a tracer the parent asks for (and gets) lean replies."""
        monkeypatch.setenv("REPRO_WORKERS", "2")
        np = pytest.importorskip("numpy")
        from repro.grid.indexer import GridIndexer
        from repro.local_model.engine import plan_chunks
        from repro.local_model.store import LabelCodec
        from repro.runtime.pool import WorkerPool

        grid = ToroidalGrid((6, 6))
        indexer = GridIndexer.for_grid(grid)
        codec = LabelCodec(range(6))
        rule = MinNeighbourRule()
        labels = {node: (node[0] + node[1]) % 3 for node in grid.nodes()}
        codes = np.asarray(
            [codec.encode(labels[node]) for node in indexer.nodes],
            dtype=np.int32,
        )
        assert trace.ACTIVE is None
        pool = WorkerPool(
            indexer,
            codec,
            {id(rule): rule},
            plan_chunks(indexer.node_count, 2),
        )
        try:
            pool.load(codes)
            pool.round(id(rule))
            assert len(pool.snapshot()) == 36
        finally:
            pool.close()
        registry = metrics.registry()
        assert registry.counter("pool_rounds_total") == 1
        # No tracer => stats_rev 0 => workers never timed their chunks.
        assert registry.snapshot()["summaries"].get("worker_chunk_seconds") is None
