"""Randomized five-engine equivalence suite (see ``tests/equivalence.py``).

Each test derives a private RNG from ``--equivalence-seed`` (default 0),
draws randomized instances — square, non-square and 1-dimensional tori,
rules over alphabets far too large to table-compile (the workload the
sharding tiers exist for), rules whose outputs leave the initial alphabet
(the shm tier's overflow/codec-sync protocol), raising rules — and asserts
that the ``"dict"`` reference, the ``"indexed"``/``"array"`` fast paths,
the per-round-fork ``"parallel"`` tier and the persistent-pool ``"shm"``
tier produce byte-identical outcomes, including identical exceptions with
sequential first-failing-node semantics.  The persistence invariant itself
is pinned too: a multi-round schedule must spawn exactly one pool.
"""

import warnings

import pytest

from equivalence import (
    assert_engines_agree,
    assert_equivalent,
    derive_rng,
    grid_corpus,
    rule_engine_factories,
)

from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import FunctionRule
from repro.local_model.engine import (
    ParallelEngine,
    SchedulePhase,
    ShmEngine,
    run_schedule,
)
from repro.local_model.simulator import apply_rule, iterate_rule
from repro.local_model.store import (
    SHM_AUTO_THRESHOLD,
    resolve_engine,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform lacks shm-tier prerequisites"
)


def _engine_corpus(rng):
    """Tori covering the engine edge cases: 2-D shapes plus a 1-D cycle."""
    yield from grid_corpus(rng, extras=0)
    yield ToroidalGrid((rng.randint(5, 11),))


def _identifier_rule(rng):
    """A deterministic non-compilable rule (alphabet size ~ node count)."""
    a, b = rng.randrange(1, 7), rng.randrange(7)

    def update(view):
        values = sorted(view.values())
        return a * values[0] + b * values[-1]

    return FunctionRule(rng.choice([1, 1, 2]), update)


class TestFiveTierEquivalence:
    def test_non_compilable_rules_across_worker_counts(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "shm-noncompilable")
        for trial, grid in enumerate(_engine_corpus(rng)):
            identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
            labels = {node: identifiers[node] for node in grid.nodes()}
            rule = _identifier_rule(rng)
            workers = rng.choice([2, 3, 4])
            for worker_count in (0, 1, workers):
                engine = ShmEngine(grid, workers=worker_count, table_threshold=1)
                with engine:
                    # Intern the labels so the tier query sees the real
                    # alphabet, exactly as an application would.
                    store = engine.store(labels)
                    expected = "shm" if worker_count > 1 else "list"
                    assert engine.rule_tier(rule) == expected, store
                assert_engines_agree(
                    rule_engine_factories(
                        grid,
                        labels,
                        rule,
                        workers=worker_count,
                        table_threshold=1,
                        include_shm=True,
                    ),
                    f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                    f"radius={rule.radius} workers={worker_count}",
                )

    def test_rules_growing_the_alphabet_mid_schedule(
        self, equivalence_seed, monkeypatch
    ):
        # Outputs leave the initial alphabet every round: round k's labels
        # are unknown to the fork-time codec snapshot, so every round
        # exercises the overflow report and the next round's codec-delta
        # sync.  Three rounds also end on the "odd" buffer of the double
        # buffer (round count 3), covering both swap parities below.
        # REPRO_WORKERS pins real sharding even on single-CPU runners.
        monkeypatch.setenv("REPRO_WORKERS", "2")
        rng = derive_rng(equivalence_seed, "shm-overflow")
        for trial, grid in enumerate(grid_corpus(rng, extras=0)):
            identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
            labels = {node: identifiers[node] for node in grid.nodes()}
            shift = rng.randrange(1_000, 2_000)

            def update(view, shift=shift):
                values = sorted(view.values())
                return values[0] + values[-1] + shift

            rule = FunctionRule(1, update)
            for rounds in (1, 2, 3):
                schedule = [SchedulePhase(rule, name="grow", iterations=rounds)]
                assert_equivalent(
                    lambda: run_schedule(grid, labels, schedule).to_dict(),
                    lambda: run_schedule(
                        grid, labels, schedule, engine="shm"
                    ).to_dict(),
                    f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                    f"rounds={rounds}",
                )

    def test_raising_rules_report_first_failing_node(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "shm-raising")
        for trial, grid in enumerate(_engine_corpus(rng)):
            nodes = list(grid.nodes())
            labels = {node: position for position, node in enumerate(nodes)}
            # Poison a random subset of nodes: several chunks can fail in
            # the same round, and every engine must report the *same* node
            # (the lowest flat index).
            poisoned = set(
                rng.sample(range(len(nodes)), rng.randint(1, max(1, len(nodes) // 4)))
            )
            poisoned.add(0)

            def update(view):
                smallest = min(view.values())
                if smallest in poisoned:
                    raise ValueError(f"poisoned label {smallest}")
                return smallest

            rule = FunctionRule(1, update)
            outcome = assert_engines_agree(
                rule_engine_factories(
                    grid,
                    labels,
                    rule,
                    workers=rng.choice([2, 4]),
                    include_shm=True,
                ),
                f"seed={equivalence_seed} trial={trial} grid={grid.sides} "
                f"poisoned={len(poisoned)}",
            )
            assert outcome[0] == "error"

    def test_pool_survives_a_raising_round(self, equivalence_seed):
        # A rule exception is a *result*, not a pool failure: the same
        # engine must keep its workers and stay byte-identical afterwards.
        rng = derive_rng(equivalence_seed, "shm-raise-survive")
        grid = ToroidalGrid((rng.randint(5, 8), rng.randint(5, 8)))
        labels = {
            node: position for position, node in enumerate(grid.nodes())
        }
        good = _identifier_rule(rng)

        def update(view):
            raise ValueError(f"always fails at {min(view.values())}")

        bad = FunctionRule(1, update)
        with ShmEngine(grid, workers=2, table_threshold=1) as engine:
            engine.prepare([good, bad])
            before = engine.apply_rule(labels, good).to_dict()
            with pytest.raises(ValueError, match="always fails at 0"):
                engine.apply_rule(labels, bad)
            assert engine.pool_spawns == 1 and not engine._pool.closed
            after = engine.apply_rule(labels, good).to_dict()
        assert before == after == apply_rule(grid, labels, good)

    def test_iterate_rule_including_budget_exhaustion(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "shm-iterate")
        for trial, grid in enumerate(grid_corpus(rng, extras=0)):
            identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
            labels = {node: identifiers[node] for node in grid.nodes()}
            rule = FunctionRule(1, lambda view: min(view.values()))
            target = min(labels.values())

            def stop(current):
                return all(value == target for value in current.values())

            budget = max(grid.sides) + 1
            context = f"seed={equivalence_seed} trial={trial} grid={grid.sides}"

            def run_shm_iterate(should_stop, max_iterations):
                with ShmEngine(grid, workers=2, table_threshold=1) as engine:
                    return engine.iterate_rule(
                        labels, rule, should_stop, max_iterations
                    ).to_dict()

            assert_equivalent(
                lambda: iterate_rule(grid, labels, rule, stop, budget),
                lambda: run_shm_iterate(stop, budget),
                f"{context} budget={budget}",
            )
            # Impossible predicate: identical SimulationError through the
            # persistent pool.
            assert_equivalent(
                lambda: iterate_rule(grid, labels, rule, lambda current: False, 2),
                lambda: run_shm_iterate(lambda current: False, 2),
                f"{context} exhausted",
            )

    def test_mutating_stop_predicates_stay_byte_identical(self, equivalence_seed):
        # Regression: shm-tier snapshots are read-only and stores copy on
        # first write, so a should_stop predicate that *mutates* the store
        # must still feed its mutation into the next round exactly as the
        # list-backed tiers do.
        rng = derive_rng(equivalence_seed, "shm-mutating-stop")
        grid = ToroidalGrid((rng.randint(5, 8), rng.randint(5, 8)))
        labels = {node: position for position, node in enumerate(grid.nodes())}
        pin = next(iter(grid.nodes()))
        rule = FunctionRule(1, lambda view: min(view.values()))

        def make_stop():
            calls = {"count": 0}

            def stop(current):
                calls["count"] += 1
                # Re-seed one node with a large value every check: without
                # the mutation being visible, the minimum floods to 0 and
                # the outcome differs.
                current[pin] = 1_000 + calls["count"]
                return calls["count"] > 3

            return stop

        budget = 10
        assert_equivalent(
            lambda: iterate_rule(grid, labels, rule, make_stop(), budget),
            lambda: ShmEngine(grid, workers=2, table_threshold=1)
            .iterate_rule(labels, rule, make_stop(), budget)
            .to_dict(),
            f"seed={equivalence_seed} grid={grid.sides} mutating-stop",
        )

    def test_run_schedule_spawns_exactly_one_pool(self, equivalence_seed, monkeypatch):
        # The amortisation invariant behind the whole tier: a multi-phase,
        # multi-rule schedule forks its workers once, not once per round.
        rng = derive_rng(equivalence_seed, "shm-persistence")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        grid = ToroidalGrid((rng.randint(6, 9), rng.randint(6, 9)))
        identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
        labels = {node: identifiers[node] for node in grid.nodes()}
        first, second = _identifier_rule(rng), _identifier_rule(rng)
        with ShmEngine(grid, table_threshold=1) as engine:
            engine.prepare([first, second])
            current = engine.store(labels)
            for _ in range(3):
                current = engine.apply_rule(current, first)
                current = engine.apply_rule(current, second)
            assert engine.pool_spawns == 1
            assert engine._pool.rounds_run == 6
            result = current.to_dict()
        expected = labels
        for _ in range(3):
            expected = apply_rule(grid, expected, first)
            expected = apply_rule(grid, expected, second)
        assert result == expected

    def test_vectorisable_rules_delegate_to_the_array_tier(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "shm-delegate")
        grid = ToroidalGrid((rng.randint(5, 9), rng.randint(5, 9)))
        alphabet_size = rng.randint(2, 4)
        labels = {node: rng.randrange(alphabet_size) for node in grid.nodes()}
        rule = FunctionRule(
            1, lambda view: (min(view.values()) + max(view.values())) % alphabet_size
        )
        with ShmEngine(grid, workers=4) as engine:
            engine.store(labels)
            assert engine.rule_tier(rule) == "table"
            # Delegated rounds never touch the pool.
            engine.apply_rule(labels, rule)
            assert engine.pool_spawns == 0
        assert_engines_agree(
            rule_engine_factories(grid, labels, rule, workers=4, include_shm=True),
            f"seed={equivalence_seed} grid={grid.sides} alphabet={alphabet_size}",
        )


class TestAutoPolicy:
    def test_auto_picks_shm_above_the_threshold(self, monkeypatch):
        allowed = ("dict", "indexed", "array", "parallel", "shm")
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_engine("auto", allowed, node_count=SHM_AUTO_THRESHOLD) == "shm"
        # Below the shm threshold the parallel tier still wins...
        assert (
            resolve_engine("auto", allowed, node_count=SHM_AUTO_THRESHOLD - 1)
            == "parallel"
        )
        # ...and call sites that do not allow the tier never get it.
        assert (
            resolve_engine(
                "auto",
                ("dict", "indexed", "array", "parallel"),
                node_count=1 << 22,
            )
            == "parallel"
        )
        # A single worker disables both sharding tiers no matter the size.
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert resolve_engine("auto", allowed, node_count=1 << 22) == "array"

    def test_explicit_shm_requires_the_caller_to_allow_it(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("shm", ("dict", "indexed", "array"))


def _counter_rule():
    """Deterministic rule whose body mutates a closure cell.

    The output ignores the counter, so every tier stays byte-identical —
    but the mutation makes the body statically PROVEN_UNSAFE, which a
    ``parallel_safe=True`` declaration (the default) contradicts.
    """
    cell = [0]

    def update(view):
        cell[0] += 1
        return min(view.values())

    return FunctionRule(1, update)


class TestStaticVerdictGate:
    """The statics wiring of the sharding tiers (see repro.statics.purity)."""

    def test_proven_unsafe_rule_warns_once_before_the_pool_spawns(
        self, equivalence_seed, monkeypatch
    ):
        rng = derive_rng(equivalence_seed, "shm-verdict-gate")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        grid = ToroidalGrid((rng.randint(6, 9), rng.randint(6, 9)))
        identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
        labels = {node: identifiers[node] for node in grid.nodes()}
        rule = _counter_rule()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with ShmEngine(grid, table_threshold=1) as engine:
                current = engine.store(labels)
                for _ in range(3):
                    current = engine.apply_rule(current, rule)
                assert engine.pool_spawns == 1
                result = current.to_dict()
        hits = [
            w
            for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "PROVEN_UNSAFE" in str(w.message)
        ]
        assert len(hits) == 1, "exactly one warning across three sharded rounds"
        expected = labels
        for _ in range(3):
            expected = apply_rule(grid, expected, _counter_rule())
        assert result == expected

    def test_strict_mode_stops_the_rule_before_any_fork(
        self, equivalence_seed, monkeypatch
    ):
        rng = derive_rng(equivalence_seed, "shm-verdict-strict")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_STATICS_STRICT", "1")
        grid = ToroidalGrid((rng.randint(6, 9), rng.randint(6, 9)))
        identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
        labels = {node: identifiers[node] for node in grid.nodes()}
        with ShmEngine(grid, table_threshold=1) as engine:
            with pytest.raises(RuntimeError, match="PROVEN_UNSAFE"):
                engine.apply_rule(labels, _counter_rule())
            assert engine.pool_spawns == 0

    def test_parallel_tier_warns_too(self, equivalence_seed, monkeypatch):
        rng = derive_rng(equivalence_seed, "parallel-verdict-gate")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        grid = ToroidalGrid((rng.randint(6, 9), rng.randint(6, 9)))
        identifiers = random_identifiers(grid, seed=rng.randrange(10_000))
        labels = {node: identifiers[node] for node in grid.nodes()}
        rule = _counter_rule()
        engine = ParallelEngine(grid, table_threshold=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = engine.apply_rule(labels, rule).to_dict()
        hits = [
            w
            for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "PROVEN_UNSAFE" in str(w.message)
        ]
        assert len(hits) == 1
        assert result == apply_rule(grid, labels, _counter_rule())


class TestTopologyFamilies:
    def test_persistent_pool_matches_all_tiers_on_every_family(
        self, equivalence_seed
    ):
        from equivalence import random_topology_labels, topology_cases

        rng = derive_rng(equivalence_seed, "shm-topology-families")
        for case, (name, topology) in enumerate(topology_cases(rng)):
            alphabet_size = rng.randint(2, 5)
            rule = _identifier_rule(rng)
            labels = random_topology_labels(rng, topology, range(alphabet_size))
            assert_engines_agree(
                rule_engine_factories(
                    topology,
                    labels,
                    rule,
                    workers=2,
                    table_threshold=1,
                    include_shm=True,
                ),
                f"seed={equivalence_seed} case={case} family={name} "
                f"topology={topology!r} alphabet={alphabet_size}",
            )
