"""Tests for the colouring algorithms of Sections 8–10."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.colouring.edge_colouring import EdgeColouringAlgorithm, edge_colouring
from repro.colouring.impossibility import (
    edge_colouring_parity_obstruction,
    exhaustive_edge_colouring_infeasible,
    exhaustive_vertex_colouring_feasible,
)
from repro.colouring.jk_independent import compute_jk_independent_set
from repro.colouring.vertex4 import FourColouringAlgorithm, four_colouring
from repro.colouring.vertex_global import global_three_colouring, global_two_colouring
from repro.core.verifier import (
    verify_proper_edge_colouring,
    verify_proper_vertex_colouring,
)
from repro.errors import UnsolvableInstanceError
from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid


class TestGlobalColourings:
    def test_two_colouring_even_torus(self):
        grid = ToroidalGrid.square(8)
        result = global_two_colouring(grid)
        assert verify_proper_vertex_colouring(grid, result.node_labels, 2).valid
        assert result.rounds == 8  # the diameter of the torus

    def test_two_colouring_odd_torus_unsolvable(self):
        with pytest.raises(UnsolvableInstanceError):
            global_two_colouring(ToroidalGrid.square(7))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(3, 20))
    def test_three_colouring_valid_for_every_size(self, n):
        grid = ToroidalGrid.square(n)
        result = global_three_colouring(grid)
        assert verify_proper_vertex_colouring(grid, result.node_labels, 3).valid

    def test_three_colouring_in_three_dimensions(self):
        cube = ToroidalGrid.square(5, dimension=3)
        result = global_three_colouring(cube)
        assert verify_proper_vertex_colouring(cube, result.node_labels, 3).valid

    def test_three_colouring_rounds_grow_linearly(self):
        small = global_three_colouring(ToroidalGrid.square(8)).rounds
        large = global_three_colouring(ToroidalGrid.square(32)).rounds
        assert large == 4 * small  # Θ(n): the diameter scales with n


class TestFourColouringTheorem4:
    """The explicit Theorem 4 construction.

    The paper's constants are astronomically conservative; the smallest
    parameters for which the construction goes through on our instances are
    ℓ = 10 with radii up to 3ℓ, which needs a 64×64 grid — this is the slow
    end of the default test suite.
    """

    @pytest.mark.slow
    def test_construction_on_64_grid(self):
        grid = ToroidalGrid.square(64)
        identifiers = random_identifiers(grid, seed=1)
        result = four_colouring(grid, identifiers, ell=10, max_ell=10, radius_factor=3)
        assert verify_proper_vertex_colouring(grid, result.node_labels, 4).valid
        assert result.metadata["ell"] == 10
        assert result.metadata["anchor_count"] > 0

    def test_small_grid_rejected_with_guidance(self):
        grid = ToroidalGrid.square(16)
        identifiers = random_identifiers(grid, seed=1)
        with pytest.raises(UnsolvableInstanceError):
            four_colouring(grid, identifiers, ell=10, max_ell=10)

    def test_odd_ell_rejected(self):
        grid = ToroidalGrid.square(16)
        identifiers = random_identifiers(grid, seed=1)
        with pytest.raises(ValueError):
            four_colouring(grid, identifiers, ell=3)

    def test_algorithm_object_defaults(self):
        algorithm = FourColouringAlgorithm()
        assert algorithm.ell == 10
        assert algorithm.radius_factor == 3


class TestJKIndependentSets:
    def test_definition_18_properties(self):
        grid = ToroidalGrid.square(48)
        identifiers = random_identifiers(grid, seed=5)
        independent_set = compute_jk_independent_set(
            grid, identifiers, axis=0, k=2, spacing=25, movement_cap=47
        )
        assert independent_set.verify(grid) == []
        assert independent_set.rounds > 0
        # one member per row when the spacing exceeds half the side length
        assert len(independent_set.members) == 48

    def test_vertical_dimension(self):
        grid = ToroidalGrid.square(48)
        identifiers = random_identifiers(grid, seed=6)
        independent_set = compute_jk_independent_set(
            grid, identifiers, axis=1, k=2, spacing=25, movement_cap=47
        )
        assert independent_set.verify(grid) == []

    def test_verify_reports_ball_overlaps(self):
        grid = ToroidalGrid.square(48)
        identifiers = random_identifiers(grid, seed=5)
        independent_set = compute_jk_independent_set(
            grid, identifiers, axis=0, k=2, spacing=25, movement_cap=47
        )
        # Inject a violation: add a member right next to an existing one.
        member = next(iter(independent_set.members))
        independent_set.members.add(grid.shift(member, (1, 0)))
        assert independent_set.verify(grid)


class TestJKIndependentProperties:
    """Definition 18 invariants checked property-style on both engines.

    For every construction that succeeds, (1) every node must have a member
    within distance ``j`` inside its q-directional row and (2) the L∞
    radius-``k`` balls of the members must be pairwise disjoint.  The
    invariants are recomputed from first principles here (not via
    ``verify``) and checked on both code paths across 25 random seeds; the
    chosen constants succeed on every one of these seeds.
    """

    SEEDS = range(25)
    PARAMS = dict(k=1, spacing=11, movement_cap=19)

    @staticmethod
    def _assert_definition_18(grid, independent_set):
        j = independent_set.j
        k = independent_set.k
        members = sorted(independent_set.members)
        assert members, "construction returned no members"
        # (2) pairwise-disjoint L-infinity balls.
        for index, first in enumerate(members):
            for second in members[index + 1:]:
                assert grid.linf_distance(first, second) > 2 * k, (
                    f"balls of {first} and {second} intersect"
                )
        # (1) a member within distance j inside every q-row.
        member_set = independent_set.members
        for row in grid.rows(independent_set.axis):
            length = len(row)
            positions = [p for p, node in enumerate(row) if node in member_set]
            assert positions, f"row through {row[0]} has no member"
            for position in range(length):
                closest = min(
                    min((position - p) % length, (p - position) % length)
                    for p in positions
                )
                assert closest <= j, (
                    f"node {row[position]} is {closest} > j={j} from every member"
                )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_invariants_hold_on_both_engines(self, seed):
        grid = ToroidalGrid((21, 20)) if seed % 3 == 0 else ToroidalGrid.square(20)
        identifiers = random_identifiers(grid, seed=seed)
        axis = seed % 2
        results = {}
        for engine in ("dict", "indexed"):
            results[engine] = compute_jk_independent_set(
                grid, identifiers, axis=axis, engine=engine, **self.PARAMS
            )
            self._assert_definition_18(grid, results[engine])
            assert results[engine].verify(grid) == []
        assert results["dict"] == results["indexed"]


class TestEdgeColouring:
    @pytest.mark.slow
    def test_five_colouring_on_96_grid(self):
        grid = ToroidalGrid.square(96)
        identifiers = random_identifiers(grid, seed=2)
        result = edge_colouring(grid, identifiers)
        assert verify_proper_edge_colouring(grid, result.edge_labels, 5).valid
        assert result.metadata["marked_edges"] >= 2 * 96  # one per row per dimension

    def test_small_grid_rejected(self):
        grid = ToroidalGrid.square(12)
        identifiers = random_identifiers(grid, seed=2)
        with pytest.raises((UnsolvableInstanceError, Exception)):
            edge_colouring(grid, identifiers, max_retries=0)

    def test_algorithm_object(self):
        algorithm = EdgeColouringAlgorithm()
        assert algorithm.separation == 3
        assert "2d+1" in algorithm.name


class TestImpossibility:
    def test_theorem_21_parity_obstruction(self):
        odd = ToroidalGrid.square(5)
        even = ToroidalGrid.square(6)
        assert edge_colouring_parity_obstruction(odd, 4) is not None
        assert edge_colouring_parity_obstruction(even, 4) is None
        assert edge_colouring_parity_obstruction(odd, 5) is None
        cube_odd = ToroidalGrid.square(3, dimension=3)
        assert edge_colouring_parity_obstruction(cube_odd, 6) is not None

    def test_exhaustive_edge_colouring_matches_parity(self):
        assert exhaustive_edge_colouring_infeasible(ToroidalGrid.square(5), 4)
        assert not exhaustive_edge_colouring_infeasible(ToroidalGrid.square(4), 4)

    def test_exhaustive_vertex_colouring(self):
        odd = ToroidalGrid.square(5)
        assert exhaustive_vertex_colouring_feasible(odd, 2) is None
        colouring = exhaustive_vertex_colouring_feasible(odd, 3)
        assert colouring is not None
        assert verify_proper_vertex_colouring(odd, colouring, 3).valid
