"""Edge-case tests for the array engine tier.

Covers the :class:`LabelCodec` contract (round-trips with arbitrary
hashable labels, append-only alphabet growth), the
:class:`ArrayLabelStore` mutation semantics, and the engine's tier
selection: lookup-table compilation, threshold fallback, alphabet growth
invalidating compiled tables, and the sentinel replay path for rules that
raise.  Shapes deliberately include a 1-dimensional (degenerate) torus and
a non-square torus.
"""

import pytest

from repro.errors import SimulationError
from repro.grid.indexer import GridIndexer
from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import FunctionRule
from repro.local_model.engine import ArrayEngine, IndexedEngine
from repro.local_model.simulator import apply_rule
from repro.local_model.store import (
    ArrayLabelStore,
    LabelCodec,
    LabelStore,
    merge_chunk_values,
    resolve_engine,
)

DEGENERATE = ToroidalGrid((7,))  # a 1-D cycle: the degenerate torus
NON_SQUARE = ToroidalGrid((4, 7))


class TestChunkMerging:
    """The parallel tier's store-level merge primitive."""

    def test_merge_round_trips_any_chunk_order(self):
        values = [value * 3 for value in range(28)]
        chunks = [(0, values[:10]), (10, values[10:15]), (15, values[15:])]
        for permutation in (chunks, chunks[::-1], [chunks[1], chunks[2], chunks[0]]):
            assert merge_chunk_values(permutation, len(values)) == values

    def test_merged_values_rebuild_a_store(self):
        indexer = GridIndexer.for_grid(NON_SQUARE)
        values = [value * 3 for value in range(indexer.node_count)]
        chunks = [(0, values[:10]), (10, values[10:])]
        store = LabelStore(indexer, merge_chunk_values(chunks, indexer.node_count))
        assert store.values_list == values

    def test_gaps_overlaps_and_short_totals_are_rejected(self):
        values = list(range(28))
        with pytest.raises(SimulationError, match="does not continue"):
            merge_chunk_values([(0, values[:10]), (11, values[11:])], len(values))
        with pytest.raises(SimulationError, match="does not continue"):
            merge_chunk_values([(0, values[:10]), (9, values[9:])], len(values))
        with pytest.raises(SimulationError, match="cover"):
            merge_chunk_values([(0, values[:10])], len(values))


class TestLabelCodec:
    def test_round_trip_non_int_hashable_labels(self):
        labels = ["red", ("tuple", 3), frozenset({1, 2}), None, 2.5, "red"]
        codec = LabelCodec()
        codes = [codec.encode(label) for label in labels]
        assert codes == [0, 1, 2, 3, 4, 0]
        assert [codec.decode(code) for code in codes] == labels
        assert codec.size == 5
        assert codec.labels == ("red", ("tuple", 3), frozenset({1, 2}), None, 2.5)
        assert ("tuple", 3) in codec and "blue" not in codec
        assert [] not in codec  # unhashable probes are simply absent

    def test_alphabet_growth_keeps_old_codes_valid(self):
        codec = LabelCodec(["a", "b"])
        codes = codec.encode_values(["a", "b", "a"])
        assert list(codes) == [0, 1, 0]
        assert codec.encode("c") == 2  # growth is append-only
        assert codec.decode_values(codes) == ["a", "b", "a"]
        assert len(codec.label_array()) == 3

    def test_label_array_rebuilds_after_growth(self):
        codec = LabelCodec([10, 20])
        first = codec.label_array()
        assert list(first) == [10, 20]
        codec.encode(30)
        assert list(codec.label_array()) == [10, 20, 30]

    def test_label_array_handles_sequence_labels(self):
        # Tuple labels must not be flattened into a 2-D numeric array.
        codec = LabelCodec([(0, 1), (1, 0)])
        array = codec.label_array()
        assert array.dtype == object
        assert array[1] == (1, 0)

    def test_decode_unknown_code_raises(self):
        with pytest.raises(SimulationError, match="not interned"):
            LabelCodec(["x"]).decode(7)


class TestArrayLabelStore:
    @pytest.mark.parametrize("grid", [DEGENERATE, NON_SQUARE])
    def test_mapping_contract(self, grid):
        labels = {node: sum(node) % 3 for node in grid.nodes()}
        store = ArrayLabelStore.from_mapping(grid, labels)
        assert len(store) == grid.node_count
        assert dict(store) == labels
        assert store.to_dict() == labels
        node = next(iter(grid.nodes()))
        assert node in store and (99,) * grid.dimension not in store
        assert "not-a-node" not in store

    def test_totality_enforced(self):
        labels = {node: 0 for node in NON_SQUARE.nodes()}
        labels.pop((0, 0))
        with pytest.raises(KeyError, match="missing an entry"):
            ArrayLabelStore.from_mapping(NON_SQUARE, labels)
        indexer = GridIndexer.for_grid(NON_SQUARE)
        with pytest.raises(SimulationError, match="one code per node"):
            ArrayLabelStore(indexer, LabelCodec(["x"]), [0, 0, 0])

    def test_mutation_semantics(self):
        store = ArrayLabelStore.from_mapping(
            NON_SQUARE, {node: "off" for node in NON_SQUARE.nodes()}
        )
        store[(1, 2)] = "on"  # a new label grows the codec in place
        assert store[(1, 2)] == "on"
        assert store[(0, 0)] == "off"
        assert store.codec.size == 2
        store[(1, 2)] = "off"
        assert store[(1, 2)] == "off"
        with pytest.raises(SimulationError, match="cannot be deleted"):
            del store[(0, 0)]
        with pytest.raises(KeyError):
            store[(99, 99)] = "on"

    def test_values_list_decodes_in_indexer_order(self):
        indexer = GridIndexer.for_grid(NON_SQUARE)
        labels = {node: node[0] * 10 + node[1] for node in NON_SQUARE.nodes()}
        store = ArrayLabelStore.from_mapping(indexer, labels)
        assert store.values_list == [labels[node] for node in indexer.nodes]


class TestEngineTierSelection:
    @pytest.mark.parametrize("grid", [DEGENERATE, NON_SQUARE])
    def test_threshold_fallback_is_byte_identical(self, grid):
        labels = {node: sum(node) % 3 for node in grid.nodes()}
        rule = FunctionRule(1, lambda view: max(view.values()))
        compiled_engine = ArrayEngine(grid)
        fallback_engine = ArrayEngine(grid, table_threshold=1)
        compiled_engine.store(labels)
        fallback_engine.store(labels)
        assert compiled_engine.rule_tier(rule) == "table"
        assert fallback_engine.rule_tier(rule) == "list"
        expected = apply_rule(grid, labels, rule)
        assert compiled_engine.apply_rule(labels, rule).to_dict() == expected
        assert fallback_engine.apply_rule(labels, rule).to_dict() == expected

    @pytest.mark.parametrize("grid", [DEGENERATE, NON_SQUARE])
    def test_alphabet_growth_recompiles_lookup_table(self, grid):
        # The rule emits labels outside the current alphabet, so the
        # compiled table is invalidated between iterations.
        rule = FunctionRule(1, lambda view: min(view.values()) + 1)
        labels = {node: 0 for node in grid.nodes()}
        engine = ArrayEngine(grid)
        store = engine.store(labels)
        for _ in range(3):
            store = engine.apply_rule(store, rule)
            labels = apply_rule(grid, labels, rule)
            assert store.to_dict() == labels
        assert engine.codec.size == 4  # 0, 1, 2, 3 interned across rounds

    def test_rule_raising_on_occurring_view_matches_list_path(self):
        def update(view):
            if view[(0, 0)] == 1:
                raise ValueError("poisoned label")
            return view[(0, 0)]

        rule = FunctionRule(1, update)
        grid = NON_SQUARE
        labels = {node: 1 if node == (2, 3) else 0 for node in grid.nodes()}
        with pytest.raises(ValueError, match="poisoned label"):
            IndexedEngine(grid).apply_rule(labels, rule)
        with pytest.raises(ValueError, match="poisoned label"):
            ArrayEngine(grid).apply_rule(labels, rule)

    def test_rule_raising_only_on_unreachable_views_still_compiles(self):
        # The compiler enumerates all |Σ|^ball combinations, including ones
        # never occurring on the torus; a rule raising on those must not
        # poison the rounds that avoid them.
        def update(view):
            values = list(view.values())
            if values.count(1) > 1:
                raise ValueError("unreachable")
            return max(values)

        rule = FunctionRule(1, update)
        grid = ToroidalGrid((5, 5))
        # A single 1 on the grid: no radius-1 view ever sees two of them.
        labels = {node: 1 if node == (0, 0) else 0 for node in grid.nodes()}
        result = ArrayEngine(grid).apply_rule(labels, rule).to_dict()
        assert result == apply_rule(grid, labels, rule)

    def test_resolve_engine_validation(self):
        assert resolve_engine("auto") in ("array", "indexed")
        assert resolve_engine("dict") == "dict"
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("warp-drive")
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("dict", allowed=("indexed", "array"))

    def test_store_reuses_codec_and_codes(self):
        engine = ArrayEngine(NON_SQUARE)
        labels = {node: sum(node) % 2 for node in NON_SQUARE.nodes()}
        store = engine.store(labels)
        assert engine.store(store) is store  # same codec: adopted as-is
        other = ArrayLabelStore.from_mapping(NON_SQUARE, labels)
        readopted = engine.store(other)
        assert readopted is not other and readopted.codec is engine.codec
