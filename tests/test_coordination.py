"""Tests for q-sum coordination, the 3-colouring reduction and corner coordination."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.colouring.vertex_global import global_three_colouring
from repro.coordination.corner import (
    CornerCoordinationInstance,
    corner_ball_size,
    rounds_until_corner_sees_special,
    solve_corner_coordination,
    upper_bound_rounds,
    verify_corner_coordination,
)
from repro.coordination.qsum import QSumProblem, standard_q_function
from repro.coordination.three_colouring_reduction import (
    build_auxiliary_graph,
    cycle_decomposition,
    greedy_normalise_colouring,
    row_invariant,
    wrap_invariant,
)
from repro.errors import InvalidLabellingError, UnsolvableInstanceError
from repro.grid.torus import RectangularGrid, ToroidalGrid


class TestQSum:
    def test_standard_q_function_is_admissible(self):
        problem = QSumProblem(standard_q_function)
        assert problem.satisfies_theorem_10(range(3, 50))

    def test_inadmissible_functions_detected(self):
        assert not QSumProblem(lambda n: 2).satisfies_theorem_10([5])
        assert not QSumProblem(lambda n: n).satisfies_theorem_10([10])

    def test_verify_and_solve(self):
        problem = QSumProblem(standard_q_function)
        outputs = problem.solve_globally(9)
        assert problem.verify(outputs)
        assert not problem.verify([1] * 9)
        assert not problem.verify([2] + [0] * 8)

    def test_unreachable_target(self):
        problem = QSumProblem(lambda n: n + 1)
        with pytest.raises(UnsolvableInstanceError):
            problem.solve_globally(5)

    @settings(max_examples=20)
    @given(st.integers(3, 60))
    def test_solver_always_meets_its_target(self, n):
        problem = QSumProblem(standard_q_function)
        assert sum(problem.solve_globally(n)) == standard_q_function(n)


def _three_colouring(n):
    grid = ToroidalGrid.square(n)
    colouring = {node: c + 1 for node, c in global_three_colouring(grid).node_labels.items()}
    return grid, colouring


class TestGreedyNormalisation:
    def test_output_is_proper_and_greedy(self):
        grid, colouring = _three_colouring(9)
        greedy = greedy_normalise_colouring(grid, colouring)
        for node in grid.nodes():
            neighbour_colours = {greedy[v] for v in grid.neighbour_nodes(node)}
            assert greedy[node] not in neighbour_colours
            for smaller in range(1, greedy[node]):
                assert smaller in neighbour_colours

    def test_rejects_wrong_palette(self):
        grid = ToroidalGrid.square(4)
        with pytest.raises(InvalidLabellingError):
            greedy_normalise_colouring(grid, {node: 0 for node in grid.nodes()})

    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 14))
    def test_normalisation_never_breaks_properness(self, n):
        grid, colouring = _three_colouring(n)
        greedy = greedy_normalise_colouring(grid, colouring)
        for node in grid.nodes():
            for neighbour in grid.neighbour_nodes(node):
                assert greedy[node] != greedy[neighbour]


class TestAuxiliaryGraph:
    def test_degree_profile_matches_the_paper(self):
        # Every node of H has in-degree equal to out-degree, both 1 or 2.
        for n in (7, 9, 12):
            grid, colouring = _three_colouring(n)
            greedy = greedy_normalise_colouring(grid, colouring)
            graph = build_auxiliary_graph(grid, greedy)
            assert graph.degree_profile_valid()

    def test_cycle_decomposition_uses_every_edge_once(self):
        grid, colouring = _three_colouring(9)
        greedy = greedy_normalise_colouring(grid, colouring)
        graph = build_auxiliary_graph(grid, greedy)
        cycles = cycle_decomposition(graph)
        edges_in_cycles = []
        for cycle in cycles:
            for index, node in enumerate(cycle):
                edges_in_cycles.append((node, cycle[(index + 1) % len(cycle)]))
        assert sorted(edges_in_cycles) == sorted(graph.edges)

    def test_lemma_12_row_invariance(self):
        grid, colouring = _three_colouring(11)
        greedy = greedy_normalise_colouring(grid, colouring)
        graph = build_auxiliary_graph(grid, greedy)
        cycles = cycle_decomposition(graph)
        totals = [
            sum(row_invariant(grid, cycle, row) for cycle in cycles) for row in range(11)
        ]
        assert len(set(totals)) == 1

    def test_lemma_14_parity_and_bound(self):
        for n in (7, 9, 11, 13):
            grid, colouring = _three_colouring(n)
            value = wrap_invariant(grid, colouring)
            assert value % 2 == 1  # odd n forces an odd invariant
            assert abs(value) <= n / 2
        for n in (8, 12):
            grid, colouring = _three_colouring(n)
            value = wrap_invariant(grid, colouring)
            assert abs(value) <= n / 2

    def test_wrap_invariant_row_argument(self):
        grid, colouring = _three_colouring(9)
        assert wrap_invariant(grid, colouring, row=0) == wrap_invariant(grid, colouring, row=5)

    def test_three_dimensional_grid_rejected(self):
        cube = ToroidalGrid.square(5, dimension=3)
        with pytest.raises(InvalidLabellingError):
            build_auxiliary_graph(cube, {node: 1 for node in cube.nodes()})


class TestCornerCoordination:
    def test_reference_solution_is_feasible(self):
        instance = CornerCoordinationInstance(RectangularGrid(10, 10))
        solution = solve_corner_coordination(instance)
        assert verify_corner_coordination(instance, solution) == []

    def test_violations_detected(self):
        instance = CornerCoordinationInstance(RectangularGrid(6, 6))
        solution = solve_corner_coordination(instance)
        # A pseudotree ending at a non-corner node violates rule (3).
        solution[((2, 2), (3, 2))] = True
        problems = verify_corner_coordination(instance, solution)
        assert any("root or leaf" in problem for problem in problems)

    def test_corner_left_out_detected(self):
        instance = CornerCoordinationInstance(RectangularGrid(6, 6))
        solution = {((x, 0), (x + 1, 0)): True for x in range(5)}
        problems = verify_corner_coordination(instance, solution)
        assert any("not part of any pseudotree" in problem for problem in problems)

    def test_path_crossing_a_row_twice_detected(self):
        instance = CornerCoordinationInstance(RectangularGrid(6, 6))
        solution = {
            ((0, 0), (1, 0)): True,
            ((1, 0), (1, 1)): True,
            ((1, 1), (2, 1)): True,
            ((2, 1), (2, 0)): True,
            ((2, 0), (3, 0)): True,
            ((3, 0), (4, 0)): True,
            ((4, 0), (5, 0)): True,
            ((0, 5), (1, 5)): True,
            ((1, 5), (2, 5)): True,
            ((2, 5), (3, 5)): True,
            ((3, 5), (4, 5)): True,
            ((4, 5), (5, 5)): True,
        }
        problems = verify_corner_coordination(instance, solution)
        assert any("twice" in problem for problem in problems)

    def test_broken_instances_are_unconstrained(self):
        instance = CornerCoordinationInstance(RectangularGrid(6, 6), broken_nodes={(3, 3)})
        assert verify_corner_coordination(instance, {}) == []

    def test_round_scaling_is_sqrt_n(self):
        # Θ(√n): on an m × m rectangle a corner needs m - 1 rounds to see
        # another special node.
        for m in (5, 9, 16, 25):
            instance = CornerCoordinationInstance(RectangularGrid(m, m))
            rounds = rounds_until_corner_sees_special(instance, (0, 0))
            assert rounds == m - 1
            assert rounds <= upper_bound_rounds(instance.grid.node_count)

    def test_proposition_28_ball_size(self):
        assert corner_ball_size(0) == 1
        assert corner_ball_size(1) == 3
        assert corner_ball_size(2) == 6
        assert corner_ball_size(3) == 10
        # matches a direct count on a large rectangle
        grid = RectangularGrid(20, 20)
        for radius in (0, 1, 2, 3, 5):
            assert len(grid.ball((0, 0), radius)) == corner_ball_size(radius)

    def test_broken_node_shortens_the_wait(self):
        plain = CornerCoordinationInstance(RectangularGrid(12, 12))
        damaged = CornerCoordinationInstance(RectangularGrid(12, 12), broken_nodes={(3, 0)})
        assert rounds_until_corner_sees_special(plain, (0, 0)) == 11
        assert rounds_until_corner_sees_special(damaged, (0, 0)) == 3
