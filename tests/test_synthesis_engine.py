"""Tests for the synthesis loop, the lookup algorithms and the cached tables.

These are the Section 7 reproduction targets in unit-test form: synthesis
succeeds for the local problems ({1,3,4}-orientation at k = 1, 4-colouring
at k = 3) and fails for too-small parameters and for global problems.
"""

import pytest

from repro.core.catalog import (
    maximal_independent_set_problem,
    vertex_colouring_problem,
)
from repro.core.verifier import verify_node_labelling, verify_proper_vertex_colouring
from repro.errors import SynthesisError
from repro.grid.identifiers import adversarial_identifiers, random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.orientation.problems import x_orientation_problem
from repro.synthesis.encode import encode_tile_labelling_as_sat
from repro.synthesis.lookup import (
    LookupAnchorRule,
    build_lookup_algorithm,
    table_from_serialisable,
    table_to_serialisable,
)
from repro.synthesis.pretrained import load_four_colouring_algorithm, load_four_colouring_outcome
from repro.synthesis.sat import solve_cnf
from repro.synthesis.synthesiser import (
    candidate_window_sizes,
    synthesise,
    synthesise_with_budget,
    validate_table,
)
from repro.synthesis.tile_graph import build_tile_graph


class TestSynthesisOutcomes:
    def test_orientation_134_succeeds_at_k1(self):
        problem = x_orientation_problem({1, 3, 4})
        search = synthesise_with_budget(problem, max_k=1)
        assert search.succeeded
        assert search.best.k == 1
        assert search.best.tile_count > 0
        assert "succeeded" in search.best.certificate

    def test_orientation_013_succeeds_at_k1(self):
        problem = x_orientation_problem({0, 1, 3})
        search = synthesise_with_budget(problem, max_k=1)
        assert search.succeeded

    def test_four_colouring_fails_at_k1(self):
        outcome = synthesise(vertex_colouring_problem(4), k=1, width=3, height=3)
        assert not outcome.success
        assert not outcome.exhausted_budget  # genuinely unsatisfiable, not a timeout
        assert "failed" in outcome.certificate

    def test_three_colouring_fails_at_k1(self):
        outcome = synthesise(vertex_colouring_problem(3), k=1, width=3, height=2)
        assert not outcome.success

    def test_global_two_colouring_never_succeeds(self):
        search = synthesise_with_budget(vertex_colouring_problem(2), max_k=2)
        assert not search.succeeded
        assert len(search.attempts) >= 2

    def test_cross_constraint_problems_rejected(self):
        with pytest.raises(SynthesisError):
            synthesise(maximal_independent_set_problem(), k=1, width=2, height=2)

    def test_candidate_window_sizes_include_paper_choices(self):
        assert (3, 2) in candidate_window_sizes(1)
        assert (7, 5) in candidate_window_sizes(3)

    def test_sat_and_csp_engines_agree_on_small_instance(self):
        problem = x_orientation_problem({1, 3, 4})
        graph = build_tile_graph(3, 3, 1)
        csp_outcome = synthesise(problem, 1, 3, 3, engine="csp", graph=graph)
        sat_outcome = synthesise(problem, 1, 3, 3, engine="sat", graph=graph)
        assert csp_outcome.success == sat_outcome.success


class TestTableValidation:
    def test_validate_table_accepts_solver_output_and_rejects_corruption(self):
        problem = x_orientation_problem({1, 3, 4})
        search = synthesise_with_budget(problem, max_k=1)
        outcome = search.best
        graph = build_tile_graph(outcome.width, outcome.height, outcome.k)
        assert validate_table(problem, graph, outcome.table)
        # Corrupt one entry: force an in-degree-2 label, which the node
        # predicate forbids.
        corrupted = dict(outcome.table)
        some_tile = next(iter(corrupted))
        corrupted[some_tile] = (0, 0, 1, 1)
        assert not validate_table(problem, graph, corrupted)
        # Remove one entry entirely.
        incomplete = dict(outcome.table)
        incomplete.pop(some_tile)
        assert not validate_table(problem, graph, incomplete)

    def test_serialisation_round_trip(self):
        problem = x_orientation_problem({1, 3, 4})
        outcome = synthesise_with_budget(problem, max_k=1).best
        data = table_to_serialisable(outcome.table)
        restored = table_from_serialisable(data)
        assert restored == outcome.table


class TestSATEncoding:
    def test_encoding_matches_csp_verdict(self):
        problem = vertex_colouring_problem(4)
        graph = build_tile_graph(2, 2, 1)
        encoding = encode_tile_labelling_as_sat(problem, graph)
        result = solve_cnf(encoding.cnf)
        csp_verdict = synthesise(problem, 1, 2, 2, engine="csp", graph=graph).success
        assert result.satisfiable == csp_verdict
        if result.satisfiable:
            table = encoding.decode(result.assignment)
            assert validate_table(problem, graph, table)

    def test_cross_constraints_rejected(self):
        graph = build_tile_graph(2, 2, 1)
        with pytest.raises(SynthesisError):
            encode_tile_labelling_as_sat(maximal_independent_set_problem(), graph)


class TestLookupAlgorithms:
    def test_orientation_lookup_algorithm_end_to_end(self):
        problem = x_orientation_problem({1, 3, 4})
        search = synthesise_with_budget(problem, max_k=1)
        algorithm = build_lookup_algorithm(search.best)
        grid = ToroidalGrid.square(11)
        identifiers = random_identifiers(grid, seed=13)
        result = algorithm.run(grid, identifiers)
        assert verify_node_labelling(grid, problem, result.node_labels).valid
        assert result.rounds > 0

    def test_lookup_rule_reports_unknown_windows(self):
        from repro.grid.subgrid import Window

        rule = LookupAnchorRule(1, 1, {Window(((0,),)): "a"})
        with pytest.raises(SynthesisError):
            rule.output(Window(((1,),)))

    def test_build_lookup_algorithm_requires_success(self):
        outcome = synthesise(vertex_colouring_problem(3), k=1, width=2, height=2)
        with pytest.raises(SynthesisError):
            build_lookup_algorithm(outcome)

    def test_empty_table_rejected(self):
        with pytest.raises(SynthesisError):
            LookupAnchorRule(1, 1, {})


class TestPretrainedFourColouring:
    def test_cached_outcome_has_the_paper_parameters(self):
        outcome = load_four_colouring_outcome()
        assert outcome.k == 3
        assert (outcome.width, outcome.height) == (7, 5)
        assert outcome.tile_count == 2079  # the number reported in Section 7

    @pytest.mark.parametrize("n,seed", [(14, 0), (20, 3), (27, 8)])
    def test_cached_algorithm_produces_proper_4_colourings(self, n, seed):
        algorithm = load_four_colouring_algorithm()
        grid = ToroidalGrid.square(n)
        identifiers = random_identifiers(grid, seed=seed)
        result = algorithm.run(grid, identifiers)
        assert verify_proper_vertex_colouring(grid, result.node_labels, 4).valid

    def test_cached_algorithm_with_adversarial_identifiers(self):
        algorithm = load_four_colouring_algorithm()
        grid = ToroidalGrid.square(18)
        identifiers = adversarial_identifiers(grid)
        result = algorithm.run(grid, identifiers)
        assert verify_proper_vertex_colouring(grid, result.node_labels, 4).valid

    def test_rounds_stay_flat_across_sizes(self):
        algorithm = load_four_colouring_algorithm()
        rounds = []
        for n in (16, 24, 32):
            grid = ToroidalGrid.square(n)
            identifiers = random_identifiers(grid, seed=1)
            rounds.append(algorithm.run(grid, identifiers).rounds)
        assert max(rounds) - min(rounds) <= 150
        assert max(rounds) < 32 * 32  # nowhere near a linear-in-n cost


@pytest.mark.slow
class TestFullFourColouringSynthesis:
    def test_paper_headline_instance(self):
        """4-colouring synthesis: fails at k=2, succeeds at k=3 with 7×5 windows."""
        problem = vertex_colouring_problem(4)
        failing = synthesise(problem, k=2, width=5, height=3, engine="sat")
        assert not failing.success
        outcome = synthesise(problem, k=3, width=7, height=5, engine="sat")
        assert outcome.success
        assert outcome.tile_count == 2079
        graph = build_tile_graph(7, 5, 3)
        assert validate_table(problem, graph, outcome.table)
