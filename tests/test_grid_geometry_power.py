"""Tests for geometric helpers and power graphs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.geometry import (
    add_offsets,
    ball_offsets,
    ball_size,
    l1_norm,
    linf_norm,
    negate_offset,
    offsets_within,
    power_degree_bound,
)
from repro.grid.power import PowerGraph, power_neighbours
from repro.grid.torus import ToroidalGrid


class TestNorms:
    def test_examples(self):
        assert l1_norm((1, -2)) == 3
        assert linf_norm((1, -2)) == 2
        assert l1_norm(()) == 0
        assert linf_norm(()) == 0

    @given(st.lists(st.integers(-10, 10), min_size=1, max_size=4))
    def test_linf_le_l1_le_d_linf(self, offset):
        assert linf_norm(offset) <= l1_norm(offset) <= len(offset) * linf_norm(offset)


class TestBallOffsets:
    def test_known_sizes_2d(self):
        # L1 balls: 1, 5, 13, 25, ...  L-infinity balls: 1, 9, 25, 49, ...
        assert ball_size(2, 0, "l1") == 1
        assert ball_size(2, 1, "l1") == 5
        assert ball_size(2, 2, "l1") == 13
        assert ball_size(2, 1, "linf") == 9
        assert ball_size(2, 3, "linf") == 49

    def test_known_sizes_other_dimensions(self):
        assert ball_size(1, 3, "l1") == 7
        assert ball_size(3, 1, "linf") == 27

    def test_origin_included_and_offsets_within_excludes_it(self):
        offsets = ball_offsets(2, 2, "l1")
        assert (0, 0) in offsets
        assert (0, 0) not in list(offsets_within(2, 2, "l1"))
        assert len(list(offsets_within(2, 2, "l1"))) == len(offsets) - 1

    def test_power_degree_bound_matches_paper(self):
        # The paper uses (2k+1)^d - 1 for G^[k].
        assert power_degree_bound(2, 3, "linf") == 48
        assert power_degree_bound(2, 1, "l1") == 4

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ball_offsets(0, 1)
        with pytest.raises(ValueError):
            ball_offsets(2, -1)
        with pytest.raises(ValueError):
            ball_offsets(2, 1, "l7")

    def test_offset_helpers(self):
        assert add_offsets((1, 2), (3, -1)) == (4, 1)
        assert negate_offset((1, -2)) == (-1, 2)


class TestPowerGraph:
    def test_k1_l1_power_is_the_grid(self):
        grid = ToroidalGrid.square(6)
        power = PowerGraph(grid, 1, "l1")
        for node in grid.nodes():
            assert sorted(power.neighbours(node)) == sorted(grid.neighbour_nodes(node))

    def test_power_neighbours_distances(self):
        grid = ToroidalGrid.square(9)
        for neighbour in power_neighbours(grid, (4, 4), 2, "l1"):
            assert 1 <= grid.l1_distance((4, 4), neighbour) <= 2
        for neighbour in power_neighbours(grid, (4, 4), 2, "linf"):
            assert 1 <= grid.linf_distance((4, 4), neighbour) <= 2

    def test_adjacency_is_symmetric(self):
        grid = ToroidalGrid.square(7)
        power = PowerGraph(grid, 2, "linf")
        adjacency = power.adjacency()
        for node, neighbours in adjacency.items():
            for neighbour in neighbours:
                assert node in adjacency[neighbour]

    def test_are_adjacent(self):
        grid = ToroidalGrid.square(8)
        power = PowerGraph(grid, 3, "l1")
        assert power.are_adjacent((0, 0), (2, 1))
        assert not power.are_adjacent((0, 0), (0, 0))
        assert not power.are_adjacent((0, 0), (2, 2))

    def test_simulation_overhead(self):
        grid = ToroidalGrid.square(8)
        assert PowerGraph(grid, 3, "l1").simulation_overhead() == 3
        assert PowerGraph(grid, 3, "linf").simulation_overhead() == 6

    def test_max_degree_bound_holds(self):
        grid = ToroidalGrid.square(9)
        power = PowerGraph(grid, 2, "linf")
        bound = power.max_degree()
        for node in grid.nodes():
            assert len(power.neighbours(node)) <= bound

    def test_edges_unique(self):
        grid = ToroidalGrid.square(5)
        power = PowerGraph(grid, 2, "l1")
        edges = list(power.edges())
        assert len(edges) == len(set(edges))
        for u, v in edges:
            assert u < v

    def test_invalid_parameters(self):
        grid = ToroidalGrid.square(5)
        with pytest.raises(ValueError):
            PowerGraph(grid, 0)
        with pytest.raises(ValueError):
            PowerGraph(grid, 1, "bad-norm")

    @settings(max_examples=20)
    @given(st.integers(1, 3))
    def test_power_neighbour_count_on_large_torus_matches_ball(self, k):
        grid = ToroidalGrid.square(9)
        expected = ball_size(2, k, "l1") - 1
        assert len(power_neighbours(grid, (4, 4), k, "l1")) == expected
