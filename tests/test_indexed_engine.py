"""Equivalence tests: the indexed fast path versus the seed dict path.

Every function of :mod:`repro.local_model.engine` and every migrated
algorithm module must produce *identical* labellings to the dict-based
reference implementation on small grids; these tests freeze that contract
before the fast path is used for large benchmark sweeps.
"""

import pytest

from repro.errors import SimulationError
from repro.grid.identifiers import random_identifiers, row_major_identifiers
from repro.grid.indexer import GridIndexer
from repro.grid.power import PowerGraph
from repro.grid.subgrid import window_around
from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import FunctionRule
from repro.local_model.engine import IndexedEngine, SchedulePhase, run_schedule
from repro.local_model.simulator import RoundLedger, apply_rule, iterate_rule, run_phase
from repro.local_model.store import LabelStore
from repro.local_model.views import collect_label_view, collect_view
from repro.speedup.normal_form import FunctionAnchorRule, apply_anchor_rule
from repro.symmetry.cole_vishkin import colour_directed_cycle, three_colour_rows
from repro.symmetry.mis import compute_anchors, compute_mis


GRIDS = [ToroidalGrid.square(5), ToroidalGrid((3, 5)), ToroidalGrid((4, 6))]

RULES = [
    FunctionRule(0, lambda view: view[(0, 0)] * 2),
    FunctionRule(1, lambda view: min(view.values())),
    FunctionRule(2, lambda view: sum(view.values()) % 7),
    FunctionRule(1, lambda view: max(view.values()), norm="linf"),
    FunctionRule(2, lambda view: tuple(sorted(view.values()))[0], norm="linf"),
]


def _labels(grid, seed=3):
    ids = random_identifiers(grid, seed=seed)
    return {node: ids[node] for node in grid.nodes()}


class TestLabelStore:
    def test_mapping_protocol(self):
        grid = ToroidalGrid.square(4)
        labels = _labels(grid)
        store = LabelStore.from_mapping(grid, labels)
        assert len(store) == grid.node_count
        assert dict(store) == labels
        assert store.to_dict() == labels
        assert store[(1, 2)] == labels[(1, 2)]
        assert (1, 2) in store and (9, 9) not in store
        store[(1, 2)] = -1
        assert store[(1, 2)] == -1

    def test_total_labelling_enforced(self):
        grid = ToroidalGrid.square(4)
        labels = _labels(grid)
        missing = dict(labels)
        del missing[(0, 0)]
        with pytest.raises(KeyError):
            LabelStore.from_mapping(grid, missing)
        store = LabelStore.from_mapping(grid, labels)
        with pytest.raises(SimulationError):
            del store[(0, 0)]

    def test_filled(self):
        grid = ToroidalGrid.square(4)
        store = LabelStore.filled(grid, 0)
        assert set(store.values()) == {0}


class TestEngineEquivalence:
    @pytest.mark.parametrize("grid", GRIDS, ids=str)
    @pytest.mark.parametrize("rule_index", range(len(RULES)))
    def test_apply_rule(self, grid, rule_index):
        rule = RULES[rule_index]
        labels = _labels(grid)
        seed_ledger, fast_ledger = RoundLedger(), RoundLedger()
        expected = apply_rule(grid, labels, rule, ledger=seed_ledger)
        actual = IndexedEngine(grid).apply_rule(labels, rule, ledger=fast_ledger)
        assert actual.to_dict() == expected
        assert fast_ledger.total == seed_ledger.total
        assert fast_ledger.phases == seed_ledger.phases

    @pytest.mark.parametrize("grid", GRIDS, ids=str)
    def test_iterate_rule(self, grid):
        labels = _labels(grid)
        rule = FunctionRule(1, lambda view: min(view.values()))
        stop = lambda current: len(set(current.values())) == 1
        seed_ledger, fast_ledger = RoundLedger(), RoundLedger()
        expected = iterate_rule(
            grid, labels, rule, should_stop=stop, max_iterations=20, ledger=seed_ledger
        )
        actual = IndexedEngine(grid).iterate_rule(
            labels, rule, should_stop=stop, max_iterations=20, ledger=fast_ledger
        )
        assert actual.to_dict() == expected
        assert fast_ledger.total == seed_ledger.total

    def test_iterate_rule_budget_exhausted(self):
        grid = ToroidalGrid.square(4)
        labels = {node: 0 for node in grid.nodes()}
        rule = FunctionRule(1, lambda view: view[(0, 0)] + 1)
        with pytest.raises(SimulationError):
            IndexedEngine(grid).iterate_rule(
                labels, rule, should_stop=lambda c: False, max_iterations=3
            )

    def test_run_phase_partial_labelling_fails_loudly(self):
        # Same contract as the dict path: a SimulationError naming the
        # phase, not a bare KeyError from the index layer.
        grid = ToroidalGrid.square(4)
        labels = {node: 1 for node in grid.nodes()}
        del labels[(2, 2)]
        with pytest.raises(SimulationError) as excinfo:
            IndexedEngine(grid).run_phase(
                labels, lambda node, visible: 0, radius=1, phase="partial"
            )
        assert "(2, 2)" in str(excinfo.value)
        assert "'partial'" in str(excinfo.value)

    @pytest.mark.parametrize("grid", GRIDS, ids=str)
    @pytest.mark.parametrize("norm", ["l1", "linf"])
    def test_run_phase(self, grid, norm):
        labels = _labels(grid)
        compute = lambda node, visible: (sum(visible.values()) + node[0]) % 11
        seed_ledger, fast_ledger = RoundLedger(), RoundLedger()
        expected = run_phase(
            grid, labels, compute, radius=2, norm=norm, ledger=seed_ledger
        )
        actual = IndexedEngine(grid).run_phase(
            labels, compute, radius=2, norm=norm, ledger=fast_ledger
        )
        assert actual.to_dict() == expected
        assert fast_ledger.total == seed_ledger.total

    @pytest.mark.parametrize("grid", GRIDS, ids=str)
    @pytest.mark.parametrize("norm", ["l1", "linf"])
    def test_collect_label_view(self, grid, norm):
        labels = _labels(grid)
        engine = IndexedEngine(grid)
        for node in grid.nodes():
            expected = collect_label_view(grid, node, 2, labels, norm=norm)
            assert engine.collect_label_view(node, 2, labels, norm=norm) == expected

    @pytest.mark.parametrize("grid", GRIDS, ids=str)
    def test_collect_view(self, grid):
        ids = row_major_identifiers(grid)
        labels = {node: sum(node) for node in grid.nodes()}
        engine = IndexedEngine(grid)
        for node in list(grid.nodes())[:6]:
            expected = collect_view(grid, node, 1, ids, labels=labels)
            actual = engine.collect_view(node, 1, ids, labels=labels)
            assert actual.identifiers == expected.identifiers
            assert actual.labels == expected.labels
            assert actual.grid_size == expected.grid_size == grid.node_count


class TestRunSchedule:
    def test_multi_phase_matches_sequential_dict_path(self):
        grid = ToroidalGrid.square(5)
        labels = _labels(grid)
        flood = FunctionRule(1, lambda view: min(view.values()))
        spread = FunctionRule(2, lambda view: sum(view.values()) % 5)
        seed_ledger = RoundLedger()
        expected = apply_rule(grid, labels, flood, ledger=seed_ledger, phase="flood")
        expected = apply_rule(grid, expected, flood, ledger=seed_ledger, phase="flood")
        expected = apply_rule(grid, expected, spread, ledger=seed_ledger, phase="spread")

        fast_ledger = RoundLedger()
        actual = run_schedule(
            grid,
            labels,
            [
                SchedulePhase(flood, name="flood", iterations=2),
                SchedulePhase(spread, name="spread"),
            ],
            ledger=fast_ledger,
        )
        assert actual.to_dict() == expected
        assert fast_ledger.total == seed_ledger.total
        assert fast_ledger.breakdown() == seed_ledger.breakdown()

    def test_until_phase(self):
        grid = ToroidalGrid.square(5)
        labels = _labels(grid)
        flood = FunctionRule(1, lambda view: min(view.values()))
        final = run_schedule(
            grid,
            labels,
            [
                SchedulePhase(
                    flood,
                    name="flood",
                    until=lambda current: len(set(current.values())) == 1,
                    max_iterations=20,
                )
            ],
        )
        assert set(final.values()) == {min(labels.values())}

    def test_until_requires_explicit_budget(self):
        grid = ToroidalGrid.square(4)
        labels = {node: 0 for node in grid.nodes()}
        rule = FunctionRule(1, lambda view: view[(0, 0)])
        with pytest.raises(SimulationError, match="max_iterations"):
            run_schedule(
                grid, labels, [SchedulePhase(rule, until=lambda c: True)]
            )

    def test_until_budget_enforced(self):
        grid = ToroidalGrid.square(4)
        labels = {node: 0 for node in grid.nodes()}
        grow = FunctionRule(1, lambda view: view[(0, 0)] + 1)
        with pytest.raises(SimulationError):
            run_schedule(
                grid,
                labels,
                [SchedulePhase(grow, until=lambda c: False, max_iterations=2)],
            )


class TestAlgorithmEquivalence:
    """The migrated algorithm modules still match the seed computations."""

    def test_three_colour_rows_matches_seed_path(self):
        grid = ToroidalGrid((4, 6))
        ids = random_identifiers(grid, seed=11)
        for axis in range(grid.dimension):
            expected = {}
            expected_rounds = 0
            for row in grid.rows(axis):
                result = colour_directed_cycle([ids[node] for node in row])
                for node, colour in zip(row, result.colours):
                    expected[node] = colour
                expected_rounds = max(expected_rounds, result.rounds)
            colouring, rounds = three_colour_rows(grid, ids, axis)
            assert colouring == expected
            assert rounds == expected_rounds

    def test_apply_anchor_rule_matches_window_around(self):
        grid = ToroidalGrid.square(6)
        ids = random_identifiers(grid, seed=4)
        anchors = compute_anchors(grid, ids, 2)
        rule = FunctionAnchorRule(3, 3, lambda window: window.count(1))
        indicator = anchors.indicator(grid)
        expected = {
            node: rule.output(
                window_around(grid, indicator, node, rule.width, rule.height)
            )
            for node in grid.nodes()
        }
        assert apply_anchor_rule(grid, anchors, rule) == expected

    def test_apply_anchor_rule_rejects_non_2d_grids(self):
        grid = ToroidalGrid((5, 5, 5))
        ids = random_identifiers(grid, seed=1)
        anchors = compute_anchors(grid, ids, 2)
        rule = FunctionAnchorRule(3, 3, lambda window: window.count(1))
        with pytest.raises(ValueError, match="two-dimensional"):
            apply_anchor_rule(grid, anchors, rule)

    def test_border_counts_match_seed_path(self):
        # The table-driven border counting of the 4-colouring construction
        # must agree with the seed per-offset shift loop, including on
        # radii large enough that shell offsets wrap into antipodal ties.
        from repro.colouring.vertex4 import _border_counts
        from repro.grid.geometry import ball_offsets
        from repro.utils.math import toroidal_distance

        grid = ToroidalGrid((8, 10))
        radii = {(0, 0): 2, (4, 5): 3, (7, 9): 2, (2, 7): 4}
        expected = {node: 0 for node in grid.nodes()}
        for anchor, radius in radii.items():
            for offset in ball_offsets(grid.dimension, radius, "linf"):
                if max(abs(component) for component in offset) != radius:
                    continue
                node = grid.shift(anchor, offset)
                for axis in range(grid.dimension):
                    if toroidal_distance(node[axis], anchor[axis], grid.sides[axis]) == radius:
                        expected[node] += 1
        assert _border_counts(grid, radii) == expected

    def test_compute_anchors_matches_seed_adjacency_path(self):
        # The indexed power adjacency must drive the MIS pipeline to exactly
        # the anchors the seed PowerGraph.adjacency() path produced.
        grid = ToroidalGrid.square(6)
        ids = random_identifiers(grid, seed=8)
        for k, norm in [(2, "l1"), (2, "linf")]:
            power = PowerGraph(grid, k, norm)
            initial = {node: ids[node] for node in grid.nodes()}
            seed_mis = compute_mis(
                power.adjacency(), initial, max_degree=power.max_degree()
            )
            anchors = compute_anchors(grid, ids, k, norm=norm)
            assert anchors.members == seed_mis.members
            assert anchors.rounds == seed_mis.rounds * power.simulation_overhead()

    def test_compute_anchors_is_maximal_independent(self):
        # compute_anchors now builds its adjacency on the indexed path;
        # assert the MIS contract directly against the grid geometry.
        grid = ToroidalGrid.square(6)
        ids = random_identifiers(grid, seed=8)
        for k, norm in [(2, "l1"), (2, "linf")]:
            anchors = compute_anchors(grid, ids, k, norm=norm)
            distance = grid.l1_distance if norm == "l1" else grid.linf_distance
            members = sorted(anchors.members)
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    assert distance(u, v) > k
            for node in grid.nodes():
                assert any(distance(node, member) <= k for member in anchors.members)
