"""Tests for the X-orientation problems (Section 11)."""

import pytest

from repro.core.complexity import ComplexityClass
from repro.core.verifier import verify_node_labelling
from repro.errors import SynthesisError, UnsolvableInstanceError
from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.orientation.algorithms import (
    flip_orientation_labelling,
    in_degrees_from_edge_directions,
    solve_x_orientation_globally,
    synthesise_x_orientation_algorithm,
    trivial_orientation_labelling,
)
from repro.orientation.classify import (
    classify_x_orientation,
    counting_obstruction,
    orientation_classification_table,
)
from repro.orientation.problems import (
    ORIENTATION_ALPHABET,
    in_degree_of_label,
    in_degrees_from_labels,
    orientation_labels_to_edge_directions,
    x_orientation_problem,
)


class TestProblemEncoding:
    def test_alphabet_and_in_degrees(self):
        assert len(ORIENTATION_ALPHABET) == 16
        assert in_degree_of_label((1, 1, 1, 1)) == 4
        assert in_degree_of_label((0, 0, 0, 0)) == 0

    def test_problem_name_and_predicate(self):
        problem = x_orientation_problem({1, 3, 4})
        assert problem.name == "{1,3,4}-orientation"
        assert problem.node_ok((1, 0, 0, 0))
        assert not problem.node_ok((1, 1, 0, 0))

    def test_invalid_x_sets(self):
        with pytest.raises(Exception):
            x_orientation_problem(set())
        with pytest.raises(Exception):
            x_orientation_problem({5})

    def test_trivial_labelling_is_a_valid_2_orientation(self):
        grid = ToroidalGrid.square(6)
        labels = trivial_orientation_labelling(grid)
        problem = x_orientation_problem({2})
        assert verify_node_labelling(grid, problem, labels).valid
        degrees = in_degrees_from_labels(grid, labels)
        assert set(degrees.values()) == {2}

    def test_labels_to_edge_directions(self):
        grid = ToroidalGrid.square(5)
        labels = trivial_orientation_labelling(grid)
        directions = orientation_labels_to_edge_directions(grid, labels)
        assert set(directions.values()) == {1}  # the input orientation
        # Corrupt one node so the shared-edge consistency breaks.
        labels[(0, 0)] = (1, 1, 1, 1)
        with pytest.raises(ValueError):
            orientation_labels_to_edge_directions(grid, labels)

    def test_flip_maps_134_to_013(self):
        grid = ToroidalGrid.square(6)
        labels = trivial_orientation_labelling(grid)
        flipped = flip_orientation_labelling(labels)
        degrees = in_degrees_from_labels(grid, flipped)
        assert set(degrees.values()) == {2}  # flipping a 2-orientation stays a 2-orientation
        assert flipped[(0, 0)] == (1, 1, 0, 0)


class TestClassification:
    def test_theorem_22_table(self):
        table = orientation_classification_table()
        assert len(table) == 31
        classified = dict(table)
        assert classified[(2,)].complexity is ComplexityClass.CONSTANT
        assert classified[(0, 1, 2, 3, 4)].complexity is ComplexityClass.CONSTANT
        assert classified[(1, 3, 4)].complexity is ComplexityClass.LOG_STAR
        assert classified[(0, 1, 3)].complexity is ComplexityClass.LOG_STAR
        assert classified[(0, 1, 3, 4)].complexity is ComplexityClass.LOG_STAR
        assert classified[(1, 3)].complexity is ComplexityClass.GLOBAL
        assert classified[(0, 3, 4)].complexity is ComplexityClass.GLOBAL
        assert classified[(0, 4)].complexity is ComplexityClass.GLOBAL
        assert classified[(0,)].complexity is ComplexityClass.GLOBAL

    def test_every_set_with_2_is_constant(self):
        for values, result in orientation_classification_table():
            if 2 in values:
                assert result.complexity is ComplexityClass.CONSTANT

    def test_counting_obstructions(self):
        # Lemma 24: {1,3}-orientations cannot exist when n is odd.
        assert counting_obstruction({1, 3}, 5) is not None
        assert counting_obstruction({1, 3}, 6) is None
        # Σ in-degrees must equal 2 n², which {0} or {4} alone cannot reach.
        assert counting_obstruction({0}, 4) is not None
        assert counting_obstruction({4}, 4) is not None
        assert counting_obstruction({0, 4}, 6) is None
        with pytest.raises(ValueError):
            counting_obstruction(set(), 5)


class TestSynthesisedAlgorithms:
    def test_134_orientation_end_to_end(self):
        algorithm = synthesise_x_orientation_algorithm({1, 3, 4})
        problem = x_orientation_problem({1, 3, 4})
        for n, seed in [(9, 1), (13, 4)]:
            grid = ToroidalGrid.square(n)
            identifiers = random_identifiers(grid, seed=seed)
            result = algorithm.run(grid, identifiers)
            assert verify_node_labelling(grid, problem, result.node_labels).valid
            degrees = set(in_degrees_from_labels(grid, result.node_labels).values())
            assert degrees <= {1, 3, 4}

    def test_013_orientation_via_flipping(self):
        algorithm = synthesise_x_orientation_algorithm({1, 3, 4})
        grid = ToroidalGrid.square(10)
        identifiers = random_identifiers(grid, seed=3)
        result = algorithm.run(grid, identifiers)
        flipped = flip_orientation_labelling(result.node_labels)
        problem = x_orientation_problem({0, 1, 3})
        assert verify_node_labelling(grid, problem, flipped).valid

    def test_global_problem_synthesis_fails(self):
        with pytest.raises(SynthesisError):
            synthesise_x_orientation_algorithm({0, 4}, max_k=1)


class TestGlobalSolver:
    def test_034_orientation_solved_globally(self):
        grid = ToroidalGrid.square(6)
        directions, result = solve_x_orientation_globally(grid, {0, 3, 4})
        degrees = in_degrees_from_edge_directions(grid, directions)
        assert set(degrees.values()) <= {0, 3, 4}
        assert result.rounds == 6  # the diameter: gather-everything cost

    def test_lemma_24_no_13_orientation_on_odd_torus(self):
        with pytest.raises(UnsolvableInstanceError):
            solve_x_orientation_globally(ToroidalGrid.square(5), {1, 3})

    def test_13_orientation_exists_on_even_torus(self):
        grid = ToroidalGrid.square(4)
        directions, _result = solve_x_orientation_globally(grid, {1, 3})
        degrees = in_degrees_from_edge_directions(grid, directions)
        assert set(degrees.values()) <= {1, 3}

    def test_04_orientation_even_torus(self):
        grid = ToroidalGrid.square(4)
        directions, _result = solve_x_orientation_globally(grid, {0, 4})
        degrees = in_degrees_from_edge_directions(grid, directions)
        assert set(degrees.values()) <= {0, 4}
