"""Tests for the Section 6 construction: Turing machines and ``L_M``."""

import pytest

from repro.errors import UnsolvableInstanceError
from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.undecidability.lm_problem import (
    LMLabel,
    TYPE_DIRECTION,
    TYPES,
    check_lm_labelling,
    lm_problem_description,
)
from repro.undecidability.lm_solver import solve_lm_globally, solve_lm_locally
from repro.undecidability.turing import (
    BLANK,
    busy_machine,
    halting_machine,
    non_halting_machine,
)


class TestTuringMachines:
    def test_halting_machine_runs_and_halts(self):
        machine = halting_machine()
        table = machine.run(20)
        assert table.halted
        assert table.steps == 3
        assert table.rows[0].state == "start"
        assert table.rows[0].tape[0] == BLANK
        assert table.rows[-1].state == "halt"
        assert machine.halts_within(20) == 3

    def test_busy_machine(self):
        machine = busy_machine()
        table = machine.run(30)
        assert table.halted
        assert table.steps == 7

    def test_non_halting_machine(self):
        machine = non_halting_machine()
        table = machine.run(50)
        assert not table.halted
        assert machine.halts_within(50) is None
        # The machine keeps writing 'r' and moving right.
        assert table.rows[-1].tape[:3] == ("r", "r", "r")

    def test_execution_table_rows_are_consistent(self):
        machine = halting_machine()
        table = machine.run(20)
        for before, after in zip(table.rows, table.rows[1:]):
            # Exactly the cell under the head may change between rows.
            changed = [
                index
                for index, (a, b) in enumerate(zip(before.tape, after.tape))
                if a != b
            ]
            assert all(index == before.head for index in changed)

    def test_problem_description(self):
        assert "halts" in lm_problem_description(halting_machine())


class TestLMTypes:
    def test_type_tables_are_consistent(self):
        assert set(TYPE_DIRECTION) == set(TYPES)
        assert TYPE_DIRECTION["A"] == (0, 0)
        assert TYPE_DIRECTION["NE"] == (1, 1)


@pytest.fixture(scope="module")
def lm_instance():
    machine = halting_machine()
    grid = ToroidalGrid.square(36)
    identifiers = random_identifiers(grid, seed=4)
    labels, result = solve_lm_locally(grid, identifiers, machine)
    return machine, grid, identifiers, labels, result


class TestLMSolver:
    def test_local_solution_passes_the_checker(self, lm_instance):
        machine, grid, _identifiers, labels, result = lm_instance
        assert check_lm_labelling(grid, machine, labels) == []
        assert result.metadata["branch"] == "P2"
        assert result.metadata["anchor_count"] >= 1
        assert result.rounds > 0

    def test_global_fallback_passes_the_checker(self, lm_instance):
        machine, grid, _identifiers, _labels, _result = lm_instance
        labels, result = solve_lm_globally(grid, machine)
        assert check_lm_labelling(grid, machine, labels) == []
        assert result.metadata["branch"] == "P1"
        assert result.rounds == sum(side // 2 for side in grid.sides)

    def test_non_halting_machine_cannot_use_the_anchored_branch(self):
        grid = ToroidalGrid.square(36)
        identifiers = random_identifiers(grid, seed=4)
        with pytest.raises(UnsolvableInstanceError):
            solve_lm_locally(grid, identifiers, non_halting_machine(), max_steps=40)

    def test_grid_too_small_for_anchor_spacing(self):
        grid = ToroidalGrid.square(16)
        identifiers = random_identifiers(grid, seed=4)
        with pytest.raises(UnsolvableInstanceError):
            solve_lm_locally(grid, identifiers, halting_machine())


class TestLMCheckerFailureInjection:
    def test_mixed_branches_rejected(self, lm_instance):
        machine, grid, _identifiers, labels, _result = lm_instance
        corrupted = dict(labels)
        corrupted[(0, 0)] = LMLabel(branch="P1", colour=1, machine=machine.name)
        assert check_lm_labelling(grid, machine, corrupted)

    def test_truncated_execution_table_rejected(self, lm_instance):
        machine, grid, _identifiers, labels, _result = lm_instance
        corrupted = dict(labels)
        anchor = next(node for node, label in labels.items() if label.node_type == "A")
        above = grid.shift(anchor, (0, 1))
        original = corrupted[above]
        corrupted[above] = LMLabel(
            branch="P2",
            colour=original.colour,
            node_type=original.node_type,
            machine=original.machine,
            cell=None,
        )
        problems = check_lm_labelling(grid, machine, corrupted)
        assert any("missing execution-table payload" in problem for problem in problems)

    def test_wrong_table_contents_rejected(self, lm_instance):
        machine, grid, _identifiers, labels, _result = lm_instance
        corrupted = dict(labels)
        anchor = next(node for node, label in labels.items() if label.node_type == "A")
        target = grid.shift(anchor, (1, 1))
        original = corrupted[target]
        corrupted[target] = LMLabel(
            branch="P2",
            colour=original.colour,
            node_type=original.node_type,
            machine=original.machine,
            cell=("z", "bogus-state"),
        )
        problems = check_lm_labelling(grid, machine, corrupted)
        assert any("does not match the execution table" in problem for problem in problems)

    def test_broken_diagonal_two_colouring_rejected(self, lm_instance):
        machine, grid, _identifiers, labels, _result = lm_instance
        corrupted = dict(labels)
        # Find a node whose diagonal neighbour shares its type and flip its bit.
        for node, label in labels.items():
            if label.node_type in ("A",):
                continue
            ahead = grid.shift(node, TYPE_DIRECTION[label.node_type])
            if labels[ahead].node_type == label.node_type:
                corrupted[node] = LMLabel(
                    branch="P2",
                    colour=labels[ahead].colour,
                    node_type=label.node_type,
                    machine=label.machine,
                    cell=label.cell,
                )
                break
        problems = check_lm_labelling(grid, machine, corrupted)
        assert any("has the same bit" in problem for problem in problems)

    def test_foreign_machine_rejected(self, lm_instance):
        machine, grid, _identifiers, labels, _result = lm_instance
        corrupted = dict(labels)
        node = next(iter(corrupted))
        original = corrupted[node]
        corrupted[node] = LMLabel(
            branch="P2",
            colour=original.colour,
            node_type=original.node_type,
            machine="some-other-machine",
            cell=original.cell,
        )
        problems = check_lm_labelling(grid, machine, corrupted)
        assert any("foreign machine" in problem for problem in problems)

    def test_improper_p1_colouring_rejected(self):
        machine = halting_machine()
        grid = ToroidalGrid.square(6)
        labels = {node: LMLabel(branch="P1", colour=1, machine=machine.name) for node in grid.nodes()}
        problems = check_lm_labelling(grid, machine, labels)
        assert problems
