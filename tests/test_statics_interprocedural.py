"""Tests for the interprocedural purity analysis (PR 9's tentpole).

The helpers and rules below live at module level on purpose: the prover
resolves call sites against real function objects via ``__globals__``
(see :mod:`repro.statics.callgraph`), so the call graph under test must
exist in an importable module, exactly as rule code does in the repo.
"""

import pytest
from textwrap import dedent as _foreign_dedent  # noqa: F401 - resolution target

from repro.local_model import rules as catalogue
from repro.local_model.algorithm import FunctionRule, LocalRule
from repro.statics.callgraph import (
    MAX_CALL_DEPTH,
    resolve_class_method,
    resolve_global,
    resolve_module_function,
)
from repro.statics.purity import Verdict, analyse_function, analyse_rule


@pytest.fixture(autouse=True)
def _fresh_caches():
    from repro.statics.purity import clear_analysis_cache

    clear_analysis_cache()
    yield
    clear_analysis_cache()


# --------------------------------------------------------------------------
# A module-level call graph for the matrix
# --------------------------------------------------------------------------

_SINK = []


def _pure_leaf(view):
    return min(view.values())


def _pure_middle(view):
    return _pure_leaf(view) + 1


def _impure_leaf(view):
    _SINK.append(len(view))
    return 0


def _calls_impure(view):
    return _impure_leaf(view)


def _undecided_leaf(view):
    pick = lambda values: min(values)  # noqa: E731 - undecidable on purpose
    return pick(view.values())


def _calls_undecided(view):
    return _undecided_leaf(view)


def _recursive(view, n=3):
    if n <= 0:
        return 0
    return _recursive(view, n - 1)


def _mutual_a(view):
    return _mutual_b(view)


def _mutual_b(view):
    return _mutual_a(view)


# A static helper chain: _chain_N calls _chain_{N-1} down to _chain_0.
# Entering at _chain_7 keeps every judged call under MAX_CALL_DEPTH (= 8);
# entering at _chain_10 pushes the walk past the bound.


def _chain_0(view):
    return min(view.values())


def _chain_1(view):
    return _chain_0(view)


def _chain_2(view):
    return _chain_1(view)


def _chain_3(view):
    return _chain_2(view)


def _chain_4(view):
    return _chain_3(view)


def _chain_5(view):
    return _chain_4(view)


def _chain_6(view):
    return _chain_5(view)


def _chain_7(view):
    return _chain_6(view)


def _chain_8(view):
    return _chain_7(view)


def _chain_9(view):
    return _chain_8(view)


def _chain_10(view):
    return _chain_9(view)


class HelperRule(LocalRule):
    radius = 1

    def update(self, view):
        return _pure_middle(view)


class ImpureHelperRule(LocalRule):
    radius = 1

    def update(self, view):
        return _calls_impure(view)


class UndecidedHelperRule(LocalRule):
    radius = 1

    def update(self, view):
        return _calls_undecided(view)


class MethodHelperRule(LocalRule):
    radius = 1

    def _smallest(self, view):
        return min(view.values())

    def update(self, view):
        return self._smallest(view)


class ImpureMethodRule(LocalRule):
    radius = 1

    def _remember(self, view):
        self.seen = len(view)
        return 0

    def update(self, view):
        return self._remember(view)


class ModuleAttributeRule(LocalRule):
    radius = 1

    def update(self, view):
        return catalogue._min_label(view)


# --------------------------------------------------------------------------
# Resolution
# --------------------------------------------------------------------------


class TestResolution:
    def test_bare_name_resolves_same_module_helpers(self):
        assert resolve_global(_pure_middle, "_pure_leaf") is _pure_leaf

    def test_bare_name_rejects_foreign_packages(self):
        # ``_foreign_dedent`` is a real module-level binding of a pure
        # Python stdlib function; the same-package gate must refuse it.
        assert "_foreign_dedent" in _pure_middle.__globals__
        assert resolve_global(_pure_middle, "_foreign_dedent") is None

    def test_repro_helpers_resolve_from_test_modules(self):
        def caller(view):
            return catalogue._min_label(view)

        assert (
            resolve_module_function(caller, "catalogue", "_min_label")
            is catalogue._min_label
        )

    def test_class_methods_resolve_against_the_owner(self):
        resolved = resolve_class_method(MethodHelperRule, "_smallest")
        assert resolved is MethodHelperRule.__dict__["_smallest"]

    def test_instance_attribute_callables_do_not_resolve(self):
        # FunctionRule keeps its wrapped callable in the instance __dict__,
        # invisible to class-level resolution.
        assert resolve_class_method(FunctionRule, "_function") is None


# --------------------------------------------------------------------------
# The interprocedural verdict matrix
# --------------------------------------------------------------------------


class TestInterproceduralVerdicts:
    def test_pure_helper_chain_is_proven_safe(self):
        analysis = analyse_rule(HelperRule())
        assert analysis.verdict is Verdict.PROVEN_SAFE

    def test_every_catalogue_rule_is_proven_safe(self):
        # The acceptance criterion of PR 9: real in-repo rules that were
        # UNKNOWN intraprocedurally become PROVEN_SAFE through summaries.
        for rule_class in catalogue.CATALOGUE:
            analysis = analyse_rule(rule_class())
            assert analysis.verdict is Verdict.PROVEN_SAFE, (
                rule_class.__name__,
                analysis.describe(),
            )

    def test_catalogue_rules_were_unknown_intraprocedurally(self):
        for rule_class in catalogue.CATALOGUE:
            analysis = analyse_rule(rule_class(), interprocedural=False)
            assert analysis.verdict is Verdict.UNKNOWN, rule_class.__name__
            assert any("unanalysed" in reason for reason in analysis.unknown)

    def test_impure_helper_propagates_proven_unsafe(self):
        analysis = analyse_rule(ImpureHelperRule())
        assert analysis.verdict is Verdict.PROVEN_UNSAFE
        assert any("itself impure" in reason for reason in analysis.unsafe)

    def test_undecided_helper_propagates_unknown(self):
        analysis = analyse_rule(UndecidedHelperRule())
        assert analysis.verdict is Verdict.UNKNOWN
        assert any("itself undecided" in reason for reason in analysis.unknown)

    def test_pure_self_method_is_proven_safe(self):
        analysis = analyse_rule(MethodHelperRule())
        assert analysis.verdict is Verdict.PROVEN_SAFE

    def test_self_mutating_method_is_proven_unsafe(self):
        analysis = analyse_rule(ImpureMethodRule())
        assert analysis.verdict is Verdict.PROVEN_UNSAFE

    def test_module_attribute_helpers_resolve(self):
        analysis = analyse_rule(ModuleAttributeRule())
        assert analysis.verdict is Verdict.PROVEN_SAFE

    def test_function_rule_trampoline_stays_unknown(self):
        rule = FunctionRule(1, lambda view: min(view.values()))
        assert analyse_rule(rule).verdict is Verdict.UNKNOWN


class TestTermination:
    def test_direct_recursion_bottoms_at_unknown(self):
        analysis = analyse_function(_recursive)
        assert analysis.verdict is Verdict.UNKNOWN
        assert any("recursively" in reason for reason in analysis.unknown)

    def test_mutual_recursion_bottoms_at_unknown(self):
        analysis = analyse_function(_mutual_a)
        assert analysis.verdict is Verdict.UNKNOWN
        assert any("recursively" in reason for reason in analysis.unknown)

    def test_chains_below_the_depth_bound_prove_safe(self):
        assert analyse_function(_chain_7).verdict is Verdict.PROVEN_SAFE

    def test_chains_beyond_the_depth_bound_degrade(self):
        analysis = analyse_function(_chain_10)
        assert analysis.verdict is Verdict.UNKNOWN
        assert any("depth bound" in reason for reason in analysis.unknown)

    def test_summaries_are_memoised(self):
        from repro.statics.purity import _SUMMARY_CACHE

        analyse_rule(HelperRule())
        cached = {key[0].co_name for key in _SUMMARY_CACHE}
        assert "_pure_middle" in cached and "_pure_leaf" in cached

    def test_truncated_summaries_are_not_memoised(self):
        from repro.statics.purity import _SUMMARY_CACHE

        analyse_function(_mutual_a)
        cached = {key[0].co_name for key in _SUMMARY_CACHE}
        assert "_mutual_a" not in cached and "_mutual_b" not in cached


# --------------------------------------------------------------------------
# Degradation edge cases (satellite: generators, async, nested, walrus)
# --------------------------------------------------------------------------


class GeneratorRule(LocalRule):
    radius = 1

    def update(self, view):
        def emit():
            yield min(view.values())

        return next(emit())


class YieldingHelperRule(LocalRule):
    radius = 1

    def update(self, view):
        return _generator_helper(view)


def _generator_helper(view):
    yield min(view.values())


class AsyncHelperRule(LocalRule):
    radius = 1

    def update(self, view):
        return _async_helper(view)


async def _async_helper(view):
    return min(view.values())


class NestedDefRule(LocalRule):
    radius = 1

    def update(self, view):
        def pick(values):
            return min(values)

        return pick(view.values())


class LambdaRule(LocalRule):
    radius = 1

    def update(self, view):
        pick = lambda values: min(values)  # noqa: E731
        return pick(view.values())


class WalrusAliasRule(LocalRule):
    radius = 1

    def update(self, view):
        (bucket := []).append(0)
        if (count := len(bucket)) > 0:
            bucket.append(count)
        return len(bucket)


class TestDegradationEdgeCases:
    @pytest.mark.parametrize(
        ("rule_class", "fragment"),
        [
            (YieldingHelperRule, "suspends execution"),
            (AsyncHelperRule, "async function"),
            (GeneratorRule, "nested function or lambda"),
            (NestedDefRule, "nested function or lambda"),
            (LambdaRule, "nested function or lambda"),
        ],
        ids=["generator-helper", "async-helper", "nested-generator", "nested-def", "lambda"],
    )
    def test_degrades_to_unknown(self, rule_class, fragment):
        analysis = analyse_rule(rule_class())
        assert analysis.verdict is Verdict.UNKNOWN, analysis.describe()
        assert any(fragment in reason for reason in analysis.unknown), (
            analysis.describe()
        )

    def test_walrus_targets_are_never_fresh(self):
        analysis = analyse_rule(WalrusAliasRule())
        assert analysis.verdict is Verdict.UNKNOWN
        assert any("walrus" in r or "alias" in r for r in analysis.unknown), (
            analysis.describe()
        )
