"""Tests for the synthesis caches keyed by ``(problem, k, window)``.

Tile enumerations, tile graphs and successful rule tables are pure
functions of their parameters; these tests pin that the caches return
shared/equal artefacts, that handed-out outcomes are isolated copies, and
that sweeps avoid re-solving on cache hits.
"""

import time

from repro.core.catalog import vertex_colouring_problem
from repro.orientation.problems import x_orientation_problem
from repro.synthesis.synthesiser import (
    clear_synthesis_cache,
    synthesise,
    synthesise_with_budget,
)
from repro.synthesis.tile_graph import build_tile_graph
from repro.synthesis.tiles import enumerate_tiles


class TestTileCaches:
    def test_enumerate_tiles_returns_shared_tuple(self):
        first = enumerate_tiles(3, 2, 1)
        second = enumerate_tiles(3, 2, 1)
        assert first is second  # cached, immutable
        assert len(first) == 16

    def test_build_tile_graph_is_cached_per_parameters(self):
        first = build_tile_graph(2, 3, 1)
        second = build_tile_graph(2, 3, 1)
        assert first is second
        other = build_tile_graph(3, 2, 1)
        assert other is not first


class TestClearSynthesisCache:
    def test_clear_drops_every_layer(self):
        # Regression: clear_synthesis_cache() used to clear only the
        # outcome layer, leaking tile enumerations and tile graphs across
        # tests and sweeps — a "cold" run after a clear still reused them.
        tiles_before = enumerate_tiles(3, 2, 1)
        graph_before = build_tile_graph(3, 2, 1)
        clear_synthesis_cache()
        tiles_after = enumerate_tiles(3, 2, 1)
        graph_after = build_tile_graph(3, 2, 1)
        # Re-enumerated (fresh objects), yet byte-identical content.
        assert tiles_after is not tiles_before
        assert graph_after is not graph_before
        assert tiles_after == tiles_before
        assert graph_after.tiles == graph_before.tiles
        assert graph_after.horizontal_pairs == graph_before.horizontal_pairs
        assert graph_after.vertical_pairs == graph_before.vertical_pairs

    def test_clear_drops_cached_outcomes(self):
        from repro.synthesis.synthesiser import _OUTCOME_CACHE
        from repro.synthesis.tile_graph import _GRAPH_CACHE

        clear_synthesis_cache()
        problem = x_orientation_problem({1, 3, 4})
        search = synthesise_with_budget(problem, max_k=1)
        assert search.succeeded
        best = search.best
        hit = synthesise(problem, best.k, best.width, best.height)
        assert _OUTCOME_CACHE and _GRAPH_CACHE
        assert enumerate_tiles.cache_info().currsize > 0
        clear_synthesis_cache()
        assert not _OUTCOME_CACHE and not _GRAPH_CACHE
        assert enumerate_tiles.cache_info().currsize == 0
        # A cleared cache re-solves from scratch to an identical table.
        fresh = synthesise(problem, best.k, best.width, best.height)
        assert fresh.stats.get("nodes_explored", 0) > 0
        assert fresh.table == hit.table


class TestOutcomeCache:
    def test_hit_is_equal_but_isolated(self):
        clear_synthesis_cache()
        problem = x_orientation_problem({1, 3, 4})
        search = synthesise_with_budget(problem, max_k=1)
        assert search.succeeded
        best = search.best
        fresh = synthesise(problem, best.k, best.width, best.height)
        assert fresh.success
        hit = synthesise(problem, best.k, best.width, best.height)
        assert hit is not fresh and hit.table is not fresh.table
        assert hit.table == fresh.table
        assert hit.stats == fresh.stats and hit.engine == fresh.engine
        # Mutating a handed-out table must not poison later hits.
        hit.table.clear()
        again = synthesise(problem, best.k, best.width, best.height)
        assert again.table == fresh.table

    def test_failures_are_not_cached(self):
        clear_synthesis_cache()
        problem = vertex_colouring_problem(3)
        first = synthesise(problem, k=1, width=3, height=2)
        assert not first.success
        # A second call re-solves (and reports fresh honest statistics)
        # instead of replaying a failure that a larger budget might avoid.
        second = synthesise(problem, k=1, width=3, height=2)
        assert not second.success
        assert second.stats["nodes_explored"] > 0

    def test_explicit_graph_and_use_cache_flag_bypass_cache(self):
        clear_synthesis_cache()
        problem = x_orientation_problem({0, 1, 3})
        search = synthesise_with_budget(problem, max_k=1)
        assert search.succeeded
        best = search.best
        graph = build_tile_graph(best.width, best.height, best.k)
        via_graph = synthesise(
            problem, best.k, best.width, best.height, graph=graph
        )
        disabled = synthesise(
            problem, best.k, best.width, best.height, use_cache=False
        )
        assert via_graph.success and disabled.success
        assert via_graph.table == disabled.table == best.table

    def test_sweep_reuses_cached_tables(self):
        clear_synthesis_cache()
        problem = x_orientation_problem({1, 3, 4})
        cold_start = time.perf_counter()
        cold = synthesise_with_budget(problem, max_k=1)
        cold_seconds = time.perf_counter() - cold_start
        assert cold.succeeded
        warm_start = time.perf_counter()
        warm = synthesise_with_budget(problem, max_k=1)
        warm_seconds = time.perf_counter() - warm_start
        assert warm.succeeded
        assert warm.best.table == cold.best.table
        assert warm.best.k == cold.best.k
        # The warm sweep re-solves nothing; allow generous slack for timer
        # noise while still catching an accidental full re-derivation.
        assert warm_seconds <= max(cold_seconds, 0.01)
