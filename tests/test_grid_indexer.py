"""Tests for the flat-index grid layer (:mod:`repro.grid.indexer`)."""

import pytest

from repro.grid.geometry import ball_offsets
from repro.grid.indexer import (
    GridIndexer,
    cyclic_power_pattern,
    cyclic_window_table,
)
from repro.grid.power import PowerGraph
from repro.grid.torus import ToroidalGrid


@pytest.fixture()
def grid():
    return ToroidalGrid((4, 5))


@pytest.fixture()
def indexer(grid):
    return GridIndexer(grid)


class TestIndexing:
    def test_round_trip(self, grid, indexer):
        for position, node in enumerate(grid.nodes()):
            assert indexer.index_of(node) == position
            assert indexer.node_at(position) == node
        assert indexer.node_count == grid.node_count

    def test_nodes_match_grid_order(self, grid, indexer):
        assert indexer.nodes == tuple(grid.nodes())

    def test_index_of_rejects_foreign_node(self, indexer):
        with pytest.raises(KeyError):
            indexer.index_of((9, 9))

    def test_for_grid_caches_per_grid(self, grid):
        assert GridIndexer.for_grid(grid) is GridIndexer.for_grid(ToroidalGrid((4, 5)))
        other = ToroidalGrid((5, 4))
        assert GridIndexer.for_grid(other) is not GridIndexer.for_grid(grid)

    def test_to_values_and_back(self, grid, indexer):
        labels = {node: sum(node) for node in grid.nodes()}
        values = indexer.to_values(labels)
        assert values == [sum(node) for node in grid.nodes()]
        assert indexer.to_mapping(values) == labels

    def test_to_values_names_missing_node(self, grid, indexer):
        labels = {node: 0 for node in grid.nodes()}
        del labels[(2, 3)]
        with pytest.raises(KeyError, match=r"\(2, 3\)"):
            indexer.to_values(labels)


class TestTables:
    @pytest.mark.parametrize("radius", [0, 1, 2])
    @pytest.mark.parametrize("norm", ["l1", "linf"])
    def test_ball_table_matches_shift(self, grid, indexer, radius, norm):
        offsets, table = indexer.ball_table(radius, norm)
        assert offsets == ball_offsets(grid.dimension, radius, norm)
        for node in grid.nodes():
            row = table[indexer.index_of(node)]
            for offset, target in zip(offsets, row):
                assert indexer.node_at(target) == grid.shift(node, offset)

    def test_ball_node_table_matches_grid_ball(self, grid, indexer):
        for radius, norm in [(1, "l1"), (2, "l1"), (1, "linf"), (2, "linf")]:
            node_table = indexer.ball_node_table(radius, norm)
            for node in grid.nodes():
                row = node_table[indexer.index_of(node)]
                assert [indexer.node_at(j) for j in row] == grid.ball(node, radius, norm)

    def test_ball_node_table_deduplicates_wrapping_ball(self):
        small = ToroidalGrid.square(3)
        indexer = GridIndexer(small)
        node_table = indexer.ball_node_table(2, "l1")
        for row in node_table:
            assert len(row) == len(set(row)) == 9  # the whole torus, once each

    def test_offset_table_is_cached(self, indexer):
        offsets = ((1, 0), (0, 1))
        assert indexer.offset_table(offsets) is indexer.offset_table(offsets)

    def test_neighbour_table_matches_grid(self, grid, indexer):
        table = indexer.neighbour_table()
        for node in grid.nodes():
            row = table[indexer.index_of(node)]
            assert [indexer.node_at(j) for j in row] == grid.neighbour_nodes(node)

    def test_rows_match_grid_rows(self, grid, indexer):
        for axis in range(grid.dimension):
            decoded = [
                [indexer.node_at(j) for j in row] for row in indexer.rows(axis)
            ]
            assert decoded == [list(row) for row in grid.rows(axis)]


class TestRowNodeTable:
    def test_matches_grid_rows(self, grid, indexer):
        for axis in range(grid.dimension):
            assert [list(row) for row in indexer.row_node_table(axis)] == [
                list(row) for row in grid.rows(axis)
            ]

    def test_cached_per_axis(self, indexer):
        assert indexer.row_node_table(0) is indexer.row_node_table(0)


class TestBfsDistances:
    def test_single_source_matches_l1_distance(self, grid, indexer):
        source = (1, 2)
        distances = indexer.bfs_distances([source])
        for node in grid.nodes():
            assert distances[indexer.index_of(node)] == grid.l1_distance(node, source)

    def test_multi_source_takes_nearest(self, grid, indexer):
        sources = [(0, 0), (2, 3)]
        distances = indexer.bfs_distances(sources)
        for node in grid.nodes():
            expected = min(grid.l1_distance(node, source) for source in sources)
            assert distances[indexer.index_of(node)] == expected

    def test_empty_sources_rejected(self, indexer):
        with pytest.raises(ValueError):
            indexer.bfs_distances([])

    def test_foreign_source_rejected(self, indexer):
        with pytest.raises(KeyError):
            indexer.bfs_distances([(9, 9)])


class TestDisplacementShells:
    @pytest.mark.parametrize("radius", [0, 1, 2, 3])
    def test_shells_cover_ball_offsets_with_canonical_displacements(
        self, grid, indexer, radius
    ):
        offsets = ball_offsets(grid.dimension, radius, "l1")
        _, table = indexer.ball_table(radius, "l1")
        shells = indexer.displacement_shells(radius, "l1")
        seen_positions = []
        previous_distance = -1
        for distance, entries in shells:
            assert distance > previous_distance
            previous_distance = distance
            for position, displacement in entries:
                seen_positions.append(position)
                # The displacement is the grid's canonical displacement of
                # the reached node about any start node.
                node = (1, 2)
                target = indexer.node_at(table[indexer.index_of(node)][position])
                assert grid.displacement(node, target) == displacement
                assert sum(abs(c) for c in displacement) == distance
        assert sorted(seen_positions) == list(range(len(offsets)))

    def test_wrapping_offsets_get_short_displacements(self):
        # On a 3-torus an offset of magnitude 2 wraps to distance 1.
        indexer = GridIndexer(ToroidalGrid.square(3))
        shells = indexer.displacement_shells(2, "l1")
        assert max(distance for distance, _ in shells) <= 2
        distance_of = {
            position: distance
            for distance, entries in shells
            for position, _ in entries
        }
        offsets = ball_offsets(2, 2, "l1")
        assert distance_of[offsets.index((2, 0))] == 1  # wraps to (-1, 0)


class TestCyclicTables:
    def test_window_table_matches_modular_arithmetic(self):
        table = cyclic_window_table(7, 2)
        assert len(table) == 7
        for position in range(7):
            assert table[position] == tuple(
                (position + offset) % 7 for offset in range(-2, 3)
            )

    def test_window_table_on_minimal_cycle(self):
        # Length exactly 2r + 1: every window visits all positions.
        table = cyclic_window_table(5, 2)
        for row in table:
            assert sorted(row) == [0, 1, 2, 3, 4]

    def test_power_pattern_matches_row_power_adjacency(self):
        from repro.symmetry.ruling_sets import _row_power_adjacency

        for length, spacing in [(8, 2), (7, 3), (5, 4), (6, 7)]:
            row = [("r", index) for index in range(length)]
            expected = _row_power_adjacency(row, spacing)
            pattern = cyclic_power_pattern(length, spacing)
            for index, node in enumerate(row):
                assert [row[j] for j in pattern[index]] == expected[node]

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            cyclic_window_table(0, 1)
        with pytest.raises(ValueError):
            cyclic_window_table(5, -1)
        with pytest.raises(ValueError):
            cyclic_power_pattern(0, 1)
        with pytest.raises(ValueError):
            cyclic_power_pattern(5, -1)


class TestBallNodeTableCache:
    def test_cached_per_radius_and_norm(self, indexer):
        assert indexer.ball_node_table(2, "l1") is indexer.ball_node_table(2, "l1")
        assert indexer.ball_node_table(2, "l1") is not indexer.ball_node_table(2, "linf")


class TestPowerAdjacency:
    @pytest.mark.parametrize("sides", [(4, 5), (3, 3), (5, 5)])
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("norm", ["l1", "linf"])
    def test_matches_power_graph(self, sides, k, norm):
        grid = ToroidalGrid(sides)
        expected = PowerGraph(grid, k, norm).adjacency()
        assert GridIndexer.for_grid(grid).power_adjacency(k, norm) == expected

    def test_wrap_around_dedup(self):
        # On a 3x3 torus G^(2) is the complete graph: every list has the
        # eight other nodes exactly once despite many wrapping offsets.
        grid = ToroidalGrid.square(3)
        adjacency = GridIndexer.for_grid(grid).power_adjacency(2, "l1")
        for node, neighbours in adjacency.items():
            assert len(neighbours) == 8
            assert node not in neighbours
            assert len(set(neighbours)) == 8
