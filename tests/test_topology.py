"""Tests for the topology substrate (:mod:`repro.grid.topology`).

Covers the degenerate shapes the engine tiers must survive — single-node
graphs, window-sized directed cycles, star/path trees with hub-vs-leaf
ball widths, irregular-degree graphs — plus input validation
(:class:`InvalidProblemError` on malformed adjacency/parent vectors) and
the bounded shared instance cache that replaced ``GridIndexer._instances``.
"""

import pickle

import pytest

from repro.errors import InvalidProblemError
from repro.grid.indexer import GridIndexer
from repro.grid.topology import (
    DirectedCycleTopology,
    GraphTopology,
    TopologyCache,
    TreeTopology,
    apply_rule_dict,
    clear_topology_cache,
    random_bounded_degree_graph,
    random_regular_graph,
    topology_cache,
)
from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import FunctionRule


class TestSingleNodeGraph:
    def test_tables_have_shape_one_by_one(self):
        topology = GraphTopology([[]])
        for radius in (0, 1, 3):
            keys, table = topology.ball_table(radius)
            assert keys == (0,)
            assert table == ((0,),)
            assert topology.ball_node_table(radius) == ((0,),)

    def test_rule_application_sees_only_the_node(self):
        topology = GraphTopology([[]])
        rule = FunctionRule(2, lambda view: view[0] + 1)
        assert apply_rule_dict(topology, {0: 41}, rule) == {0: 42}


class TestDirectedCycles:
    def test_window_sized_cycle_rows_cover_the_whole_cycle(self):
        # length == 2r + 1: every window is a permutation of all nodes.
        radius = 2
        topology = DirectedCycleTopology(2 * radius + 1)
        keys, table = topology.ball_table(radius)
        assert keys == (0, 1, -1, 2, -2)
        for index, row in enumerate(table):
            assert sorted(row) == [0, 1, 2, 3, 4]
            assert row[0] == index

    def test_view_keys_are_signed_deltas(self):
        topology = DirectedCycleTopology(9)
        assert topology.view_keys(1) == (0, 1, -1)
        labels = {node: node for node in topology.nodes}
        rule = FunctionRule(1, lambda view: (view[-1], view[0], view[1]))
        out = apply_rule_dict(topology, labels, rule)
        assert out[0] == (8, 0, 1)
        assert out[4] == (3, 4, 5)

    def test_short_cycle_wraps_onto_repeated_nodes(self):
        topology = DirectedCycleTopology(3)
        _, table = topology.ball_table(2)
        # Deltas +2/-2 wrap onto the same nodes as -1/+1; keys stay distinct.
        assert table[0] == (0, 1, 2, 2, 1)

    def test_norms_coincide_and_share_tables(self):
        topology = DirectedCycleTopology(7)
        assert topology.ball_table(2, "l1") is topology.ball_table(2, "linf")

    def test_rejects_malformed_lengths(self):
        for length in (0, -3, 2.5, "8", True):
            with pytest.raises(InvalidProblemError):
                DirectedCycleTopology(length)

    def test_rejects_negative_radius_and_unknown_norm(self):
        topology = DirectedCycleTopology(5)
        with pytest.raises(ValueError):
            topology.ball_table(-1)
        with pytest.raises(ValueError):
            topology.ball_table(1, "l7")

    def test_shared_instances_and_pickle_round_trip(self):
        topology = DirectedCycleTopology.shared(11)
        assert DirectedCycleTopology.shared(11) is topology
        assert pickle.loads(pickle.dumps(topology)) is topology


class TestTrees:
    def test_star_hub_and_leaf_balls(self):
        star = TreeTopology.star(6)
        keys, table = star.ball_table(1)
        # The hub sees everything; the table width is the hub's ball size.
        assert keys == tuple(range(6))
        assert table[0] == (0, 1, 2, 3, 4, 5)
        # A leaf sees itself and the hub; the rest is self-padding.
        for leaf in range(1, 6):
            assert table[leaf] == (leaf, 0) + (leaf,) * 4
            assert star.ball_node_table(1)[leaf] == (leaf, 0)

    def test_path_endpoint_vs_interior_balls(self):
        path = TreeTopology.path(5)
        _, table = path.ball_table(1)
        assert table[2] == (2, 1, 3)
        assert table[0] == (0, 1, 0)  # endpoint: one neighbour + padding
        assert table[4] == (4, 3, 4)
        assert path.ball_node_table(1)[0] == (0, 1)

    def test_radius_zero_is_the_identity_ball(self):
        path = TreeTopology.path(4)
        keys, table = path.ball_table(0)
        assert keys == (0,)
        assert table == ((0,), (1,), (2,), (3,))
        _, getters = path.ball_getters(0)
        assert getters[2](["a", "b", "c", "d"]) == ("c",)

    def test_from_parents_rejects_malformed_vectors(self):
        with pytest.raises(InvalidProblemError):
            TreeTopology.from_parents([])  # no nodes
        with pytest.raises(InvalidProblemError):
            TreeTopology.from_parents([None, None, 0])  # two roots
        with pytest.raises(InvalidProblemError):
            TreeTopology.from_parents([0, 0])  # no root, node 0 its own parent
        with pytest.raises(InvalidProblemError):
            TreeTopology.from_parents([None, 5])  # parent out of range
        with pytest.raises(InvalidProblemError):
            TreeTopology.from_parents([None, "0"])  # non-integer parent

    def test_rejects_non_tree_adjacency(self):
        # Right edge count (3 = n-1) but a triangle plus an isolated node.
        with pytest.raises(InvalidProblemError, match="not connected"):
            TreeTopology([[1, 2], [0, 2], [0, 1], []])
        # A cycle: n edges, one too many.
        with pytest.raises(InvalidProblemError, match="edges"):
            TreeTopology([[1, 3], [0, 2], [1, 3], [2, 0]])

    def test_random_trees_are_cached_and_deterministic(self):
        tree = TreeTopology.random(15, 3)
        assert TreeTopology.random(15, 3) is tree
        assert tree.adjacency == TreeTopology.random(15, 3).adjacency
        assert tree.adjacency != TreeTopology.random(15, 4).adjacency


class TestGraphValidation:
    def test_rejects_malformed_adjacency(self):
        with pytest.raises(InvalidProblemError, match="at least one node"):
            GraphTopology([])
        with pytest.raises(InvalidProblemError, match="not a node index"):
            GraphTopology([[3], []])
        with pytest.raises(InvalidProblemError, match="self-loop"):
            GraphTopology([[0]])
        with pytest.raises(InvalidProblemError, match="more than once"):
            GraphTopology([[1, 1], [0, 0]])
        with pytest.raises(InvalidProblemError, match="not symmetric"):
            GraphTopology([[1], []])
        with pytest.raises(InvalidProblemError, match="not a node index"):
            GraphTopology([[True], [0]])

    def test_irregular_degrees_give_per_node_ball_sizes(self):
        # 0 is a hub of degree 3; 4 is a pendant leaf off node 3.
        graph = GraphTopology([[1, 2, 3], [0], [0], [0, 4], [3]])
        keys, table = graph.ball_table(1)
        assert len(keys) == 4  # the hub's ball: itself + 3 neighbours
        assert table[0] == (0, 1, 2, 3)
        assert table[4] == (4, 3, 4, 4)
        dedup = graph.ball_node_table(1)
        assert [len(row) for row in dedup] == [4, 2, 2, 3, 2]

    def test_padding_reads_the_nodes_own_label(self):
        graph = GraphTopology([[1, 2, 3], [0], [0], [0, 4], [3]])
        labels = {node: 10 + node for node in graph.nodes}
        rule = FunctionRule(1, lambda view: tuple(sorted(view.values())))
        out = apply_rule_dict(graph, labels, rule)
        # Leaf 4's slots beyond its real ball repeat its own label.
        assert out[4] == (13, 14, 14, 14)


class TestRandomFamilies:
    def test_regular_graphs_are_regular_and_deterministic(self):
        for count, degree, seed in [(12, 3, 0), (9, 4, 5), (16, 3, 99)]:
            graph = random_regular_graph(count, degree, seed)
            assert all(len(n) == degree for n in graph.adjacency)
            assert random_regular_graph(count, degree, seed) is graph

    def test_regular_graph_rejects_impossible_parameters(self):
        with pytest.raises(InvalidProblemError):
            random_regular_graph(5, 5, 0)  # degree >= count
        with pytest.raises(InvalidProblemError):
            random_regular_graph(5, 3, 0)  # odd count * degree
        with pytest.raises(InvalidProblemError):
            random_regular_graph(0, 0, 0)

    def test_bounded_degree_graphs_respect_the_cap(self):
        for seed in range(4):
            graph = random_bounded_degree_graph(20, 4, seed)
            degrees = [len(n) for n in graph.adjacency]
            assert max(degrees) <= 4
            # Connectivity: the full-radius ball from node 0 covers the graph.
            assert len(graph.ball_node_table(20)[0]) == 20

    def test_bounded_degree_rejects_an_unconnectable_cap(self):
        with pytest.raises(InvalidProblemError):
            random_bounded_degree_graph(3, 0, 0)
        with pytest.raises(InvalidProblemError):
            random_bounded_degree_graph(5, 1, 0)


class TestTopologyCache:
    def test_benchmark_style_sweeps_stay_bounded(self):
        cache = topology_cache()
        clear_topology_cache()
        try:
            for side in range(4, 4 + cache.maxsize + 40):
                GridIndexer.for_grid(ToroidalGrid((side, 4)))
                assert len(cache) <= cache.maxsize
            assert len(cache) == cache.maxsize
        finally:
            clear_topology_cache()

    def test_evicts_one_entry_at_a_time_in_lru_order(self):
        cache = TopologyCache(maxsize=2)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        cache.get_or_create("a", lambda: 1)  # refresh: b is now oldest
        cache.get_or_create("c", lambda: 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert len(cache) == 2

    def test_clear_forgets_instances(self):
        clear_topology_cache()
        grid = ToroidalGrid((4, 5))
        first = GridIndexer.for_grid(grid)
        assert GridIndexer.for_grid(grid) is first
        clear_topology_cache()
        assert GridIndexer.for_grid(grid) is not first
        clear_topology_cache()

    def test_shared_across_topology_families(self):
        clear_topology_cache()
        try:
            GridIndexer.for_grid(ToroidalGrid((4, 4)))
            DirectedCycleTopology.shared(6)
            TreeTopology.random(5, 0)
            random_regular_graph(6, 2, 0)
            random_bounded_degree_graph(6, 3, 0)
            assert len(topology_cache()) == 5
        finally:
            clear_topology_cache()

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            TopologyCache(maxsize=0)


class TestGraphPickling:
    def test_graphs_and_trees_round_trip(self):
        graph = GraphTopology([[1], [0, 2], [1]])
        clone = pickle.loads(pickle.dumps(graph))
        assert clone.adjacency == graph.adjacency
        tree = TreeTopology.path(4)
        clone = pickle.loads(pickle.dumps(tree))
        assert isinstance(clone, TreeTopology)
        assert clone.adjacency == tree.adjacency
