"""Shared randomized equivalence-test harness for engine migrations.

Every fast-path migration in this repository follows the same contract: the
``"indexed"``, ``"array"``, ``"parallel"`` and ``"shm"`` engines must produce
**byte-identical** outputs to the ``"dict"`` reference engine — same
values, same tie-breaks, same error messages — on randomized inputs.  PR 1 asserted this ad hoc per
module; this harness turns the pattern into shared infrastructure, and
:func:`assert_engines_agree` compares any number of engine tiers against
the reference in one call.

How to onboard the next migrated consumer
-----------------------------------------

1. Give the migrated entry point an ``engine`` parameter (``"indexed"``
   default, ``"dict"`` reference), or keep a ``*_reference`` twin of each
   migrated method.
2. In ``tests/test_equivalence_indexed.py`` add a test that

   * derives its RNG with :func:`derive_rng` from the ``equivalence_seed``
     fixture and a label unique to the test (so tests never share streams),
   * draws inputs with :func:`grid_corpus` / :func:`random_torus` (the
     corpus always covers square, non-square and odd-sided tori) or builds
     its own randomized instances from the RNG,
   * runs both engines through :func:`assert_equivalent`, passing a
     ``context`` string that includes the master seed and the drawn
     parameters.

3. That's it: :func:`assert_equivalent` compares the two outcomes as
   canonical bytes — results *and* raised exceptions — and a failure
   message starts with your context, so the failing seed can be replayed
   with ``pytest --equivalence-seed <seed>``.

Byte-identical means: the two outcomes have equal canonical serialisations
(:func:`canonical_bytes`), where dicts and sets are sorted into canonical
order first (their iteration order is an implementation detail, the
*content* is not).  An exception outcome is serialised as the exception
type plus its message, so both engines must fail identically too.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Callable, Iterator, Optional, Sequence, Tuple

from repro.grid.indexer import GridIndexer
from repro.grid.topology import (
    BaseTopology,
    DirectedCycleTopology,
    TreeTopology,
    apply_rule_dict,
    random_bounded_degree_graph,
    random_regular_graph,
)
from repro.grid.torus import ToroidalGrid


def _dict_reference(grid: Any, labels: Any, rule: Any) -> Callable[[], Any]:
    """The ``"dict"`` oracle for any substrate the engines accept.

    A torus (bare or indexed) replays through the coordinate-keyed
    simulator; a non-torus :class:`BaseTopology` replays through
    :func:`repro.grid.topology.apply_rule_dict` — both are per-node
    traversals sharing nothing with the engines' precomputed tables.
    """
    from repro.local_model.simulator import apply_rule

    if isinstance(grid, BaseTopology):
        return lambda: apply_rule_dict(grid, labels, rule)
    torus = grid.grid if isinstance(grid, GridIndexer) else grid
    return lambda: apply_rule(torus, labels, rule)


def rule_engine_factories(
    grid: Any,
    labels: Any,
    rule: Any,
    workers: Optional[int] = None,
    table_threshold: Optional[int] = None,
    include_shm: bool = False,
) -> "dict[str, Callable[[], Any]]":
    """Factories applying ``rule`` once on every engine tier.

    ``grid`` is any substrate the engines accept: a :class:`ToroidalGrid`,
    a :class:`GridIndexer`, or a non-torus topology (directed cycle, tree,
    bounded-degree graph).  Returns the ``{"dict": ..., "indexed": ...,
    "array": ..., "parallel": ...}`` mapping consumed by
    :func:`assert_engines_agree` — the standard four-tier comparison for
    plain rule application, extended to the five-tier comparison with
    ``include_shm=True`` (an ``"shm"`` factory running one persistent-pool
    round and shutting the pool down).  The ``"dict"`` reference is the
    coordinate-keyed simulator on tori and
    :func:`repro.grid.topology.apply_rule_dict` on the other families.
    ``workers`` is forwarded to the parallel and shm tiers (``None``
    resolves via ``REPRO_WORKERS`` / CPU count as in production);
    ``table_threshold`` is forwarded to the array-backed tiers (pass ``1``
    to pin small alphabets off the compiled lookup table, so the sharding
    tiers demonstrably shard instead of delegating).
    """
    from repro.local_model.engine import (
        DEFAULT_TABLE_THRESHOLD,
        ArrayEngine,
        IndexedEngine,
        ParallelEngine,
        ShmEngine,
    )

    threshold = (
        table_threshold if table_threshold is not None else DEFAULT_TABLE_THRESHOLD
    )
    factories = {
        "dict": _dict_reference(grid, labels, rule),
        "indexed": lambda: IndexedEngine(grid).apply_rule(labels, rule).to_dict(),
        "array": lambda: ArrayEngine(grid, table_threshold=threshold)
        .apply_rule(labels, rule)
        .to_dict(),
        "parallel": lambda: ParallelEngine(
            grid, workers=workers, table_threshold=threshold
        )
        .apply_rule(labels, rule)
        .to_dict(),
    }
    if include_shm:
        def run_shm():
            with ShmEngine(
                grid, workers=workers, table_threshold=threshold
            ) as engine:
                return engine.apply_rule(labels, rule).to_dict()

        factories["shm"] = run_shm
    return factories


def derive_rng(seed: int, label: str) -> random.Random:
    """A reproducible RNG derived from the master seed and a test label."""
    return random.Random(f"{seed}:{label}")


def random_torus(
    rng: random.Random,
    min_side: int = 4,
    max_side: int = 9,
    square: bool = False,
    force_odd: bool = False,
) -> ToroidalGrid:
    """Draw a random 2-dimensional torus.

    ``square`` forces equal sides; ``force_odd`` makes at least one side
    odd (regression surface for wrap-around/tie-break arithmetic).
    """
    def draw() -> int:
        return rng.randint(min_side, max_side)

    width = draw()
    if square:
        height = width
    else:
        height = draw()
    if force_odd and width % 2 == 0 and height % 2 == 0:
        side = max(min_side, min(max_side, width + 1))
        if side % 2 == 0:
            side -= 1
        width = side
    return ToroidalGrid((width, height))


def grid_corpus(
    rng: random.Random, min_side: int = 4, max_side: int = 9, extras: int = 2
) -> Iterator[ToroidalGrid]:
    """Yield a randomized torus corpus with guaranteed shape coverage.

    Always contains an even square, an odd square and a non-square torus
    with at least one odd side, followed by ``extras`` unconstrained draws.
    """
    even = rng.randrange(min_side + (min_side % 2), max_side + 1, 2)
    odd = rng.randrange(min_side + 1 - (min_side % 2), max_side + 1, 2)
    yield ToroidalGrid((even, even))
    yield ToroidalGrid((odd, odd))
    yield random_torus(rng, min_side, max_side, force_odd=True)
    for _ in range(extras):
        yield random_torus(rng, min_side, max_side)


def topology_cases(
    rng: random.Random,
    min_nodes: int = 8,
    max_nodes: int = 30,
    include_torus: bool = True,
) -> Iterator[Tuple[str, Any]]:
    """Yield named randomized substrates covering every topology family.

    Always produces one instance per family — torus (as an indexed grid,
    unless ``include_torus=False``), directed cycle, random recursive tree,
    random d-regular graph and random irregular bounded-degree graph — with
    sizes and seeds drawn from ``rng``, so every ``test_equivalence_*`` leg
    exercises the same family mix under its own derived stream and the
    master ``--equivalence-seed`` replays all of it.
    """
    if include_torus:
        yield "torus", GridIndexer.for_grid(random_torus(rng))
    yield "cycle", DirectedCycleTopology.shared(rng.randint(min_nodes, max_nodes))
    yield "tree", TreeTopology.random(
        rng.randint(min_nodes, max_nodes), rng.randrange(1 << 20)
    )
    count = rng.randint(min_nodes, max_nodes)
    degree = rng.randint(3, 4)
    if (count * degree) % 2:
        count += 1
    yield "regular", random_regular_graph(count, degree, rng.randrange(1 << 20))
    yield "irregular", random_bounded_degree_graph(
        rng.randint(min_nodes, max_nodes), rng.randint(3, 5), rng.randrange(1 << 20)
    )


def random_topology_labels(
    rng: random.Random, topology: Any, alphabet: Sequence[Any]
) -> "dict[Any, Any]":
    """A random total labelling of ``topology`` over ``alphabet``."""
    return {node: rng.choice(alphabet) for node in topology.nodes}


def canonicalise(value: Any) -> Any:
    """Normalise a value into a canonically ordered, hashable-free structure.

    Dicts and sets are sorted (by the repr of their canonical keys /
    elements), dataclasses become ``(class name, field tuples)``, sequences
    recurse.  Two values with equal content canonicalise identically no
    matter the insertion order of their containers.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (field.name, canonicalise(getattr(value, field.name)))
                for field in dataclasses.fields(value)
            ),
        )
    if isinstance(value, dict):
        items = [(canonicalise(key), canonicalise(item)) for key, item in value.items()]
        return ("mapping", tuple(sorted(items, key=repr)))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((canonicalise(item) for item in value), key=repr)))
    if isinstance(value, (list, tuple)):
        return tuple(canonicalise(item) for item in value)
    return value


def canonical_bytes(value: Any) -> bytes:
    """The canonical byte serialisation compared by :func:`assert_equivalent`."""
    return repr(canonicalise(value)).encode("utf-8")


def call_outcome(call: Callable[[], Any]) -> Tuple[str, Any]:
    """Run ``call`` and capture its outcome: ``("ok", result)`` or
    ``("error", type name, message)``."""
    try:
        return ("ok", call())
    except Exception as error:  # noqa: BLE001 — engines must fail identically too
        return ("error", type(error).__name__, str(error))


def assert_engines_agree(
    factories: "dict[str, Callable[[], Any]]",
    context: str,
    reference: str = "dict",
) -> Any:
    """Assert that every engine's outcome matches the reference engine's.

    ``factories`` maps engine names to zero-argument callables (one per
    engine tier, e.g. ``{"dict": ..., "indexed": ..., "array": ...}``);
    each non-reference engine's outcome is compared byte-for-byte against
    the reference's.  The reference (the slowest tier by design) runs
    exactly once, its canonical bytes reused for every comparison.
    Returns the reference outcome.
    """
    reference_outcome = call_outcome(factories[reference])
    reference_blob = canonical_bytes(reference_outcome)
    for name, call in factories.items():
        if name == reference:
            continue
        _compare_blobs(
            reference_blob,
            canonical_bytes(call_outcome(call)),
            f"{context} engine={name}",
        )
    return reference_outcome


def assert_equivalent(
    reference: Callable[[], Any],
    indexed: Callable[[], Any],
    context: str,
) -> Any:
    """Assert that the reference and indexed engines agree byte-for-byte.

    Both outcomes — normal results and raised exceptions — are compared as
    canonical bytes.  Returns the reference outcome payload so callers can
    chain further checks.  ``context`` should identify the master seed and
    the drawn parameters; it prefixes the failure message.
    """
    reference_outcome = call_outcome(reference)
    indexed_outcome = call_outcome(indexed)
    _compare_blobs(
        canonical_bytes(reference_outcome), canonical_bytes(indexed_outcome), context
    )
    return reference_outcome


# --------------------------------------------------------------------- #
# The chaos leg: schedules under randomized fault plans
# --------------------------------------------------------------------- #


def chaos_fault_plan(
    rng: random.Random,
    workers: int,
    rounds: int,
    hang_seconds: float = 30.0,
) -> Any:
    """Draw a reproducible :class:`FaultPlan` for a chaos schedule.

    The plan's own seed is drawn from ``rng``, so the master
    ``--equivalence-seed`` replays the exact fault mix.  ``hang_seconds``
    must comfortably exceed the test's ``REPRO_ROUND_TIMEOUT`` so hang
    faults deterministically trip the deadline instead of racing it.
    """
    from repro.runtime.faults import FaultPlan

    return FaultPlan.random(
        rng.randrange(1 << 30),
        workers=workers,
        rounds=rounds,
        hang_seconds=hang_seconds,
    )


def run_dict_schedule(
    grid: Any, labels: Any, schedule: Sequence[Tuple[Any, int]]
) -> "dict[Any, Any]":
    """Replay a ``(rule, iterations)`` schedule on the dict oracle."""
    from repro.local_model.simulator import apply_rule

    current = dict(labels)
    for rule, iterations in schedule:
        for _ in range(iterations):
            current = apply_rule(grid, current, rule)
    return current


def run_chaos_schedule(
    grid: Any,
    labels: Any,
    schedule: Sequence[Tuple[Any, int]],
    plan: Any,
    workers: int = 2,
    table_threshold: int = 1,
    stats: Optional[dict] = None,
) -> "dict[Any, Any]":
    """Run a schedule on the shm tier with ``plan`` injecting faults.

    The plan is activated *before* the engine spawns its pool, so forked
    workers inherit it.  Whatever the faults do — healed in place or
    degraded down the ladder — the returned labelling (or the raised
    first-failing-node exception) must be byte-identical to
    :func:`run_dict_schedule`.  When ``stats`` is given, resilience
    counters (pool spawns/heals/respawns, the degrade-event summary)
    are recorded into it even if the schedule raises.
    """
    from repro.local_model.engine import ShmEngine
    from repro.runtime import faults

    with faults.active(plan):
        with ShmEngine(
            grid, workers=workers, table_threshold=table_threshold
        ) as engine:
            engine.prepare([rule for rule, _ in schedule])
            try:
                current = engine.store(labels)
                for rule, iterations in schedule:
                    for _ in range(iterations):
                        current = engine.apply_rule(current, rule)
                return current.to_dict()
            finally:
                if stats is not None:
                    from repro.runtime.telemetry import summarise

                    stats.update(
                        pool_spawns=engine.pool_spawns,
                        pool_heals=engine.pool_heals,
                        worker_respawns=engine.worker_respawns,
                        broken=engine._broken,
                        events=summarise(engine.degrade_events),
                    )


def _compare_blobs(reference_blob: bytes, candidate_blob: bytes, context: str) -> None:
    if reference_blob == candidate_blob:
        return
    divergence = next(
        (
            position
            for position, (a, b) in enumerate(zip(reference_blob, candidate_blob))
            if a != b
        ),
        min(len(reference_blob), len(candidate_blob)),
    )
    window = slice(max(0, divergence - 60), divergence + 60)
    raise AssertionError(
        f"engines diverge [{context}] at byte {divergence}:\n"
        f"  reference: ...{reference_blob[window]!r}...\n"
        f"  candidate: ...{candidate_blob[window]!r}..."
    )
