"""Randomized five-tier equivalence suite on the non-torus topologies.

Each test derives a private RNG from ``--equivalence-seed`` (default 0),
draws one randomized instance per topology family — directed cycle, random
recursive tree, random d-regular graph, random irregular bounded-degree
graph (plus the torus via :func:`topology_cases`) — and asserts that the
``"dict"`` reference (:func:`repro.grid.topology.apply_rule_dict`) and the
``indexed``/``array``/``parallel``/``shm`` tiers produce byte-identical
outcomes: same labellings, and for raising rules the same first-failing-node
exception, across worker counts 0/1/N and with ``table_threshold=1`` so
the sharding tiers genuinely shard.
"""

import pytest

from equivalence import (
    assert_engines_agree,
    derive_rng,
    random_topology_labels,
    rule_engine_factories,
    topology_cases,
)

from repro.local_model.algorithm import FunctionRule
from repro.local_model.engine import ArrayEngine, SchedulePhase, run_schedule
from repro.local_model.store import shm_available

WORKER_COUNTS = (0, 1, 2)


def _random_finite_rule(rng, alphabet_size, radius):
    """A deterministic, view-order-invariant rule over a finite alphabet."""
    a, b, c = rng.randrange(1, 7), rng.randrange(7), rng.randrange(7)

    def update(view):
        values = sorted(view.values())
        return (a * values[0] + b * values[-1] + c * sum(values)) % alphabet_size

    return FunctionRule(radius, update)


def _poisoned_rule(rng, alphabet_size, radius, poisoned):
    """A rule raising on poisoned labels — all tiers must report the same
    first-failing node, even when the failures span multiple shards."""
    poison = frozenset(poisoned)

    def update(view):
        values = sorted(view.values())
        smallest = values[0]
        if smallest in poison:
            raise ValueError(f"poisoned label {smallest}")
        return (smallest + values[-1]) % alphabet_size

    return FunctionRule(radius, update)


class TestFiveTierEquivalence:
    def test_all_tiers_agree_on_every_family(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "topologies-five-tier")
        for case, (name, topology) in enumerate(
            topology_cases(rng, include_torus=False)
        ):
            radius = rng.choice([1, 1, 2])
            alphabet_size = rng.randint(2, 5)
            rule = _random_finite_rule(rng, alphabet_size, radius)
            labels = random_topology_labels(
                rng, topology, range(alphabet_size)
            )
            for workers in WORKER_COUNTS:
                context = (
                    f"seed={equivalence_seed} case={case} family={name} "
                    f"topology={topology!r} radius={radius} "
                    f"alphabet={alphabet_size} workers={workers}"
                )
                outcome = assert_engines_agree(
                    rule_engine_factories(
                        topology,
                        labels,
                        rule,
                        workers=workers,
                        table_threshold=1,
                        include_shm=shm_available(),
                    ),
                    context,
                )
                assert outcome[0] == "ok", context

    def test_compiled_table_tier_agrees_on_every_family(self, equivalence_seed):
        rng = derive_rng(equivalence_seed, "topologies-table-tier")
        for case, (name, topology) in enumerate(
            topology_cases(rng, max_nodes=20, include_torus=False)
        ):
            # Radius 1 with a binary alphabet keeps |Σ|^ball_size under the
            # default threshold on every family (the widest ball here is a
            # degree-5 hub's 6 slots).
            rule = _random_finite_rule(rng, 2, 1)
            labels = random_topology_labels(rng, topology, (0, 1))
            assert ArrayEngine(topology).rule_tier(rule) == "table", name
            context = (
                f"seed={equivalence_seed} case={case} family={name} "
                f"topology={topology!r} compiled-table"
            )
            outcome = assert_engines_agree(
                rule_engine_factories(
                    topology,
                    labels,
                    rule,
                    workers=2,
                    include_shm=shm_available(),
                ),
                context,
            )
            assert outcome[0] == "ok", context

    def test_raising_rules_fail_on_the_same_node_across_shards(
        self, equivalence_seed
    ):
        rng = derive_rng(equivalence_seed, "topologies-raising")
        for case, (name, topology) in enumerate(
            topology_cases(rng, include_torus=False)
        ):
            alphabet_size = rng.randint(3, 5)
            # Poison several labels (always including 0) so failures occur
            # in more than one shard of the table_threshold=1 chunk plans;
            # every tier must surface the lowest-index failing node.
            poisoned = set(rng.sample(range(alphabet_size), 2))
            poisoned.add(0)
            rule = _poisoned_rule(rng, alphabet_size, 1, poisoned)
            labels = random_topology_labels(
                rng, topology, range(alphabet_size)
            )
            for workers in WORKER_COUNTS:
                context = (
                    f"seed={equivalence_seed} case={case} family={name} "
                    f"topology={topology!r} poisoned={sorted(poisoned)} "
                    f"workers={workers}"
                )
                outcome = assert_engines_agree(
                    rule_engine_factories(
                        topology,
                        labels,
                        rule,
                        workers=workers,
                        table_threshold=1,
                        include_shm=shm_available(),
                    ),
                    context,
                )
                assert outcome[0] == "error", context
                assert outcome[1] == "ValueError", context


class TestSchedulesOnTopologies:
    @pytest.mark.parametrize(
        "engine",
        ["indexed", "array", "parallel"]
        + (["shm"] if shm_available() else []),
    )
    def test_run_schedule_matches_iterated_dict_reference(
        self, equivalence_seed, engine
    ):
        from repro.grid.topology import apply_rule_dict

        rng = derive_rng(equivalence_seed, f"topologies-schedule-{engine}")
        for case, (name, topology) in enumerate(
            topology_cases(rng, max_nodes=20, include_torus=False)
        ):
            alphabet_size = rng.randint(2, 4)
            rule_a = _random_finite_rule(rng, alphabet_size, 1)
            rule_b = _random_finite_rule(rng, alphabet_size, 1)
            labels = random_topology_labels(
                rng, topology, range(alphabet_size)
            )
            expected = labels
            for rule in (rule_a, rule_a, rule_b):
                expected = apply_rule_dict(topology, expected, rule)
            result = run_schedule(
                topology,
                labels,
                [
                    SchedulePhase(rule_a, name="a", iterations=2),
                    SchedulePhase(rule_b, name="b", iterations=1),
                ],
                engine=engine,
            ).to_dict()
            assert result == expected, (
                f"seed={equivalence_seed} case={case} family={name} "
                f"topology={topology!r} engine={engine}"
            )
