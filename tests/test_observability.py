"""Unit tests for the observability stack (PR 10's tentpole).

Covers the span tracer (nesting, caps, export formats, the env-driven
install), the metrics registry, the engine-decision recorder wired into
``resolve_engine``/``resolve_vector_engine``, the telemetry event bus
bridging :mod:`repro.runtime.telemetry` onto the metrics registry, the
``python -m repro.observability`` renderer, and the ``observability``
contract check of the statics lint.
"""

import json
import os
import subprocess
import sys
import textwrap
import warnings
from pathlib import Path

import pytest

from repro.observability import decision, metrics, trace
from repro.observability.cli import TraceFormatError, load_trace, main, render_events
from repro.observability.decision import clear_decisions, last_decision, recent_decisions
from repro.observability.metrics import MetricsRegistry, record_event, registry
from repro.observability.trace import (
    NOOP_SPAN,
    Tracer,
    capture,
    chrome_document,
    disabled,
    write_trace,
)
from repro.runtime.telemetry import (
    DegradeEvent,
    StaticsEvent,
    publish,
    subscribe,
    summarise,
    unsubscribe,
)
from repro.statics.contracts import run_contract_checks


@pytest.fixture(autouse=True)
def _isolated_observability():
    """Every test starts from a clean registry, history and tracer."""
    registry().reset()
    clear_decisions()
    previous = trace.uninstall()
    yield
    registry().reset()
    clear_decisions()
    trace.ACTIVE = previous


# --------------------------------------------------------------------------
# Tracer
# --------------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_and_walk_depth_first(self):
        tracer = Tracer()
        with tracer.span("outer", tier="shm"):
            with tracer.span("inner"):
                tracer.instant("marker", note=1)
            with tracer.span("sibling"):
                pass
        walked = [(span.name, depth) for span, depth in tracer.walk()]
        assert walked == [("outer", 0), ("inner", 1), ("marker", 2), ("sibling", 1)]
        assert tracer.span_count == 4
        (outer,) = tracer.find("outer")
        assert outer.args == {"tier": "shm"}
        assert outer.duration > 0.0

    def test_exception_exit_tags_the_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("round", tier="table"):
                raise RuntimeError("boom")
        (span,) = tracer.find("round")
        assert span.args == {"tier": "table", "error": "RuntimeError"}
        # The stack unwound: a later span is a fresh root, not a child.
        with tracer.span("next"):
            pass
        assert [span.name for span in tracer.roots] == ["round", "next"]

    def test_record_backdates_and_clamps_to_parent(self):
        tracer = Tracer()
        with tracer.span("pool-round"):
            tracer.record("worker-chunk", duration=1e-4, tid=3, worker=2)
            tracer.record("worker-chunk", duration=1e9, tid=4)
        parent = tracer.find("pool-round")[0]
        short, absurd = tracer.find("worker-chunk")
        assert short.tid == 3 and short.args == {"worker": 2}
        assert short.duration == pytest.approx(1e-4)
        assert short.start >= parent.start
        # A duration longer than the trace itself cannot start before its
        # parent: the start is clamped so the tree stays well-nested.
        assert absurd.start >= parent.start

    def test_max_spans_cap_drops_and_counts(self):
        tracer = Tracer(max_spans=2)
        with tracer.span("kept"):
            tracer.instant("also-kept")
            tracer.instant("dropped")
            assert tracer.span("dropped-too") is NOOP_SPAN
        assert tracer.span_count == 2
        assert tracer.dropped == 2
        assert "2 span(s) dropped" in tracer.render_tree()

    def test_chrome_export_units_and_shape(self):
        tracer = Tracer()
        with tracer.span("outer", tier="shm"):
            tracer.instant("mark")
        document = tracer.to_chrome()
        assert document["displayTimeUnit"] == "ms"
        assert document["repro"] == {"spans": 2, "dropped": 0}
        outer, mark = document["traceEvents"]
        assert outer["ph"] == "X" and outer["name"] == "outer"
        assert outer["dur"] > 0 and outer["ts"] >= 0  # microseconds
        assert outer["args"] == {"tier": "shm"}
        assert mark["ph"] == "i" and mark["s"] == "t" and "dur" not in mark
        json.dumps(document)  # JSON-serialisable end to end

    def test_render_tree_depth_limit(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        text = tracer.render_tree(max_depth=1)
        assert "a " in text and "b " in text and "c " not in text


class TestSwitchboard:
    def test_disabled_module_helpers_are_noops(self):
        assert trace.ACTIVE is None
        assert trace.span("anything", key=1) is NOOP_SPAN
        trace.instant("anything")  # must not raise
        with trace.span("still-nothing"):
            pass

    def test_capture_restores_previous_tracer(self):
        outer = trace.install()
        with capture() as inner:
            assert trace.ACTIVE is inner
            assert inner is not outer
            with trace.span("seen"):
                pass
        assert trace.ACTIVE is outer
        assert inner.find("seen")

    def test_disabled_context_suppresses_recording(self):
        with capture() as tracer:
            with disabled():
                assert trace.ACTIVE is None
                with trace.span("invisible"):
                    pass
            with trace.span("visible"):
                pass
        assert [span.name for span, _ in tracer.walk()] == ["visible"]

    def test_env_enabled_parsing(self):
        assert trace._env_enabled("1")
        assert trace._env_enabled("TRUE")
        assert trace._env_enabled(" on ")
        assert not trace._env_enabled("0")
        assert not trace._env_enabled("")
        assert not trace._env_enabled(None)

    def test_env_install_exports_at_exit(self, tmp_path):
        """A REPRO_TRACE=1 interpreter writes the trace file at exit."""
        out = tmp_path / "env-trace.json"
        script = (
            "from repro.observability import trace\n"
            "assert trace.ACTIVE is not None\n"
            "with trace.span('round', tier='table'):\n"
            "    pass\n"
        )
        environment = dict(os.environ)
        environment.update(
            PYTHONPATH="src",
            REPRO_TRACE="1",
            REPRO_TRACE_FILE=str(out),
        )
        subprocess.run(
            [sys.executable, "-c", script],
            check=True,
            env=environment,
            cwd=str(Path(__file__).resolve().parent.parent),
        )
        payload = load_trace(str(out))
        assert [event["name"] for event in payload["traceEvents"]] == ["round"]
        assert payload["repro"]["spans"] == 1

    def test_write_trace_is_atomic_and_loadable(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        destination = tmp_path / "trace.json"
        write_trace(tracer, destination)
        assert load_trace(str(destination))["repro"]["spans"] == 1
        assert list(tmp_path.iterdir()) == [destination]  # no tmp leftovers


# --------------------------------------------------------------------------
# Metrics
# --------------------------------------------------------------------------


class TestMetrics:
    def test_counters_label_series_and_totals(self):
        reg = MetricsRegistry()
        reg.inc("engine_rounds_total", tier="table")
        reg.inc("engine_rounds_total", tier="table")
        reg.inc("engine_rounds_total", tier="shm")
        reg.inc("plain_total", 5)
        assert reg.counter("engine_rounds_total", tier="table") == 2
        assert reg.counter("engine_rounds_total", tier="missing") == 0
        assert reg.counter_total("engine_rounds_total") == 3
        assert reg.counter("plain_total") == 5

    def test_summaries_and_timed(self):
        reg = MetricsRegistry()
        reg.observe("latency_seconds", 0.25)
        reg.observe("latency_seconds", 0.75)
        with reg.timed("latency_seconds"):
            pass
        snapshot = reg.snapshot()["summaries"]["latency_seconds"]
        assert snapshot["count"] == 3
        assert snapshot["max"] == 0.75
        assert snapshot["min"] < 0.25
        assert snapshot["mean"] == pytest.approx(snapshot["total"] / 3)

    def test_snapshot_flattens_sorted_labels(self):
        reg = MetricsRegistry()
        reg.inc("x_total", tier="shm", healed="true")
        assert reg.snapshot()["counters"] == {"x_total{healed=true,tier=shm}": 1}

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.observe("b", 1.0)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "summaries": {}}

    def test_record_event_dispatches_on_the_event_tag(self):
        record_event(DegradeEvent("shm", "shm", "parallel", "died"))
        record_event(DegradeEvent("shm", "shm", "shm", "healed", healed=True))
        record_event(StaticsEvent("shm", "autoprove", "Rule()", "proven"))
        record_event(object())  # unknown events are ignored, not errors
        reg = registry()
        assert reg.counter("telemetry_degrade_events_total", healed="false") == 1
        assert reg.counter("telemetry_degrade_events_total", healed="true") == 1
        assert reg.counter("telemetry_statics_events_total", kind="autoprove") == 1


# --------------------------------------------------------------------------
# Telemetry event bus
# --------------------------------------------------------------------------


class TestTelemetryBus:
    def test_publish_reaches_subscribers_and_metrics(self):
        seen = []
        subscriber = subscribe(seen.append)
        try:
            event = DegradeEvent("shm", "shm", "parallel", "spawn failed")
            publish(event)
            assert seen == [event]
            assert registry().counter("telemetry_degrade_events_total", healed="false") == 1
        finally:
            unsubscribe(subscriber)

    def test_raising_subscriber_warns_but_others_still_run(self):
        seen = []

        def broken(event):
            raise ValueError("observer bug")

        subscribe(broken)
        subscriber = subscribe(seen.append)
        try:
            with pytest.warns(RuntimeWarning, match="telemetry subscriber"):
                publish(StaticsEvent("parallel", "autoblock", "Rule()", "unproven"))
            assert len(seen) == 1
        finally:
            unsubscribe(broken)
            unsubscribe(subscriber)

    def test_event_json_leads_with_the_event_tag(self):
        degrade = DegradeEvent("shm", "shm", "indexed", "worker died").to_json()
        statics = StaticsEvent("shm", "autoprove", "Rule()", "proven").to_json()
        assert next(iter(degrade)) == "event" and degrade["event"] == "degrade"
        assert next(iter(statics)) == "event" and statics["event"] == "statics"

    def test_summarise_accepts_a_mixed_event_stream(self):
        events = [
            DegradeEvent("shm", "shm", "parallel", "dead"),
            DegradeEvent("shm", "shm", "shm", "healed", healed=True),
            StaticsEvent("shm", "autoprove", "Rule()", "proven"),
            StaticsEvent("parallel", "autoblock", "Rule()", "unproven"),
        ]
        assert summarise(events) == {
            "total": 4,
            "healed": 1,
            "degraded": 1,
            "autoprove": 1,
            "autoblock": 1,
        }


# --------------------------------------------------------------------------
# Engine-decision explainability
# --------------------------------------------------------------------------


class TestEngineDecisions:
    def test_auto_resolution_records_the_rejected_rungs(self):
        from repro.local_model.store import resolve_engine

        resolved = resolve_engine(
            "auto",
            allowed=("dict", "indexed", "array", "parallel", "shm"),
            node_count=64,
        )
        recorded = last_decision()
        assert recorded is not None
        assert recorded.requested == "auto"
        assert recorded.resolved == resolved
        # Small node count: both sharding tiers rejected on thresholds.
        assert recorded.why("shm") is not None and "node" in recorded.why("shm")
        assert recorded.why("parallel") is not None
        assert recorded.explain().startswith("resolve_engine('auto')")
        assert registry().counter("engine_decisions_total", resolved=resolved) == 1

    def test_explicit_request_is_one_accepted_rung(self):
        from repro.local_model.store import resolve_engine

        assert resolve_engine("indexed") == "indexed"
        recorded = last_decision()
        assert [(rung.tier, rung.accepted) for rung in recorded.rungs] == [
            ("indexed", True)
        ]
        assert recorded.why("indexed") == "explicitly requested"

    def test_invalid_request_records_nothing(self):
        from repro.local_model.store import resolve_engine

        with pytest.raises(ValueError):
            resolve_engine("warp-drive")
        assert last_decision() is None

    def test_vector_resolution_maps_sharded_tiers_to_array(self):
        from repro.local_model.store import resolve_vector_engine

        resolved = resolve_vector_engine("parallel")
        assert resolved == "array"
        recorded = last_decision()
        assert recorded.vector is True
        assert recorded.resolved == "array"
        assert any(not rung.accepted for rung in recorded.rungs)

    def test_history_ring_is_bounded(self):
        recorder_count = decision.HISTORY_LIMIT + 7
        for index in range(recorder_count):
            recorder = decision.DecisionRecorder("auto", ("indexed",))
            recorder.finish("indexed")
        assert len(recent_decisions()) == decision.HISTORY_LIMIT

    def test_decisions_emit_an_instant_on_the_active_tracer(self):
        from repro.local_model.store import resolve_engine

        with capture() as tracer:
            resolve_engine("dict")
        (instant,) = tracer.find(trace.SPAN_RESOLVE_ENGINE)
        assert instant.phase == "i"
        assert instant.args["requested"] == "dict"
        assert instant.args["resolved"] == "dict"


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


def _exported_trace(tmp_path):
    tracer = Tracer()
    with capture(tracer):
        with trace.span("run_schedule", tier="array"):
            with trace.span("round", tier="table"):
                pass
        registry().inc("engine_rounds_total", tier="table")
        recorder = decision.DecisionRecorder("auto", ("indexed", "array"), node_count=9)
        recorder.rung("array", True, "numpy available")
        recorder.finish("array")
    path = tmp_path / "trace.json"
    write_trace(tracer, path)
    return path


class TestCli:
    def test_text_report_rebuilds_the_tree(self, tmp_path, capsys):
        path = _exported_trace(tmp_path)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "run_schedule" in out
        assert "\n  round" in out  # nested one level under run_schedule
        assert "engine_rounds_total{tier=table} = 1" in out
        assert "resolve_engine('auto') -> 'array'" in out

    def test_json_format_dumps_the_repro_section(self, tmp_path, capsys):
        path = _exported_trace(tmp_path)
        assert main([str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # run_schedule + round + the resolve_engine decision instant.
        assert payload["spans"] == 3
        assert payload["metrics"]["counters"] == {
            "engine_decisions_total{resolved=array}": 1,
            "engine_rounds_total{tier=table}": 1,
        }
        assert payload["decisions"][0]["resolved"] == "array"

    def test_sections_and_depth_filter(self, tmp_path, capsys):
        path = _exported_trace(tmp_path)
        assert main([str(path), "--section", "spans", "--depth", "0"]) == 0
        out = capsys.readouterr().out
        assert "run_schedule" in out and "round" not in out
        assert "engine_rounds_total" not in out

    def test_malformed_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main([str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
        good_json_bad_shape = tmp_path / "shape.json"
        good_json_bad_shape.write_text(json.dumps({"events": []}))
        assert main([str(good_json_bad_shape)]) == 2

    def test_render_events_groups_foreign_lanes(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 1, "dur": 2, "pid": 1, "tid": 7},
        ]
        text = render_events(events)
        assert "[pid=1 tid=0]" in text and "[pid=1 tid=7]" in text

    def test_load_trace_requires_the_event_list(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"traceEvents": "nope"}))
        with pytest.raises(TraceFormatError):
            load_trace(str(path))


# --------------------------------------------------------------------------
# The observability contract check
# --------------------------------------------------------------------------


def _seed_tree(tmp_path, source, name="timed.py", package="src/repro"):
    root = tmp_path / package
    root.mkdir(parents=True)
    (root / name).write_text(textwrap.dedent(source))
    return tmp_path


class TestObservabilityContract:
    def test_seeded_clock_read_is_flagged(self, tmp_path):
        root = _seed_tree(
            tmp_path,
            """
            import time

            def slow_path():
                started = time.monotonic()
                return time.monotonic() - started
            """,
        )
        findings = run_contract_checks(root)
        assert [finding.check for finding in findings] == ["observability"]
        assert findings[0].symbol == "slow_path"
        assert "time.monotonic" in findings[0].message

    def test_time_sleep_is_not_flagged(self, tmp_path):
        root = _seed_tree(
            tmp_path,
            """
            import time

            def backoff():
                time.sleep(0.1)
            """,
        )
        assert run_contract_checks(root) == []

    def test_observability_package_is_exempt(self, tmp_path):
        root = _seed_tree(
            tmp_path,
            """
            import time

            def clock():
                return time.perf_counter()
            """,
            package="src/repro/observability",
        )
        assert run_contract_checks(root) == []

    def test_benchmarks_are_exempt(self, tmp_path):
        root = _seed_tree(
            tmp_path,
            """
            import time

            def measure(bench_json):
                return time.perf_counter()
            """,
            name="helper.py",
            package="benchmarks",
        )
        assert run_contract_checks(root) == []


# --------------------------------------------------------------------------
# Engine wiring (serial tiers; the pool side lives in the equivalence leg)
# --------------------------------------------------------------------------


class TestEngineWiring:
    def test_run_schedule_emits_the_span_hierarchy(self):
        from repro.grid.torus import ToroidalGrid
        from repro.local_model import FunctionRule, SchedulePhase, run_schedule

        grid = ToroidalGrid((6, 6))
        rule = FunctionRule(1, lambda view: min(view.values()))
        labels = {node: (node[0] + node[1]) % 5 for node in grid.nodes()}
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with capture() as tracer:
                run_schedule(
                    grid, labels, [SchedulePhase(rule, "settle", 2)], engine="indexed"
                )
        (schedule,) = tracer.find(trace.SPAN_SCHEDULE)
        assert schedule.args["tier"] == "indexed"
        (phase,) = tracer.find(trace.SPAN_PHASE)
        assert phase.args["phase"] == "settle"
        rounds = tracer.find(trace.SPAN_ROUND)
        assert [span.args["tier"] for span in rounds] == ["list", "list"]
        assert registry().counter("engine_rounds_total", tier="list") == 2

    def test_untraced_run_still_counts_rounds(self):
        from repro.grid.torus import ToroidalGrid
        from repro.local_model import FunctionRule, SchedulePhase, run_schedule

        grid = ToroidalGrid((4, 4))
        rule = FunctionRule(1, lambda view: min(view.values()))
        labels = {node: (node[0] * 4 + node[1]) % 3 for node in grid.nodes()}
        assert trace.ACTIVE is None
        run_schedule(grid, labels, [SchedulePhase(rule, "one", 1)], engine="array")
        assert registry().counter_total("engine_rounds_total") == 1

    def test_chrome_document_folds_metrics_and_decisions(self):
        from repro.local_model.store import resolve_engine

        with capture() as tracer:
            resolve_engine("array")
            registry().inc("engine_rounds_total", tier="table")
        document = chrome_document(tracer)
        counters = document["repro"]["metrics"]["counters"]
        assert counters["engine_rounds_total{tier=table}"] == 1
        assert document["repro"]["decisions"][-1]["resolved"] == "array"
