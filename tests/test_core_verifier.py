"""Tests for the local-checkability verifiers, including failure injection."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.catalog import (
    maximal_independent_set_problem,
    proper_edge_colouring_problem,
    vertex_colouring_problem,
)
from repro.core.verifier import (
    verify_edge_labelling,
    verify_maximal_independent_set,
    verify_node_labelling,
    verify_proper_edge_colouring,
    verify_proper_vertex_colouring,
)
from repro.colouring.vertex_global import global_three_colouring, global_two_colouring
from repro.errors import InvalidLabellingError
from repro.grid.power import PowerGraph
from repro.grid.torus import ToroidalGrid


@pytest.fixture()
def grid():
    return ToroidalGrid.square(6)


def checkerboard(grid):
    return {node: sum(node) % 2 for node in grid.nodes()}


class TestNodeLabellingVerifier:
    def test_valid_two_colouring(self, grid):
        result = verify_node_labelling(grid, vertex_colouring_problem(2), checkerboard(grid))
        assert result.valid
        assert bool(result)

    def test_detects_single_corruption(self, grid):
        labels = checkerboard(grid)
        labels[(2, 2)] = labels[(2, 3)]
        result = verify_node_labelling(grid, vertex_colouring_problem(2), labels)
        assert not result.valid
        kinds = {violation.kind for violation in result.violations}
        assert kinds <= {"horizontal", "vertical"}
        assert len(result.violations) >= 2  # at least two incident constraints break

    def test_detects_label_outside_alphabet(self, grid):
        labels = checkerboard(grid)
        labels[(0, 0)] = 7
        result = verify_node_labelling(grid, vertex_colouring_problem(2), labels)
        assert not result.valid
        assert any(v.kind == "alphabet" for v in result.violations)

    def test_max_violations_short_circuits(self, grid):
        labels = {node: 0 for node in grid.nodes()}
        result = verify_node_labelling(grid, vertex_colouring_problem(2), labels, max_violations=3)
        assert not result.valid
        assert len(result.violations) == 3

    def test_incomplete_labelling_rejected(self, grid):
        labels = checkerboard(grid)
        del labels[(0, 0)]
        with pytest.raises(InvalidLabellingError):
            verify_node_labelling(grid, vertex_colouring_problem(2), labels)

    def test_cross_constraint_maximal_independent_set(self, grid):
        problem = maximal_independent_set_problem()
        # A valid MIS on an even torus: one side of the checkerboard.
        labels = {node: 1 if sum(node) % 2 == 0 else 0 for node in grid.nodes()}
        assert verify_node_labelling(grid, problem, labels).valid
        # Remove one member: it now has no member in its neighbourhood.
        labels[(0, 0)] = 0
        result = verify_node_labelling(grid, problem, labels)
        assert not result.valid
        assert any(v.kind == "cross" for v in result.violations)

    def test_three_dimensional_grid_rejected(self):
        cube = ToroidalGrid.square(4, dimension=3)
        with pytest.raises(InvalidLabellingError):
            verify_node_labelling(cube, vertex_colouring_problem(2), {n: 0 for n in cube.nodes()})

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_corruptions_of_valid_colourings_are_caught(self, seed):
        grid = ToroidalGrid.square(5)
        colouring = dict(global_three_colouring(grid).node_labels)
        problem = vertex_colouring_problem(3)
        assert verify_node_labelling(grid, problem, colouring).valid
        rng = random.Random(seed)
        node = rng.choice(list(grid.nodes()))
        neighbour = rng.choice(grid.neighbour_nodes(node))
        colouring[node] = colouring[neighbour]
        assert not verify_node_labelling(grid, problem, colouring).valid


class TestStandaloneColouringVerifiers:
    def test_vertex_colouring_checker(self, grid):
        result = verify_proper_vertex_colouring(grid, checkerboard(grid), number_of_colours=2)
        assert result.valid
        too_many = verify_proper_vertex_colouring(grid, checkerboard(grid), number_of_colours=1)
        assert not too_many.valid

    def test_vertex_colouring_checker_in_three_dimensions(self):
        cube = ToroidalGrid.square(4, dimension=3)
        labels = {node: sum(node) % 2 for node in cube.nodes()}
        assert verify_proper_vertex_colouring(cube, labels).valid

    def test_two_colouring_of_odd_torus_impossible(self):
        odd = ToroidalGrid.square(5)
        from repro.errors import UnsolvableInstanceError

        with pytest.raises(UnsolvableInstanceError):
            global_two_colouring(odd)

    def test_edge_colouring_checker(self):
        grid = ToroidalGrid.square(4)
        # Colour horizontal edges by x parity, vertical edges by 2 + y parity.
        labels = {}
        for (node, axis) in grid.edges():
            labels[(node, axis)] = node[axis] % 2 + 2 * axis
        result = verify_proper_edge_colouring(grid, labels, number_of_colours=4)
        assert result.valid
        labels[((0, 0), 0)] = labels[((1, 0), 0)]
        assert not verify_proper_edge_colouring(grid, labels).valid


class TestEdgeLabellingVerifier:
    def test_valid_and_corrupted_edge_labelling(self):
        grid = ToroidalGrid.square(4)
        problem = proper_edge_colouring_problem(4)
        labels = {}
        for (node, axis) in grid.edges():
            labels[(node, axis)] = node[axis] % 2 + 2 * axis
        assert verify_edge_labelling(grid, problem, labels).valid
        labels[((0, 0), 0)] = 99
        result = verify_edge_labelling(grid, problem, labels)
        assert not result.valid
        assert any(v.kind == "alphabet" for v in result.violations)

    def test_incomplete_edge_labelling_rejected(self):
        grid = ToroidalGrid.square(4)
        problem = proper_edge_colouring_problem(4)
        with pytest.raises(InvalidLabellingError):
            verify_edge_labelling(grid, problem, {})


class TestMISVerifier:
    def test_valid_mis_on_grid(self):
        grid = ToroidalGrid.square(6)
        membership = {node: 1 if sum(node) % 2 == 0 else 0 for node in grid.nodes()}
        assert verify_maximal_independent_set(grid, membership).valid

    def test_independence_violation(self):
        grid = ToroidalGrid.square(6)
        membership = {node: 1 for node in grid.nodes()}
        result = verify_maximal_independent_set(grid, membership)
        assert not result.valid
        assert all(v.kind == "independence" for v in result.violations)

    def test_maximality_violation(self):
        grid = ToroidalGrid.square(6)
        membership = {node: 0 for node in grid.nodes()}
        result = verify_maximal_independent_set(grid, membership)
        assert not result.valid
        assert all(v.kind == "maximality" for v in result.violations)

    def test_power_graph_adjacency_argument(self):
        grid = ToroidalGrid.square(8)
        power = PowerGraph(grid, 2, "l1")
        # Members spaced 4 apart horizontally and vertically are independent
        # in G^(2) but NOT maximal (nodes in between are undominated).
        membership = {
            node: 1 if node[0] % 4 == 0 and node[1] % 4 == 0 else 0 for node in grid.nodes()
        }
        result = verify_maximal_independent_set(grid, membership, adjacency=power.adjacency())
        assert not result.valid
        assert any(v.kind == "maximality" for v in result.violations)
