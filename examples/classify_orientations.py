"""The complete X-orientation classification (Section 11, Theorem 22).

Run with::

    python examples/classify_orientations.py

For every non-empty ``X ⊆ {0, 1, 2, 3, 4}`` the script prints the paper's
classification — trivial, Θ(log* n) or global — together with executable
evidence where the library can produce it: a counting obstruction for odd
grids, or an exhaustive SAT-based solvability check on a small torus.
"""

from repro.analysis.experiments import ExperimentTable
from repro.core.complexity import ComplexityClass
from repro.errors import SynthesisError, UnsolvableInstanceError
from repro.grid.torus import ToroidalGrid
from repro.orientation.algorithms import solve_x_orientation_globally
from repro.orientation.classify import counting_obstruction, orientation_classification_table


def solvable_on(n: int, in_degrees) -> str:
    try:
        solve_x_orientation_globally(ToroidalGrid.square(n), in_degrees)
        return "yes"
    except UnsolvableInstanceError:
        return "no"
    except SynthesisError:
        return "?"


def main() -> None:
    table = ExperimentTable(
        "Theorem 22",
        "X-orientation classification with executable evidence",
        ["X", "complexity", "odd-n counting obstruction", "solvable on 5x5", "solvable on 6x6"],
    )
    for values, classification in orientation_classification_table():
        obstruction = counting_obstruction(values, 5)
        row = {
            "X": "{" + ",".join(map(str, values)) + "}",
            "complexity": classification.complexity.value,
            "odd-n counting obstruction": "yes" if obstruction else "-",
        }
        # Exhaustive checks are only interesting (and affordable) for the
        # global problems.
        if classification.complexity is ComplexityClass.GLOBAL:
            row["solvable on 5x5"] = solvable_on(5, values)
            row["solvable on 6x6"] = solvable_on(6, values)
        table.add_row(**row)
    table.add_note("trivial iff 2 ∈ X; Θ(log* n) iff {1,3,4} ⊆ X or {0,1,3} ⊆ X; global otherwise")
    table.show()


if __name__ == "__main__":
    main()
