"""Quickstart: the core objects of the library in one script.

Run with::

    python examples/quickstart.py

The script walks through the main layers of the reproduction:

1. the one-dimensional warm-up (Section 4): classify the Figure 2 problems
   on directed cycles and run a synthesised optimal algorithm;
2. the grid substrate and the symmetry-breaking anchors ``S_k``;
3. a complete normal-form algorithm ``A' ∘ S_k``: the 4-colouring rule
   synthesised at ``k = 3`` (Section 7), run and verified on a torus;
4. the contrast with a global problem: 3-colouring needs to see the whole
   grid (Theorem 9), and 2-colouring may not be solvable at all.
"""

from repro.colouring.vertex_global import global_three_colouring
from repro.core.verifier import verify_maximal_independent_set, verify_proper_vertex_colouring
from repro.cycles.catalog import (
    cycle_colouring_problem,
    cycle_independent_set_problem,
    cycle_maximal_independent_set_problem,
)
from repro.cycles.classifier import classify_cycle_problem
from repro.cycles.lcl1d import verify_cycle_labelling
from repro.cycles.synthesis import synthesise_cycle_algorithm
from repro.grid.identifiers import cycle_identifiers, random_identifiers
from repro.grid.power import PowerGraph
from repro.grid.torus import ToroidalGrid
from repro.symmetry.mis import compute_anchors
from repro.synthesis.pretrained import load_four_colouring_algorithm


def cycles_warm_up() -> None:
    print("=== 1. LCL problems on directed cycles (Section 4, Figure 2) ===")
    problems = [
        cycle_colouring_problem(2),
        cycle_colouring_problem(3),
        cycle_maximal_independent_set_problem(),
        cycle_independent_set_problem(),
    ]
    for problem in problems:
        result = classify_cycle_problem(problem)
        print(f"  {result.describe()}")

    problem = cycle_colouring_problem(3)
    algorithm = synthesise_cycle_algorithm(problem)
    identifiers = cycle_identifiers(200, seed=42)
    labels, rounds = algorithm.run(identifiers)
    assert verify_cycle_labelling(problem, labels) == []
    print(f"  synthesised 3-colouring ran on a 200-cycle in {rounds} rounds "
          f"(anchor state {algorithm.anchor_state}, spacing {algorithm.spacing})\n")


def anchors_demo(grid: ToroidalGrid, identifiers) -> None:
    print("=== 2. Anchors: a maximal independent set in G^(k) ===")
    anchors = compute_anchors(grid, identifiers, k=3)
    power = PowerGraph(grid, 3)
    check = verify_maximal_independent_set(grid, anchors.indicator(grid), adjacency=power.adjacency())
    print(f"  {len(anchors.members)} anchors on the {grid.sides} torus, "
          f"valid MIS of G^(3): {check.valid}, rounds charged: {anchors.rounds}")
    print(f"  round breakdown: {anchors.phase_rounds}\n")


def four_colouring_demo(grid: ToroidalGrid, identifiers) -> None:
    print("=== 3. Normal-form 4-colouring (synthesised at k = 3, Section 7) ===")
    algorithm = load_four_colouring_algorithm()
    result = algorithm.run(grid, identifiers)
    check = verify_proper_vertex_colouring(grid, result.node_labels, 4)
    print(f"  proper 4-colouring: {check.valid}; rounds: {result.rounds}; "
          f"lookup table of {len(algorithm.rule.table)} tiles (k={algorithm.k})")
    used = sorted({colour for colour in result.node_labels.values()})
    print(f"  colours used: {used}\n")


def global_contrast(grid: ToroidalGrid) -> None:
    print("=== 4. The global side: 3-colouring needs Θ(n) rounds (Theorem 9) ===")
    result = global_three_colouring(grid)
    check = verify_proper_vertex_colouring(grid, result.node_labels, 3)
    print(f"  3-colouring valid: {check.valid}; rounds charged: {result.rounds} "
          f"(the grid diameter — the cost of gathering the whole instance)")


def main() -> None:
    cycles_warm_up()
    grid = ToroidalGrid.square(24)
    identifiers = random_identifiers(grid, seed=7)
    anchors_demo(grid, identifiers)
    four_colouring_demo(grid, identifiers)
    global_contrast(grid)


if __name__ == "__main__":
    main()
