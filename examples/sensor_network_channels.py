"""Channel assignment in a toroidal sensor mesh — the problems in context.

Run with::

    python examples/sensor_network_channels.py

The paper's introduction motivates grids as the topology of "grid-like
systems with local dynamics".  This example dresses two of the paper's
concrete problems in that practical setting.  Consider a wrap-around mesh of
wireless sensors (a torus, so there are no border effects) in which

* each sensor needs a *broadcast channel* that differs from all four
  neighbours' channels — a proper vertex colouring: with 4 channels the
  assignment can be computed purely locally in Θ(log* n) rounds, while with
  3 channels any protocol must coordinate across the whole mesh (Theorem 9);
* each link needs a *TDMA slot* that differs from every other link sharing
  an endpoint — a proper edge colouring: 2d + 1 = 5 slots suffice locally
  (Theorem 15), whereas 4 slots are impossible whenever the mesh has odd
  side length (Theorem 21);
* the slot/channel coordinators ("cluster heads") themselves form an
  anchor set — a maximal independent set in a power of the mesh — which is
  exactly the problem-independent part ``S_k`` of the paper's normal form.
"""

from repro.colouring.impossibility import edge_colouring_parity_obstruction
from repro.colouring.vertex_global import global_three_colouring
from repro.core.verifier import verify_proper_vertex_colouring
from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.symmetry.mis import compute_anchors
from repro.synthesis.pretrained import load_four_colouring_algorithm
from repro.utils.math import log_star


def broadcast_channels(grid: ToroidalGrid, identifiers) -> None:
    print("=== Broadcast channels (vertex colouring) ===")
    local = load_four_colouring_algorithm()
    result = local.run(grid, identifiers)
    ok = verify_proper_vertex_colouring(grid, result.node_labels, 4).valid
    print(f"  4 channels, local protocol : valid={ok}, rounds={result.rounds} "
          f"(log* n = {log_star(grid.sides[0])})")

    global_result = global_three_colouring(grid)
    ok3 = verify_proper_vertex_colouring(grid, global_result.node_labels, 3).valid
    print(f"  3 channels, global protocol: valid={ok3}, rounds={global_result.rounds} "
          "(must gather the whole mesh; no local protocol exists, Theorem 9)")


def cluster_heads(grid: ToroidalGrid, identifiers) -> None:
    print("\n=== Cluster heads (anchors = MIS of G^(k)) ===")
    for k in (2, 3):
        anchors = compute_anchors(grid, identifiers, k=k)
        coverage = grid.node_count / len(anchors.members)
        print(f"  k={k}: {len(anchors.members)} cluster heads "
              f"(one per ~{coverage:.1f} sensors), elected in {anchors.rounds} rounds")


def tdma_slots(grid: ToroidalGrid) -> None:
    print("\n=== TDMA slots (edge colouring) ===")
    obstruction = edge_colouring_parity_obstruction(grid, 4)
    if obstruction is None:
        print("  4 slots: not excluded by parity on this mesh (even size)")
    else:
        print(f"  4 slots impossible: {obstruction}")
    print("  5 slots: always achievable locally (Theorem 15); see "
          "benchmarks/test_bench_edge_colouring.py for the full run on a 96x96 mesh")


def main() -> None:
    grid = ToroidalGrid.square(27)  # odd side: the 4-slot TDMA obstruction applies
    identifiers = random_identifiers(grid, seed=2026)
    broadcast_channels(grid, identifiers)
    cluster_heads(grid, identifiers)
    tdma_slots(grid)


if __name__ == "__main__":
    main()
