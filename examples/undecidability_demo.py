"""The undecidability construction ``L_M`` in action (Section 6, Theorem 3).

Run with::

    python examples/undecidability_demo.py

For a Turing machine ``M`` the problem ``L_M`` asks for either a proper
3-colouring (always possible, always global) or an "anchored" labelling in
which every anchor is the corner of a complete execution table of ``M``.
When ``M`` halts the anchored labelling exists and can be produced in
Θ(log* n) rounds; when it does not, the anchored branch is impossible and
only the global branch remains — so a decision procedure for "local or
global?" would solve the halting problem.

The script builds both sides for a halting and a non-halting machine and
checks everything with the local-rule verifier.
"""

from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.errors import UnsolvableInstanceError
from repro.undecidability.lm_problem import check_lm_labelling, lm_problem_description
from repro.undecidability.lm_solver import solve_lm_globally, solve_lm_locally
from repro.undecidability.turing import busy_machine, halting_machine, non_halting_machine


def show_machine(machine, grid, identifiers) -> None:
    print(f"--- {lm_problem_description(machine)} ---")
    table = machine.run(64)
    if table.halted:
        print(f"  the machine halts after {table.steps} steps")
    else:
        print("  the machine does not halt (within 64 simulated steps)")

    try:
        labels, result = solve_lm_locally(grid, identifiers, machine)
        violations = check_lm_labelling(grid, machine, labels)
        anchors = result.metadata["anchor_count"]
        print(f"  anchored (P2) branch: {anchors} anchors, rounds={result.rounds}, "
              f"checker violations={len(violations)}")
    except UnsolvableInstanceError as error:
        print(f"  anchored (P2) branch unavailable: {error}")

    labels, result = solve_lm_globally(grid, machine)
    violations = check_lm_labelling(grid, machine, labels)
    print(f"  global (P1) branch: rounds={result.rounds}, checker violations={len(violations)}")
    print()


def main() -> None:
    grid = ToroidalGrid.square(40)
    identifiers = random_identifiers(grid, seed=11)
    for machine in (halting_machine(), busy_machine(), non_halting_machine()):
        show_machine(machine, grid, identifiers)
    print("Deciding which machines admit the fast branch is exactly the halting problem —")
    print("this is why classifying Θ(log* n) versus Θ(n) on grids is undecidable (Theorem 3).")


if __name__ == "__main__":
    main()
