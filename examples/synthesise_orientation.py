"""Automated algorithm synthesis for edge orientations (Section 7, Lemma 23).

Run with::

    python examples/synthesise_orientation.py

The script performs the complete synthesis pipeline for the
``{1,3,4}``-orientation problem — the concrete problem the paper solves with
``k = 1`` — and then uses the synthesised rule on grids of several sizes:

1. enumerate the anchor tiles for ``k = 1`` and build the tile
   neighbourhood graph,
2. solve the constraint-satisfaction problem assigning an orientation label
   to every tile (the finite function ``A'``),
3. run the resulting normal-form algorithm ``A' ∘ S_1`` on toroidal grids
   with random identifiers and verify every output,
4. show that flipping all edges turns the result into a
   ``{0,1,3}``-orientation (the paper's other Θ(log* n) case).

A global problem (``{0,4}``-orientation) is also pushed through the same
loop to show what failure looks like: the search exhausts its budget
without ever finding a rule.
"""

from repro.core.verifier import verify_node_labelling
from repro.grid.identifiers import random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.orientation.algorithms import flip_orientation_labelling
from repro.orientation.problems import in_degrees_from_labels, x_orientation_problem
from repro.synthesis.lookup import build_lookup_algorithm
from repro.synthesis.synthesiser import synthesise_with_budget
from repro.synthesis.tile_graph import build_tile_graph


def synthesise_and_run() -> None:
    problem = x_orientation_problem({1, 3, 4})
    print(f"Synthesising an algorithm for {problem.name} ...")
    search = synthesise_with_budget(problem, max_k=1)
    for attempt in search.attempts:
        print(f"  attempt: {attempt.certificate}")
    outcome = search.best
    graph = build_tile_graph(outcome.width, outcome.height, outcome.k)
    print(f"  tile graph: {graph.tile_count} tiles, "
          f"{len(graph.horizontal_pairs)} horizontal and {len(graph.vertical_pairs)} vertical pairs")

    algorithm = build_lookup_algorithm(outcome)
    flipped_problem = x_orientation_problem({0, 1, 3})
    for n in (10, 16, 22):
        grid = ToroidalGrid.square(n)
        identifiers = random_identifiers(grid, seed=n)
        result = algorithm.run(grid, identifiers)
        valid = verify_node_labelling(grid, problem, result.node_labels).valid
        degrees = sorted(set(in_degrees_from_labels(grid, result.node_labels).values()))
        flipped = flip_orientation_labelling(result.node_labels)
        flipped_valid = verify_node_labelling(grid, flipped_problem, flipped).valid
        print(f"  n={n:3d}: valid={valid}, in-degrees used={degrees}, "
              f"rounds={result.rounds}, flipped {{0,1,3}} valid={flipped_valid}")


def show_failure_for_a_global_problem() -> None:
    problem = x_orientation_problem({0, 4})
    print(f"\nTrying the same loop on the global problem {problem.name} ...")
    search = synthesise_with_budget(problem, max_k=2)
    for attempt in search.attempts:
        print(f"  attempt: {attempt.certificate}")
    print("  as expected, no rule exists — the problem is global (Theorem 22).")


def main() -> None:
    synthesise_and_run()
    show_failure_for_a_global_problem()


if __name__ == "__main__":
    main()
