"""Order-invariant algorithms and identifier-independence checks.

Naor and Stockmeyer proved that constant-time LCL algorithms can be made
*order-invariant*: their output may depend only on the relative order of the
identifiers in the view, not on their numeric values.  On toroidal grids
this collapses further — only trivial problems (those admitting a constant
feasible labelling) are solvable in constant time.

This module provides the order-normalisation helper and a practical checker
that runs an algorithm under several identifier assignments and verifies the
outputs agree wherever order-invariance demands it.  The checker is used in
tests and as empirical evidence in the classification experiments.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Sequence, Tuple

from repro.grid.identifiers import IdentifierAssignment
from repro.grid.torus import Node, ToroidalGrid
from repro.local_model.views import NeighbourhoodView

Offset = Tuple[int, ...]


def order_normalise_view(view: NeighbourhoodView) -> Dict[Offset, int]:
    """Replace the identifiers of a view by their relative ranks.

    The node whose identifier is smallest receives rank 0, the next one
    rank 1, and so on.  Two views with the same ranks are indistinguishable
    to an order-invariant algorithm.
    """
    ordered = sorted(view.identifiers.items(), key=lambda item: item[1])
    ranks: Dict[Offset, int] = {}
    for rank, (offset, _identifier) in enumerate(ordered):
        ranks[offset] = rank
    return ranks


def order_pattern(view: NeighbourhoodView) -> Tuple[Tuple[Offset, int], ...]:
    """Return a hashable canonical form of the order-normalised view."""
    ranks = order_normalise_view(view)
    return tuple(sorted(ranks.items()))


def is_order_invariant(
    algorithm: Callable[[ToroidalGrid, IdentifierAssignment], Mapping[Node, Any]],
    grid: ToroidalGrid,
    assignments: Sequence[IdentifierAssignment],
) -> bool:
    """Check whether ``algorithm`` gives the same outputs under order-equivalent ids.

    The supplied identifier assignments should induce the same relative
    order on every node pair (e.g. a row-major assignment and the same
    assignment with all identifiers doubled).  If the outputs differ for any
    node, the algorithm is using numeric identifier values and is therefore
    not order-invariant.
    """
    if len(assignments) < 2:
        raise ValueError("need at least two identifier assignments to compare")
    reference = algorithm(grid, assignments[0])
    for assignment in assignments[1:]:
        other = algorithm(grid, assignment)
        for node in grid.nodes():
            if reference[node] != other[node]:
                return False
    return True


def monotone_relabelling(assignment: IdentifierAssignment, stretch: int = 3, shift: int = 17) -> IdentifierAssignment:
    """Return an order-equivalent assignment with different numeric values.

    The map ``id -> stretch * id + shift`` is strictly increasing, so the
    relative order of any set of identifiers is preserved while every numeric
    value changes.  Feeding both assignments to :func:`is_order_invariant`
    is the standard way to exercise the Naor–Stockmeyer property.
    """
    if stretch <= 0:
        raise ValueError("stretch must be positive to preserve order")
    return IdentifierAssignment(
        {node: stretch * value + shift for node, value in assignment.items()}
    )
