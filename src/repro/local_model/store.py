"""List-backed node labellings with a dict-compatible interface.

The dict-based simulator represents a labelling as ``Dict[Node, Any]`` and
pays a tuple hash per read.  A :class:`LabelStore` keeps the values in a
flat list ordered by a :class:`repro.grid.indexer.GridIndexer` and exposes
the full ``Mapping`` protocol, so existing :class:`LocalRule` code,
stopping predicates and verifiers keep working unchanged while the fast
path operates on the list directly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, MutableMapping

from repro.errors import SimulationError
from repro.grid.indexer import GridIndexer
from repro.grid.torus import Node, ToroidalGrid


class LabelStore(MutableMapping):
    """A total labelling of a grid, stored as a flat list of values.

    The store is *total*: every node of the grid has a value, and entries
    cannot be deleted — exactly the invariant the synchronous simulator
    relies on.  Reads and writes accept coordinate-tuple nodes, so the
    store is a drop-in replacement for ``Dict[Node, Any]``.
    """

    __slots__ = ("_indexer", "_values")

    def __init__(self, indexer: GridIndexer, values: List[Any]):
        if len(values) != indexer.node_count:
            raise SimulationError(
                f"label store needs one value per node: got {len(values)} "
                f"values for {indexer.node_count} nodes"
            )
        self._indexer = indexer
        self._values = values

    @classmethod
    def from_mapping(
        cls, grid_or_indexer, mapping: Mapping[Node, Any]
    ) -> "LabelStore":
        """Build a store from any node-keyed mapping (must be total)."""
        indexer = _as_indexer(grid_or_indexer)
        return cls(indexer, indexer.to_values(mapping))

    @classmethod
    def filled(cls, grid_or_indexer, value: Any) -> "LabelStore":
        """Build a store assigning ``value`` to every node."""
        indexer = _as_indexer(grid_or_indexer)
        return cls(indexer, [value] * indexer.node_count)

    @property
    def indexer(self) -> GridIndexer:
        """The indexer defining the node order of the backing list."""
        return self._indexer

    @property
    def values_list(self) -> List[Any]:
        """The backing list (values in flat-index order); shared, not copied."""
        return self._values

    def to_dict(self) -> Dict[Node, Any]:
        """Materialise the labelling as a plain ``Dict[Node, Any]``."""
        return self._indexer.to_mapping(self._values)

    # ------------------------------------------------------------------ #
    # Mapping protocol
    # ------------------------------------------------------------------ #

    def __getitem__(self, node: Node) -> Any:
        return self._values[self._indexer.index_of(node)]

    def __setitem__(self, node: Node, value: Any) -> None:
        self._values[self._indexer.index_of(node)] = value

    def __delitem__(self, node: Node) -> None:
        raise SimulationError(
            "a LabelStore is a total labelling; entries cannot be deleted"
        )

    def __iter__(self) -> Iterator[Node]:
        return iter(self._indexer.nodes)

    def __len__(self) -> int:
        return self._indexer.node_count

    def __contains__(self, node: object) -> bool:
        try:
            self._indexer.index_of(node)  # type: ignore[arg-type]
        except (KeyError, TypeError):
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"LabelStore({self._indexer.grid!r}, "
            f"{self._indexer.node_count} values)"
        )


def _as_indexer(grid_or_indexer) -> GridIndexer:
    if isinstance(grid_or_indexer, GridIndexer):
        return grid_or_indexer
    if isinstance(grid_or_indexer, ToroidalGrid):
        return GridIndexer.for_grid(grid_or_indexer)
    raise TypeError(
        f"expected a ToroidalGrid or GridIndexer, got {type(grid_or_indexer).__name__}"
    )
