"""List- and array-backed node labellings with a dict-compatible interface.

The dict-based simulator represents a labelling as ``Dict[Node, Any]`` and
pays a tuple hash per read.  This module provides the storage layers of the
two fast engine tiers:

* :class:`LabelStore` (the ``"indexed"`` tier) keeps the values in a flat
  list ordered by a :class:`repro.grid.indexer.GridIndexer`;
* :class:`ArrayLabelStore` (the ``"array"`` tier) keeps them as a numpy
  ``int32`` code vector, with a :class:`LabelCodec` interning the finite
  label alphabet into contiguous codes.

Both expose the full ``Mapping`` protocol, so existing :class:`LocalRule`
code, stopping predicates and verifiers keep working unchanged while the
fast paths operate on the list / array directly.  The array tier degrades
gracefully: when numpy is unavailable, :func:`resolve_engine` falls back to
``"indexed"`` and constructing an :class:`ArrayLabelStore` raises a clear
:class:`repro.errors.SimulationError`.

The ``int32`` code vector is also the wire format of the ``"shm"`` engine
tier (:mod:`repro.runtime`): :func:`export_codes_into` publishes a
labelling into a shared-memory buffer, :func:`merge_codes_from_shared` /
:meth:`ArrayLabelStore.from_shared` copy a finished round back out into
owned memory, and :meth:`LabelCodec.labels_since` /
:meth:`LabelCodec.extend` / :meth:`LabelCodec.try_encode` implement the
append-only alphabet sync between the parent's authoritative codec and the
workers' fork-time copies.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Any, Dict, Iterator, List, Mapping, MutableMapping, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.grid.indexer import GridIndexer
from repro.grid.topology import Topology
from repro.grid.torus import Node, ToroidalGrid
from repro.observability.decision import DecisionRecorder

try:  # numpy is an optional dependency: only the "array" tier needs it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

HAS_NUMPY = _np is not None

try:  # the "shm" tier's transport; absent only on exotic platforms.
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exercised on exotic platforms only
    _shared_memory = None

HAS_SHARED_MEMORY = _shared_memory is not None


def require_numpy():
    """Return the numpy module, raising a clear error when it is missing."""
    if _np is None:  # pragma: no cover - exercised only on numpy-less installs
        raise SimulationError(
            "the 'array' engine tier requires numpy, which is not installed; "
            "use engine='indexed' or engine='dict' instead"
        )
    return _np


#: Environment variable overriding the worker count of the ``parallel``
#: and ``shm`` engine tiers.  ``0`` or ``1`` disable sharding (serial
#: execution; the shm tier then degrades with a one-time warning).
WORKERS_VARIABLE = "REPRO_WORKERS"

#: Smallest node count for which ``engine="auto"`` considers the
#: ``parallel`` tier (when the caller allows it and more than one worker
#: is available).  Below this, per-round fork overhead dominates any
#: sharding gain; above it, non-vectorisable rules win roughly linearly
#: in the worker count.
PARALLEL_AUTO_THRESHOLD = 1 << 14

#: Smallest node count for which ``engine="auto"`` considers the ``shm``
#: tier (sides >= 1024 on a square torus).  The persistent pool amortises
#: its one-time spawn over many rounds, but each round still pays the
#: task-message barrier; below this size the per-round ``fork`` of the
#: ``parallel`` tier (or the serial scans) are already fast enough.
SHM_AUTO_THRESHOLD = 1 << 20


def shm_available() -> bool:
    """Whether the platform can run the ``shm`` engine tier at all.

    Requires numpy (labellings are ``int32`` code vectors),
    :mod:`multiprocessing.shared_memory` and the ``fork`` start method
    (workers inherit the codec, rules and index tables at pool start).
    Worker-count degradation (``REPRO_WORKERS=0``/``1``) is handled by the
    engine itself, not here.
    """
    return (
        HAS_NUMPY
        and HAS_SHARED_MEMORY
        and "fork" in multiprocessing.get_all_start_methods()
    )


def parallel_workers(requested: Optional[int] = None) -> int:
    """Resolve the worker count of the ``parallel`` engine tier.

    Precedence: an explicit ``requested`` count, then the
    :data:`WORKERS_VARIABLE` environment variable (``REPRO_WORKERS``),
    then ``os.cpu_count()``.  ``0`` and ``1`` are valid and mean "do not
    shard" — the parallel tier then degrades to the serial indexed scan.
    """
    if requested is None:
        raw = os.environ.get(WORKERS_VARIABLE)
        if raw is None:
            return os.cpu_count() or 1
        try:
            requested = int(raw)
        except ValueError:
            raise SimulationError(
                f"{WORKERS_VARIABLE} must be an integer worker count, got {raw!r}"
            ) from None
    if requested < 0:
        raise SimulationError(f"worker count must be non-negative, got {requested}")
    return requested


def resolve_engine(
    engine: str,
    allowed: Tuple[str, ...] = ("dict", "indexed", "array"),
    node_count: Optional[int] = None,
    rules: Optional[Sequence[Any]] = None,
) -> str:
    """Resolve an ``engine`` argument, mapping ``"auto"`` to the fastest tier.

    ``"auto"`` walks the tiers top down: ``"shm"`` when the caller allows
    that tier, supplies a ``node_count`` of at least
    :data:`SHM_AUTO_THRESHOLD`, the platform supports it
    (:func:`shm_available`) and more than one worker is available; else
    ``"parallel"`` under the analogous conditions with
    :data:`PARALLEL_AUTO_THRESHOLD`; otherwise ``"array"`` when numpy is
    importable and ``"indexed"`` as the last resort.  When the caller
    additionally passes the ``rules`` the schedule will run, the sharded
    rungs are only taken when at least one of those rules is actually
    sharding-eligible (declared ``parallel_safe``, or — under
    ``REPRO_STATICS_AUTOPROVE=1`` — interprocedurally ``PROVEN_SAFE``;
    see :func:`repro.local_model.algorithm.sharding_eligible`): spawning
    workers that every round would bypass wins nothing and costs a pool.
    Explicit engine names are validated against ``allowed``; an explicit
    ``"shm"`` on a numpy-less install degrades (with a one-time warning)
    to the best allowed fallback — ``"parallel"`` then ``"indexed"`` —
    because the shm tier's code-vector transport cannot exist without
    numpy.  The remaining shm preconditions (worker count, fork, shared
    memory) are checked by the engine itself per application, so a
    requested ``"shm"`` stays byte-identical on every platform.

    Every call records a structured decision trace — each rung reached
    and the predicate that accepted or rejected it — queryable via
    :func:`repro.observability.decision.last_decision` and emitted as a
    ``resolve_engine`` instant on the active tracer.  Recording never
    changes the walk: in particular :func:`parallel_workers` is still
    evaluated only on the rungs that always evaluated it, so a bad
    ``REPRO_WORKERS`` raises in exactly the same cases as before.
    """
    recorder = DecisionRecorder(engine, allowed, node_count=node_count)
    if engine == "auto":
        workers: Optional[int] = None
        want_shards = True
        if rules is not None and (
            "shm" in allowed or "parallel" in allowed
        ):
            # Imported lazily: algorithm imports this module at top level.
            from repro.local_model.algorithm import sharding_eligible

            want_shards = any(sharding_eligible(rule) for rule in rules)
            if not want_shards:
                for tier in ("shm", "parallel"):
                    if tier in allowed:
                        recorder.rung(
                            tier, False, "no schedule rule is sharding-eligible"
                        )
        if node_count is not None and want_shards:
            if "shm" in allowed:
                if node_count < SHM_AUTO_THRESHOLD:
                    recorder.rung(
                        "shm",
                        False,
                        f"node_count {node_count} < SHM_AUTO_THRESHOLD {SHM_AUTO_THRESHOLD}",
                    )
                elif not shm_available():
                    recorder.rung(
                        "shm",
                        False,
                        "platform lacks numpy, POSIX shared memory or fork",
                    )
                else:
                    workers = parallel_workers()
                    if workers > 1:
                        recorder.rung(
                            "shm",
                            True,
                            f"node_count {node_count} >= SHM_AUTO_THRESHOLD with {workers} workers",
                        )
                        recorder.finish("shm", workers=workers)
                        return "shm"
                    recorder.rung(
                        "shm", False, f"only {workers} worker(s) configured"
                    )
            if "parallel" in allowed:
                if node_count >= PARALLEL_AUTO_THRESHOLD:
                    if workers is None:
                        workers = parallel_workers()
                    if workers > 1:
                        recorder.rung(
                            "parallel",
                            True,
                            f"node_count {node_count} >= PARALLEL_AUTO_THRESHOLD "
                            f"with {workers} workers",
                        )
                        recorder.finish("parallel", workers=workers)
                        return "parallel"
                    recorder.rung(
                        "parallel", False, f"only {workers} worker(s) configured"
                    )
                else:
                    recorder.rung(
                        "parallel",
                        False,
                        f"node_count {node_count} < PARALLEL_AUTO_THRESHOLD "
                        f"{PARALLEL_AUTO_THRESHOLD}",
                    )
        elif node_count is None and want_shards:
            for tier in ("shm", "parallel"):
                if tier in allowed:
                    recorder.rung(tier, False, "caller supplied no node_count")
        if "array" in allowed:
            if HAS_NUMPY:
                recorder.rung("array", True, "numpy is importable")
                recorder.finish("array", workers=workers)
                return "array"
            recorder.rung("array", False, "numpy is not importable")
        if "indexed" in allowed:
            recorder.rung("indexed", True, "last resort before the dict oracle")
            recorder.finish("indexed", workers=workers)
            return "indexed"
        recorder.rung("dict", True, "only remaining allowed tier")
        recorder.finish("dict", workers=workers)
        return "dict"
    if engine not in allowed:
        raise ValueError(
            f"unknown engine {engine!r}; expected 'auto' or one of {sorted(allowed)}"
        )
    if engine == "shm" and not HAS_NUMPY:  # pragma: no cover - numpy-less installs
        fallback = "parallel" if "parallel" in allowed else "indexed"
        _warn_shm_unavailable_once(
            f"engine='shm' requires numpy, which is not installed; "
            f"running on engine={fallback!r} instead"
        )
        recorder.rung("shm", False, "engine='shm' requires numpy, which is not installed")
        recorder.rung(fallback, True, "best allowed fallback for a numpy-less shm request")
        recorder.finish(fallback)
        return fallback
    recorder.rung(engine, True, "explicitly requested")
    recorder.finish(engine)
    return engine


def resolve_vector_engine(engine: str) -> str:
    """Resolve ``engine`` for consumers whose fast path is one vector pass.

    Border counts, segment colouring, anchor-rule sweeps and
    conflict-colouring rounds accept the full five-tier vocabulary so call
    sites can thread one ``engine=`` value through a whole algorithm, but
    their work is a single vectorised sweep — there are no multi-round
    sharded rule scans for the ``parallel`` or ``shm`` tiers to win on, so
    both resolve to the ``array`` tier here (or its indexed fallback when
    numpy is missing).
    """
    allowed = ("dict", "indexed", "array", "parallel", "shm")
    resolved = resolve_engine(engine, allowed=allowed)
    recorder = DecisionRecorder(engine, allowed, vector=True)
    if resolved in ("parallel", "shm"):
        vector = "array" if HAS_NUMPY else "indexed"
        recorder.rung(
            resolved,
            False,
            "single vectorised sweep: sharded tiers have no multi-round scans to win on",
        )
        recorder.rung(vector, True, f"vector twin of the {resolved!r} tier")
        recorder.finish(vector)
        return vector
    recorder.rung(resolved, True, "already a vector-capable tier")
    recorder.finish(resolved)
    return resolved


_SHM_UNAVAILABLE_WARNED = False


def _warn_shm_unavailable_once(message: str) -> None:
    """Warn once per process that a requested shm tier is degrading."""
    global _SHM_UNAVAILABLE_WARNED
    if _SHM_UNAVAILABLE_WARNED:
        return
    _SHM_UNAVAILABLE_WARNED = True
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def merge_chunk_values(
    chunks: Sequence[Tuple[int, Sequence[Any]]], expected_length: int
) -> List[Any]:
    """Merge contiguous ``(start, values)`` chunks into one flat value list.

    The chunks may arrive in any order (workers complete asynchronously);
    they must tile ``0 .. expected_length`` exactly — a gap, overlap or
    length mismatch raises :class:`repro.errors.SimulationError` instead of
    silently misassigning labels to nodes.
    """
    merged: List[Any] = []
    for start, values in sorted(chunks, key=lambda chunk: chunk[0]):
        if start != len(merged):
            raise SimulationError(
                f"chunk starting at index {start} does not continue the "
                f"merged prefix of length {len(merged)}"
            )
        merged.extend(values)
    if len(merged) != expected_length:
        raise SimulationError(
            f"merged chunks cover {len(merged)} nodes, expected {expected_length}"
        )
    return merged


class LabelStore(MutableMapping):
    """A total labelling of a grid, stored as a flat list of values.

    The store is *total*: every node of the grid has a value, and entries
    cannot be deleted — exactly the invariant the synchronous simulator
    relies on.  Reads and writes accept coordinate-tuple nodes, so the
    store is a drop-in replacement for ``Dict[Node, Any]``.
    """

    __slots__ = ("_indexer", "_values")

    def __init__(self, indexer: Topology, values: List[Any]):
        if len(values) != indexer.node_count:
            raise SimulationError(
                f"label store needs one value per node: got {len(values)} "
                f"values for {indexer.node_count} nodes"
            )
        self._indexer = indexer
        self._values = values

    @classmethod
    def from_mapping(
        cls, grid_or_indexer, mapping: Mapping[Node, Any]
    ) -> "LabelStore":
        """Build a store from any node-keyed mapping (must be total)."""
        indexer = _as_indexer(grid_or_indexer)
        return cls(indexer, indexer.to_values(mapping))

    @classmethod
    def filled(cls, grid_or_indexer, value: Any) -> "LabelStore":
        """Build a store assigning ``value`` to every node."""
        indexer = _as_indexer(grid_or_indexer)
        return cls(indexer, [value] * indexer.node_count)

    @property
    def indexer(self) -> Topology:
        """The topology defining the node order of the backing list."""
        return self._indexer

    @property
    def values_list(self) -> List[Any]:
        """The backing list (values in flat-index order); shared, not copied.

        This is also the zero-copy snapshot the ``parallel`` engine tier
        ships to forked workers: under ``fork`` the list is inherited
        through copy-on-write memory without any serialisation, and the
        workers treat it as read-only.
        """
        return self._values

    def to_dict(self) -> Dict[Node, Any]:
        """Materialise the labelling as a plain ``Dict[Node, Any]``."""
        return self._indexer.to_mapping(self._values)

    # ------------------------------------------------------------------ #
    # Mapping protocol
    # ------------------------------------------------------------------ #

    def __getitem__(self, node: Node) -> Any:
        return self._values[self._indexer.index_of(node)]

    def __setitem__(self, node: Node, value: Any) -> None:
        self._values[self._indexer.index_of(node)] = value

    def __delitem__(self, node: Node) -> None:
        raise SimulationError(
            "a LabelStore is a total labelling; entries cannot be deleted"
        )

    def __iter__(self) -> Iterator[Node]:
        return iter(self._indexer.nodes)

    def __len__(self) -> int:
        return self._indexer.node_count

    def __contains__(self, node: object) -> bool:
        try:
            self._indexer.index_of(node)  # type: ignore[arg-type]
        except (KeyError, TypeError):
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"LabelStore({self._indexer.grid!r}, "
            f"{self._indexer.node_count} values)"
        )


class LabelCodec:
    """Interns a finite label alphabet into contiguous ``int32`` codes.

    Codes are assigned in first-seen order and are *append-only*: encoding a
    new label never changes the code of an already-interned one, so code
    arrays produced earlier stay valid as the alphabet grows (alphabet
    growth only invalidates compiled rule tables, which the engine detects
    by comparing :attr:`size`).  Labels may be any hashable objects;
    decoding returns the exact interned object.
    """

    __slots__ = ("_codes", "_labels", "_label_array")

    def __init__(self, alphabet: Sequence[Any] = ()):
        self._codes: Dict[Any, int] = {}
        self._labels: List[Any] = []
        self._label_array = None  # lazily rebuilt numpy view of _labels
        for label in alphabet:
            self.encode(label)

    @property
    def size(self) -> int:
        """Number of interned labels (codes are ``0 .. size-1``)."""
        return len(self._labels)

    @property
    def labels(self) -> Tuple[Any, ...]:
        """All interned labels in code order."""
        return tuple(self._labels)

    def encode(self, label: Any) -> int:
        """Return the code of ``label``, interning it if new."""
        code = self._codes.get(label)
        if code is None:
            code = len(self._labels)
            self._codes[label] = code
            self._labels.append(label)
            self._label_array = None
        return code

    def try_encode(self, label: Any) -> Optional[int]:
        """Return the code of ``label`` without interning, ``None`` if unknown.

        This is the worker-side encode of the ``shm`` engine tier: workers
        hold a fork-time copy of the codec and must never assign codes on
        their own (two workers would race to different assignments for the
        same label), so an unknown label is reported back as overflow and
        interned once by the parent.  Unhashable labels are likewise
        ``None`` — the parent's :meth:`encode` then raises the same
        ``TypeError`` every other tier raises.
        """
        try:
            return self._codes.get(label)
        except TypeError:
            return None

    def labels_since(self, size: int) -> Tuple[Any, ...]:
        """The labels interned at code ``size`` and above (append order).

        The codec is append-only, so ``labels_since(n)`` is exactly the
        delta a worker whose fork-time snapshot had ``n`` labels must
        :meth:`extend` by to decode current code vectors.  Costs
        ``O(delta)``, not ``O(size)``.
        """
        if size < 0 or size > len(self._labels):
            raise SimulationError(
                f"codec sync point {size} is outside the interned range "
                f"0..{len(self._labels)}"
            )
        return tuple(self._labels[size:])

    def extend(self, labels: Sequence[Any]) -> None:
        """Intern ``labels`` in order (the worker-side half of a codec sync).

        Equivalent to encoding each label; labels already interned keep
        their codes (append-only), so replaying a delta is idempotent.
        """
        for label in labels:
            self.encode(label)

    def decode(self, code: int) -> Any:
        """Return the label interned with ``code``."""
        try:
            return self._labels[code]
        except IndexError:
            raise SimulationError(
                f"code {code} is not interned in this codec (size {self.size})"
            ) from None

    def __contains__(self, label: object) -> bool:
        try:
            return label in self._codes
        except TypeError:
            return False

    def encode_values(self, values: Sequence[Any]):
        """Encode a value sequence into a fresh ``int32`` code array."""
        np = require_numpy()
        encode = self.encode
        return np.fromiter(
            (encode(value) for value in values), dtype=np.int32, count=len(values)
        )

    def label_array(self):
        """The interned labels as a numpy array indexable by code.

        For numeric alphabets this is a numeric array (so vectorised rules
        can compute on decoded values directly); otherwise it is an object
        array.  Rebuilt lazily after alphabet growth.
        """
        np = require_numpy()
        if self._label_array is None or len(self._label_array) != len(self._labels):
            try:
                array = np.asarray(self._labels)
                if array.ndim != 1 or len(array) != len(self._labels):
                    raise ValueError
            except ValueError:
                array = np.empty(len(self._labels), dtype=object)
                for position, label in enumerate(self._labels):
                    array[position] = label
            self._label_array = array
        return self._label_array

    def decode_values(self, codes) -> List[Any]:
        """Decode an iterable of codes back into the interned label objects."""
        labels = self._labels
        return [labels[int(code)] for code in codes]

    def __repr__(self) -> str:
        return f"LabelCodec({self.size} labels)"


class ArrayLabelStore(MutableMapping):
    """A total labelling stored as a numpy ``int32`` code vector.

    Same ``Mapping`` contract as :class:`LabelStore` — reads and writes
    accept coordinate-tuple nodes and return ordinary label objects, so
    verifiers and stopping predicates work unchanged — while the array
    engine operates on :attr:`codes` with vectorised gathers.  Entries
    cannot be deleted (the labelling is total); writes of new labels grow
    the codec.
    """

    __slots__ = ("_indexer", "_codec", "_codes")

    def __init__(self, indexer: Topology, codec: LabelCodec, codes):
        np = require_numpy()
        codes = np.asarray(codes, dtype=np.int32)
        if codes.shape != (indexer.node_count,):
            raise SimulationError(
                f"array label store needs one code per node: got shape "
                f"{codes.shape} for {indexer.node_count} nodes"
            )
        self._indexer = indexer
        self._codec = codec
        self._codes = codes

    @classmethod
    def from_mapping(
        cls, grid_or_indexer, mapping: Mapping[Node, Any], codec: Optional[LabelCodec] = None
    ) -> "ArrayLabelStore":
        """Build a store from any node-keyed mapping (must be total)."""
        indexer = _as_indexer(grid_or_indexer)
        codec = codec if codec is not None else LabelCodec()
        return cls(indexer, codec, codec.encode_values(indexer.to_values(mapping)))

    @classmethod
    def from_values(
        cls, grid_or_indexer, values: Sequence[Any], codec: Optional[LabelCodec] = None
    ) -> "ArrayLabelStore":
        """Build a store from a flat value list in indexer order."""
        indexer = _as_indexer(grid_or_indexer)
        codec = codec if codec is not None else LabelCodec()
        return cls(indexer, codec, codec.encode_values(list(values)))

    @classmethod
    def from_shared(
        cls, grid_or_indexer, codec: LabelCodec, shared_codes
    ) -> "ArrayLabelStore":
        """Build a store by *copying* a shared-memory code vector out.

        The ``shm`` engine tier's result labellings go through this (via
        :func:`merge_codes_from_shared`): the store must own its memory,
        because the shared segment is recycled for the next round and
        unlinked when the pool shuts down — a view would silently mutate
        under the caller.
        """
        indexer = _as_indexer(grid_or_indexer)
        return cls(indexer, codec, merge_codes_from_shared(shared_codes))

    def export_codes(self, shared_codes) -> None:
        """Copy this labelling's code vector into a shared buffer in place."""
        export_codes_into(self._codes, shared_codes)

    @property
    def indexer(self) -> Topology:
        """The topology defining the node order of the backing array."""
        return self._indexer

    @property
    def codec(self) -> LabelCodec:
        """The codec interning this store's label alphabet."""
        return self._codec

    @property
    def codes(self):
        """The backing ``int32`` code array (shared, not copied)."""
        return self._codes

    @property
    def values_list(self) -> List[Any]:
        """The labelling as a flat value list in indexer order (decoded)."""
        return self._codec.decode_values(self._codes)

    def to_dict(self) -> Dict[Node, Any]:
        """Materialise the labelling as a plain ``Dict[Node, Any]``."""
        return self._indexer.to_mapping(self.values_list)

    # ------------------------------------------------------------------ #
    # Mapping protocol
    # ------------------------------------------------------------------ #

    def __getitem__(self, node: Node) -> Any:
        return self._codec.decode(self._codes[self._indexer.index_of(node)])

    def __setitem__(self, node: Node, value: Any) -> None:
        if not self._codes.flags.writeable:
            # Shm-tier snapshots are read-only (they double as buffer
            # identity tokens, see WorkerPool.submit); the first write
            # transparently switches this store to a private copy.
            self._codes = self._codes.copy()
        self._codes[self._indexer.index_of(node)] = self._codec.encode(value)

    def __delitem__(self, node: Node) -> None:
        raise SimulationError(
            "an ArrayLabelStore is a total labelling; entries cannot be deleted"
        )

    def __iter__(self) -> Iterator[Node]:
        return iter(self._indexer.nodes)

    def __len__(self) -> int:
        return self._indexer.node_count

    def __contains__(self, node: object) -> bool:
        try:
            self._indexer.index_of(node)  # type: ignore[arg-type]
        except (KeyError, TypeError):
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"ArrayLabelStore({self._indexer.grid!r}, "
            f"{self._indexer.node_count} codes, alphabet {self._codec.size})"
        )


def export_codes_into(codes, shared_codes) -> None:
    """Copy a code vector into a shared ``int32`` buffer, in place.

    The parent-side half of one shm round: the current labelling's codes
    are published into the pool's source buffer before the round's task
    messages go out.  Shape mismatches raise instead of silently
    truncating a labelling.
    """
    np = require_numpy()
    source = np.asarray(codes, dtype=np.int32)
    if source.shape != shared_codes.shape:
        raise SimulationError(
            f"cannot export {source.shape} codes into a shared buffer of "
            f"shape {shared_codes.shape}"
        )
    shared_codes[:] = source


def merge_codes_from_shared(shared_codes):
    """Copy a shared ``int32`` code vector out into owned memory.

    The inverse half of :func:`export_codes_into`: the destination buffer
    of a finished round is merged back into the engine as a fresh array,
    so the labelling handed to callers survives buffer reuse and pool
    shutdown.
    """
    np = require_numpy()
    return np.array(shared_codes, dtype=np.int32)


def _as_indexer(grid_or_indexer) -> Topology:
    if isinstance(grid_or_indexer, Topology):
        return grid_or_indexer
    if isinstance(grid_or_indexer, ToroidalGrid):
        return GridIndexer.for_grid(grid_or_indexer)
    raise TypeError(
        f"expected a ToroidalGrid or Topology, got {type(grid_or_indexer).__name__}"
    )
