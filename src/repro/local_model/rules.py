"""A catalogue of concrete helper-structured LCL rules.

Every rule here follows the idiom the interprocedural statics layer is
built for: ``update`` delegates to module-level helper functions instead
of inlining its logic.  Under the old intraprocedural prover each of
these rules was capped at ``UNKNOWN`` (``calls unanalysed global
helper()``); the summary-based analysis (:mod:`repro.statics.callgraph`)
proves them ``PROVEN_SAFE``, and — under ``REPRO_STATICS_AUTOPROVE=1`` —
that proof alone makes them sharding-eligible on the ``parallel``/``shm``
tiers, byte-identical to the dict oracle (pinned by
``tests/test_equivalence_autoprove.py``).

None of the rules declares ``parallel_safe``: that is the point.  The
finite-alphabet rules additionally declare their Σ so the
alphabet-closure analysis (:mod:`repro.statics.alphabets`) can prove
their outputs stay inside it, which the tier report
(``python -m repro.statics --rules``) surfaces as a proven output
alphabet.

The rules themselves are the standard radius-1 building blocks of the
paper's toroidal-grid constructions: neighbourhood minima (the
contagion step of flood-fill arguments), local majority, boundary
detection between constant regions, threshold dynamics on a binary
alphabet, and greedy first-free colouring.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.local_model.algorithm import LabelView, LocalRule

Offset = Tuple[int, ...]


def _origin(view: LabelView) -> Offset:
    """The all-zero offset of ``view`` (the node's own position)."""
    for offset in view.keys():
        return (0,) * len(offset)
    return ()


def _own_label(view: LabelView) -> Any:
    """The node's current label."""
    return view[_origin(view)]


def _min_label(view: LabelView) -> Any:
    """The minimum label in the view, the node's own included."""
    best = _own_label(view)
    for value in view.values():
        if value < best:
            best = value
    return best


def _label_counts(view: LabelView) -> dict:
    """Multiplicity of each label in the view."""
    counts: dict = {}
    for value in view.values():
        counts[value] = counts.get(value, 0) + 1
    return counts


def _most_frequent(counts: dict) -> Any:
    """The most frequent label; ties break towards the smallest label.

    Iterates in sorted label order so the outcome is a deterministic
    function of the multiset alone — a requirement for byte-identical
    results across engine tiers.
    """
    best_value = None
    best_count = 0
    for value, count in sorted(counts.items()):
        if count > best_count:
            best_value = value
            best_count = count
    return best_value


def _count_value(view: LabelView, needle: Any) -> int:
    """How many positions of the view carry ``needle``."""
    count = 0
    for value in view.values():
        if value == needle:
            count = count + 1
    return count


def _differs_from_neighbour(view: LabelView) -> bool:
    """Whether any non-origin position carries a different label."""
    origin = _origin(view)
    own = view[origin]
    for offset, value in sorted(view.items()):
        if offset != origin and value != own:
            return True
    return False


def _first_free(view: LabelView, palette: Tuple[Any, ...]) -> Any:
    """The smallest palette colour not present among the neighbours.

    With ``len(palette)`` exceeding the view size a free colour always
    exists; the final fallback only keeps the function total.
    """
    origin = _origin(view)
    used = _label_counts(view)
    own = view[origin]
    for candidate in palette:
        if candidate == own or candidate not in used:
            return candidate
    return palette[0]


class MinNeighbourRule(LocalRule):
    """Propagate the minimum label seen in the radius-1 view.

    The contagion step of the flood-fill/leader-election arguments: after
    ``diam`` applications every node carries the global minimum.  Works
    over any totally ordered label set, so no alphabet is declared.
    """

    radius = 1

    def update(self, view: LabelView) -> Any:
        return _min_label(view)


class MajorityRule(LocalRule):
    """Replace the node's label by the view's most frequent label.

    Ties break towards the smallest label, making the rule a
    deterministic function of the view (the cross-tier byte-identity
    requirement).  Alphabet-generic, so no Σ is declared.
    """

    radius = 1

    def update(self, view: LabelView) -> Any:
        return _most_frequent(_label_counts(view))


class BorderRule(LocalRule):
    """Mark nodes on the boundary between differently-labelled regions.

    Output alphabet Σ = (``"interior"``, ``"border"``): closure is
    provable because both returns are literals from Σ, whatever the
    input labelling.
    """

    radius = 1
    alphabet = ("interior", "border")

    def update(self, view: LabelView) -> Any:
        if _differs_from_neighbour(view):
            return "border"
        return "interior"


class ThresholdFlipRule(LocalRule):
    """Binary threshold dynamics: become 1 iff the view is majority-1.

    Σ = (0, 1); the closure analysis proves both branches return
    elements of Σ even though the helper's counting loop itself widens.
    """

    radius = 1
    alphabet = (0, 1)

    def update(self, view: LabelView) -> Any:
        ones = _count_value(view, 1)
        return 1 if ones * 2 > len(view) else 0


class GreedyColourRule(LocalRule):
    """Greedy recolouring towards a proper colouring over a 5-palette.

    A radius-1 view on the 2-dimensional torus sees 4 neighbours, so the
    5-colour palette always has a free colour; keeping the own colour
    when it is still free makes fixpoints of the rule proper colourings.
    Σ is the palette, read by the helpers through ``self.alphabet``.
    """

    radius = 1
    alphabet = (0, 1, 2, 3, 4)

    def update(self, view: LabelView) -> Any:
        return _first_free(view, self.alphabet)


#: The catalogue in one place, for tests and reports.
CATALOGUE: List[type] = [
    MinNeighbourRule,
    MajorityRule,
    BorderRule,
    ThresholdFlipRule,
    GreedyColourRule,
]
