"""Radius-``t`` neighbourhood views.

In the LOCAL model a time-``t`` algorithm maps the radius-``t`` view of a
node to its output.  On a consistently oriented toroidal grid a view is
particularly simple: the topology within the ball is known in advance, so
the view consists of, for each displacement vector within distance ``t``,
the identifier and any input labels of the node sitting at that offset.

Views are the *only* way information flows into an algorithm in this
library; a view constructed with radius ``t`` physically cannot leak
information from farther away, which keeps locality honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import SimulationError
from repro.grid.geometry import ball_offsets
from repro.grid.torus import Node, ToroidalGrid

Offset = Tuple[int, ...]


@dataclass(frozen=True)
class NeighbourhoodView:
    """What a single node can see after ``radius`` communication rounds.

    Attributes
    ----------
    radius:
        The number of rounds used to collect the view.
    identifiers:
        Mapping from displacement vectors (relative to the observing node)
        to the unique identifiers of the nodes at those offsets.
    labels:
        Mapping from displacement vectors to auxiliary input labels (for
        example, the anchor indicator bits of a maximal independent set, or
        intermediate colours of an iterative algorithm).  May be empty.
    grid_size:
        The value of ``n`` given to all nodes as input (the paper assumes
        nodes know ``n``).
    """

    radius: int
    identifiers: Mapping[Offset, int]
    labels: Mapping[Offset, Any] = field(default_factory=dict)
    grid_size: Optional[int] = None

    @property
    def own_identifier(self) -> int:
        """Identifier of the observing node (offset zero)."""
        origin = self._origin()
        return self.identifiers[origin]

    @property
    def own_label(self) -> Any:
        """Input label of the observing node, if any."""
        origin = self._origin()
        return self.labels.get(origin)

    def _origin(self) -> Offset:
        if not self.identifiers:
            raise SimulationError(
                "view has an empty identifier map; the observing node's own "
                "offset cannot be located (a view must contain at least the "
                "origin)"
            )
        some_offset = next(iter(self.identifiers))
        return (0,) * len(some_offset)

    def identifier_at(self, offset: Offset) -> int:
        """Identifier of the node at the given displacement."""
        return self.identifiers[offset]

    def label_at(self, offset: Offset, default: Any = None) -> Any:
        """Input label at the given displacement (``default`` if absent)."""
        return self.labels.get(offset, default)

    def offsets(self) -> Tuple[Offset, ...]:
        """All displacement vectors contained in the view."""
        return tuple(self.identifiers.keys())


def collect_view(
    grid: ToroidalGrid,
    node: Node,
    radius: int,
    identifiers: Mapping[Node, int],
    labels: Optional[Mapping[Node, Any]] = None,
    norm: str = "l1",
    grid_size: Optional[int] = None,
) -> NeighbourhoodView:
    """Gather the radius-``radius`` view of ``node``.

    On a torus that is smaller than the ball diameter, several offsets can
    wrap onto the same underlying node; in that case the node legitimately
    "sees around the torus" and the duplicated information is included —
    exactly as it would be in a real execution.

    When ``grid_size`` is not supplied it defaults to the total node count
    ``n`` (the paper's "nodes know n"), which is also correct on
    non-square tori.
    """
    id_view: Dict[Offset, int] = {}
    label_view: Dict[Offset, Any] = {}
    for offset in ball_offsets(grid.dimension, radius, norm):
        target = grid.shift(node, offset)
        id_view[offset] = identifiers[target]
        if labels is not None and target in labels:
            label_view[offset] = labels[target]
    size = grid_size if grid_size is not None else grid.node_count
    return NeighbourhoodView(
        radius=radius,
        identifiers=id_view,
        labels=label_view,
        grid_size=size,
    )


def collect_label_view(
    grid: ToroidalGrid,
    node: Node,
    radius: int,
    labels: Mapping[Node, Any],
    norm: str = "l1",
) -> Dict[Offset, Any]:
    """Return only the labels within ``radius`` of ``node``, keyed by offset.

    This light-weight variant is what the label-rewriting simulator hands to
    :class:`repro.local_model.algorithm.LocalRule` instances; identifiers are
    omitted when a rule declares it does not need them.
    """
    view: Dict[Offset, Any] = {}
    for offset in ball_offsets(grid.dimension, radius, norm):
        target = grid.shift(node, offset)
        view[offset] = labels[target]
    return view
