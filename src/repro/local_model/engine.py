"""Fast-path simulation engines: the ``indexed``, ``array``, ``parallel``
and ``shm`` tiers.

The repository executes LOCAL-model rules through five engine tiers with
identical semantics (asserted byte-identical by the randomized equivalence
suite):

* ``"dict"`` — the seed reference in :mod:`repro.local_model.simulator`:
  per-node ``grid.shift`` calls and coordinate-keyed dicts.  Obviously
  correct, used as the equivalence oracle.
* ``"indexed"`` — :class:`IndexedEngine`: precomputed
  :class:`repro.grid.indexer.GridIndexer` tables turn one application into
  a flat scan ``new[i] = rule.update({offsets[j]: values[table[i][j]]})``.
  No coordinate arithmetic or tuple hashing remains, but each node still
  pays one Python call plus one dict construction per round.
* ``"array"`` — :class:`ArrayEngine`: numpy code vectors
  (:class:`repro.local_model.store.ArrayLabelStore`) remove that per-node
  Python-call floor.  The paper's LCL problems have *finite* alphabets and
  constant-radius balls, so one round is mathematically a fixed gather
  followed by a finite function; the engine exploits exactly that:

  1. when the encoded neighbourhood space ``|Σ|^ball_size`` fits below
     :data:`DEFAULT_TABLE_THRESHOLD`, the rule is *compiled* into a flat
     lookup table and a round becomes ``table[keys(codes[gather])]`` —
     one fancy index, zero Python calls per node;
  2. otherwise, a rule declaring an ``update_batch(neighbourhoods)`` hook
     (see :class:`repro.local_model.algorithm.LocalRule`) is applied
     vectorised over the ``(n, ball_size)`` decoded value matrix;
  3. everything else transparently falls back to the indexed list path
     (still byte-identical, merely not vectorised).

* ``"parallel"`` — :class:`ParallelEngine`: the fourth tier, for the rules
  the array tier *cannot* vectorise (alphabets too large to compile, no
  ``update_batch`` hook).  One round of those is an embarrassingly
  parallel scan over the precomputed index tables, so the engine shards
  the flat node range into contiguous chunks (:func:`plan_chunks`) and
  evaluates each chunk in a forked worker process over shared read-only
  state — the round's value list, the rule and the index tables are
  inherited through ``fork`` without any serialisation.  Chunk results
  merge back in index order; a worker that hits a raising rule reports
  ``(index, exception)`` and the merger re-raises the failure with the
  lowest flat index, so first-failing-node semantics match the sequential
  scan exactly.  Rules the array tier *can* vectorise are delegated to an
  embedded :class:`ArrayEngine` (one fancy index beats any number of
  Python processes), and when workers are unavailable — ``fork`` missing,
  process limits, one CPU, ``REPRO_WORKERS=0``/``1`` — every application
  degrades to the serial indexed scan, byte-identical by construction.

* ``"shm"`` — :class:`ShmEngine`: the fifth tier, for *multi-round*
  schedules of sharded rules at scale (sides >= 1024).  The parallel tier
  pays one ``fork`` of the whole parent (plus pickling every result list
  back) per round; this tier spawns a persistent
  :class:`repro.runtime.pool.WorkerPool` **once**, ships labellings as
  double-buffered ``int32`` code vectors through
  ``multiprocessing.shared_memory`` and drives each round with one small
  task message per worker (see :mod:`repro.runtime` for the buffer/barrier
  protocol).  Vectorisable rules still delegate to the inherited
  :class:`ArrayEngine` paths; exceptions keep sequential
  first-failing-node semantics (workers report their first failing flat
  index, the barrier re-raises the lowest); and every degradation is
  byte-identical with a one-time warning — single worker, missing shared
  memory and pool-*spawn* failures fall back to the ``parallel`` tier's
  per-round forks (and through its own ladder to the serial indexed
  scan), while a pool broken *mid-round* by a dying worker goes straight
  to the serial scan, because a per-round fork pool would hang, not
  fail, on the same rule.

Labellings live in ``Mapping``-compatible stores in every tier, so
user-supplied rules, per-node functions and stopping predicates are engine
agnostic.  :func:`run_schedule` executes a whole multi-phase algorithm —
a sequence of :class:`SchedulePhase` steps — on either fast tier without
re-materialising dicts between phases.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
import warnings
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import SimulationError
from repro.grid.indexer import GridIndexer
from repro.grid.topology import Topology
from repro.grid.torus import Node, ToroidalGrid
from repro.local_model.algorithm import LocalRule, checked_parallel_safe, rule_traits
from repro.local_model.simulator import RoundLedger
from repro.local_model.store import (
    HAS_NUMPY,
    ArrayLabelStore,
    LabelCodec,
    LabelStore,
    merge_chunk_values,
    parallel_workers,
    require_numpy,
    resolve_engine,
    shm_available,
)
from repro.local_model.views import NeighbourhoodView
from repro.observability import metrics as _metrics
from repro.observability import trace as _trace

if TYPE_CHECKING:  # pragma: no cover - the runtime package imports this
    # module's sibling ``store``, so the real import happens lazily inside
    # ShmEngine to keep ``import repro.runtime`` cycle-free.
    from repro.runtime.pool import WorkerPool

Labels = Mapping[Node, Any]
# Engines accept a bare torus (indexed on demand) or any Topology instance
# — a GridIndexer, a directed cycle, a tree, a bounded-degree graph.
GridLike = Union[ToroidalGrid, Topology]

#: Largest encoded neighbourhood space ``|Σ|^ball_size`` for which the
#: array engine precompiles a rule into a flat lookup table.  Compilation
#: costs one ``rule.update`` call per table entry (amortised over every
#: node and round that reuses the table); above the threshold the engine
#: uses the ``update_batch`` hook or falls back to the list path.
DEFAULT_TABLE_THRESHOLD = 1 << 16


def _traced_round(tier: str, rule: LocalRule, runner: Callable[[], Any]) -> Any:
    """Run one round's leaf execution, counted and (when tracing) spanned.

    Every round increments exactly one ``engine_rounds_total{tier=...}``
    series — at the leaf that actually executed, so a degrade path that
    runs two leaves honestly counts both.  With no tracer installed the
    only cost beyond the counter bump is one global read and an ``is
    None`` check (the disabled-path contract of
    :mod:`repro.observability.trace`).
    """
    _metrics.registry().inc("engine_rounds_total", tier=tier)
    tracer = _trace.ACTIVE
    if tracer is None:
        return runner()
    with tracer.span(_trace.SPAN_ROUND, tier=tier, rule=type(rule).__name__):
        return runner()


class IndexedEngine:
    """Fast-path executor bound to one grid's precomputed index tables."""

    def __init__(self, grid_or_indexer: GridLike):
        if isinstance(grid_or_indexer, Topology):
            self.indexer = grid_or_indexer
        else:
            self.indexer = GridIndexer.for_grid(grid_or_indexer)
        self.grid = self.indexer.grid

    # ------------------------------------------------------------------ #
    # Label intake
    # ------------------------------------------------------------------ #

    def store(self, labels: Labels) -> LabelStore:
        """Adopt ``labels`` as a :class:`LabelStore` (copying if needed)."""
        if isinstance(labels, LabelStore) and labels.indexer is self.indexer:
            return labels
        return LabelStore.from_mapping(self.indexer, labels)

    def _values(self, labels: Labels) -> List[Any]:
        if (
            isinstance(labels, (LabelStore, ArrayLabelStore))
            and labels.indexer is self.indexer
        ):
            return labels.values_list
        return self.indexer.to_values(labels)

    # ------------------------------------------------------------------ #
    # Rule execution
    # ------------------------------------------------------------------ #

    def apply_rule(
        self,
        labels: Labels,
        rule: LocalRule,
        ledger: Optional[RoundLedger] = None,
        phase: str = "rule",
    ) -> LabelStore:
        """Indexed counterpart of :func:`repro.local_model.simulator.apply_rule`."""
        values = self._values(labels)
        new_values = self._apply_values(values, rule)
        if ledger is not None:
            ledger.charge(phase, rule.round_cost(self.grid.dimension))
        return LabelStore(self.indexer, new_values)

    def _apply_values(self, values: List[Any], rule: LocalRule) -> List[Any]:
        return _traced_round(
            "list", rule, lambda: self._apply_values_serial(values, rule)
        )

    def _apply_values_serial(self, values: List[Any], rule: LocalRule) -> List[Any]:
        update = rule.update
        offsets, table = self.indexer.ball_table(rule.radius, rule.norm)
        if len(offsets) == 1:
            # Radius-0 ball: gather straight from the shared index column
            # instead of allocating one getter per node.
            offset = offsets[0]
            return [update({offset: values[row[0]]}) for row in table]
        _, getters = self.indexer.ball_getters(rule.radius, rule.norm)
        return [
            update(dict(zip(offsets, gather(values)))) for gather in getters
        ]

    def iterate_rule(
        self,
        labels: Labels,
        rule: LocalRule,
        should_stop: Callable[[Labels], bool],
        max_iterations: int,
        ledger: Optional[RoundLedger] = None,
        phase: str = "iterate",
    ) -> LabelStore:
        """Indexed counterpart of :func:`repro.local_model.simulator.iterate_rule`.

        ``should_stop`` receives a :class:`LabelStore` — a full ``Mapping``
        — so seed-path predicates work unchanged, without any dict being
        rebuilt between iterations.
        """
        current = self.store(labels)
        if should_stop(current):
            return current
        values = list(current.values_list)
        for _ in range(max_iterations):
            values = self._apply_values(values, rule)
            if ledger is not None:
                ledger.charge(phase, rule.round_cost(self.grid.dimension))
            current = LabelStore(self.indexer, values)
            if should_stop(current):
                return current
        raise SimulationError(
            f"rule did not reach its stopping condition within {max_iterations} iterations"
        )

    def run_phase(
        self,
        labels: Labels,
        compute: Callable[[Node, Labels], Any],
        radius: int,
        ledger: Optional[RoundLedger] = None,
        phase: str = "phase",
        norm: str = "l1",
    ) -> LabelStore:
        """Indexed counterpart of :func:`repro.local_model.simulator.run_phase`.

        ``compute(node, visible)`` sees exactly the deduplicated radius-ball
        mapping the dict path provides; a read outside the ball raises
        ``KeyError`` as before, and a partial labelling raises
        :class:`repro.errors.SimulationError` naming the phase, matching the
        dict path's contract.
        """
        try:
            values = self._values(labels)
        except KeyError as error:
            raise SimulationError(
                f"{error.args[0]} in phase {phase!r}; "
                "run_phase requires a total labelling"
            ) from None
        nodes = self.indexer.nodes
        node_table = self.indexer.ball_node_table(radius, norm)
        new_values = [
            compute(node, {nodes[j]: values[j] for j in row})
            for node, row in zip(nodes, node_table)
        ]
        if ledger is not None:
            cost = radius if norm == "l1" else radius * self.grid.dimension
            ledger.charge(phase, cost)
        return LabelStore(self.indexer, new_values)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def collect_label_view(
        self, node: Node, radius: int, labels: Labels, norm: str = "l1"
    ) -> Dict[Any, Any]:
        """Indexed counterpart of :func:`repro.local_model.views.collect_label_view`."""
        values = self._values(labels)
        offsets, table = self.indexer.ball_table(radius, norm)
        row = table[self.indexer.index_of(node)]
        return dict(zip(offsets, [values[j] for j in row]))

    def collect_view(
        self,
        node: Node,
        radius: int,
        identifiers: Mapping[Node, int],
        labels: Optional[Labels] = None,
        norm: str = "l1",
        grid_size: Optional[int] = None,
    ) -> NeighbourhoodView:
        """Indexed counterpart of :func:`repro.local_model.views.collect_view`."""
        id_values = self._values(identifiers)
        offsets, table = self.indexer.ball_table(radius, norm)
        row = table[self.indexer.index_of(node)]
        id_view = dict(zip(offsets, [id_values[j] for j in row]))
        label_view: Dict[Any, Any] = {}
        if labels is not None:
            nodes = self.indexer.nodes
            for offset, j in zip(offsets, row):
                target = nodes[j]
                if target in labels:
                    label_view[offset] = labels[target]
        size = grid_size if grid_size is not None else self.grid.node_count
        return NeighbourhoodView(
            radius=radius,
            identifiers=id_view,
            labels=label_view,
            grid_size=size,
        )


class _CompiledRule:
    """One rule compiled against a snapshot of the codec's alphabet.

    ``table[key]`` holds the output *code* of the neighbourhood whose
    mixed-radix key is ``key`` (codes in ball-offset order, first offset
    most significant).  Entries whose ``rule.update`` raised during
    compilation hold the sentinel ``-1``; hitting one at application time
    re-runs the round on the list path so the exception surfaces exactly
    as the other engines raise it.
    """

    __slots__ = ("alphabet_size", "table", "weights", "has_sentinel", "rule")

    def __init__(self, alphabet_size, table, weights, has_sentinel, rule):
        self.alphabet_size = alphabet_size
        self.table = table
        self.weights = weights
        self.has_sentinel = has_sentinel
        self.rule = rule  # strong reference keeps id(rule) cache keys unique


class ArrayEngine(IndexedEngine):
    """The numpy-backed third engine tier (see the module docstring).

    The engine owns a :class:`LabelCodec`; every labelling it adopts is
    interned through it, so codes are consistent across rounds and phases
    and compiled rule tables can be reused for as long as the alphabet does
    not grow.  Labels must be hashable (they index the codec) — which every
    finite-alphabet LCL labelling in this repository satisfies.
    """

    def __init__(
        self,
        grid_or_indexer: GridLike,
        codec: Optional[LabelCodec] = None,
        table_threshold: int = DEFAULT_TABLE_THRESHOLD,
    ):
        super().__init__(grid_or_indexer)
        require_numpy()
        self.codec = codec if codec is not None else LabelCodec()
        self.table_threshold = table_threshold
        self._compiled: Dict[Tuple[int, int, int, str], _CompiledRule] = {}

    # ------------------------------------------------------------------ #
    # Label intake
    # ------------------------------------------------------------------ #

    def store(self, labels: Labels) -> ArrayLabelStore:
        """Adopt ``labels`` as an :class:`ArrayLabelStore` (copying if needed)."""
        if (
            isinstance(labels, ArrayLabelStore)
            and labels.indexer is self.indexer
            and labels.codec is self.codec
        ):
            return labels
        return ArrayLabelStore(
            self.indexer, self.codec, self.codec.encode_values(self._values(labels))
        )

    # ------------------------------------------------------------------ #
    # Rule execution
    # ------------------------------------------------------------------ #

    def apply_rule(
        self,
        labels: Labels,
        rule: LocalRule,
        ledger: Optional[RoundLedger] = None,
        phase: str = "rule",
    ) -> ArrayLabelStore:
        """Array counterpart of :meth:`IndexedEngine.apply_rule`."""
        current = self.store(labels)
        new_codes = self._apply_codes(current.codes, rule)
        if ledger is not None:
            ledger.charge(phase, rule.round_cost(self.grid.dimension))
        return ArrayLabelStore(self.indexer, self.codec, new_codes)

    def iterate_rule(
        self,
        labels: Labels,
        rule: LocalRule,
        should_stop: Callable[[Labels], bool],
        max_iterations: int,
        ledger: Optional[RoundLedger] = None,
        phase: str = "iterate",
    ) -> ArrayLabelStore:
        """Array counterpart of :meth:`IndexedEngine.iterate_rule`.

        The labelling stays in one code vector across iterations;
        ``should_stop`` receives an :class:`ArrayLabelStore` — a full
        ``Mapping`` — so seed-path predicates work unchanged.
        """
        current = self.store(labels)
        if should_stop(current):
            return current
        codes = current.codes
        for _ in range(max_iterations):
            codes = self._apply_codes(codes, rule)
            if ledger is not None:
                ledger.charge(phase, rule.round_cost(self.grid.dimension))
            current = ArrayLabelStore(self.indexer, self.codec, codes)
            if should_stop(current):
                return current
            # A mutating predicate may have copy-on-write-replaced the
            # store's backing array (shm-tier snapshots are read-only);
            # re-read it so the next round sees the mutation, exactly as
            # the list-backed tiers do.
            codes = current.codes
        raise SimulationError(
            f"rule did not reach its stopping condition within {max_iterations} iterations"
        )

    # ------------------------------------------------------------------ #
    # Tier selection and compilation
    # ------------------------------------------------------------------ #

    def rule_tier(self, rule: LocalRule) -> str:
        """Which execution tier ``rule`` currently gets: ``"table"``,
        ``"batch"`` or ``"list"`` (depends on the codec's alphabet size)."""
        offsets, _ = self.indexer.ball_table(rule.radius, rule.norm)
        if self._table_fits(self.codec.size, len(offsets)):
            return "table"
        if rule_traits(rule).update_batch is not None:
            return "batch"
        return "list"

    def _table_fits(self, alphabet_size: int, ball_size: int) -> bool:
        if alphabet_size <= 0:
            return True
        return alphabet_size**ball_size <= self.table_threshold

    def _apply_codes(self, codes, rule: LocalRule):
        offsets, gather = self.indexer.ball_index_array(rule.radius, rule.norm)
        alphabet_size = self.codec.size
        if self._table_fits(alphabet_size, len(offsets)):
            tier = "table"
        elif rule_traits(rule).update_batch is not None:
            tier = "batch"
        else:
            tier = "list"
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.instant(
                _trace.SPAN_TIER_DISPATCH,
                tier=tier,
                rule=type(rule).__name__,
                alphabet=alphabet_size,
                ball=len(offsets),
            )
        if tier == "table":
            return _traced_round(
                "table",
                rule,
                lambda: self._apply_table(codes, rule, offsets, gather, alphabet_size),
            )
        if tier == "batch":
            return _traced_round(
                "batch", rule, lambda: self._apply_batch(codes, rule, gather)
            )
        # The list leaf counts/spans itself inside IndexedEngine._apply_values.
        return self._apply_list(codes, rule)

    def _apply_table(self, codes, rule, offsets, gather, alphabet_size):
        np = require_numpy()
        compiled = self._compile(rule, offsets, alphabet_size)
        keys = codes.astype(np.int64)[gather] @ compiled.weights
        new_codes = compiled.table[keys]
        if compiled.has_sentinel and bool((new_codes < 0).any()):
            # At least one node hit a view whose update raised during
            # compilation; replay the round per node so the exception (or a
            # nondeterministic recovery) matches the list path exactly.
            return self._apply_list(codes, rule)
        return new_codes

    def _compile(self, rule, offsets, alphabet_size) -> _CompiledRule:
        np = require_numpy()
        key = (id(rule), alphabet_size, rule.radius, rule.norm)
        compiled = self._compiled.get(key)
        if compiled is not None:
            return compiled
        ball = len(offsets)
        labels = list(self.codec.labels[:alphabet_size])
        table = np.empty(max(alphabet_size, 1) ** ball, dtype=np.int64)
        update = rule.update
        encode = self.codec.encode
        has_sentinel = False
        # itertools.product varies the last position fastest, so the key of
        # a neighbourhood is its code tuple read as a base-|Σ| numeral with
        # the first offset most significant.
        for position, combo in enumerate(
            itertools.product(labels, repeat=ball)
        ):
            try:
                table[position] = encode(update(dict(zip(offsets, combo))))
            except Exception:  # noqa: BLE001 - replayed on the list path
                table[position] = -1
                has_sentinel = True
        weights = (
            max(alphabet_size, 1)
            ** np.arange(ball - 1, -1, -1, dtype=np.int64)
        )
        compiled = _CompiledRule(alphabet_size, table, weights, has_sentinel, rule)
        self._compiled[key] = compiled
        return compiled

    def _apply_batch(self, codes, rule, gather):
        np = require_numpy()
        neighbourhoods = self.codec.label_array()[codes[gather]]
        result = rule.update_batch(neighbourhoods)
        return self._encode_result(result)

    def _encode_result(self, result):
        """Encode a batch result (array or sequence of labels) into codes.

        Tries a vectorised exact match against the interned alphabet first;
        any label outside the alphabet (or a non-sortable alphabet) falls
        back to per-item interning, which also grows the codec.
        """
        np = require_numpy()
        label_array = self.codec.label_array()
        try:
            values = np.asarray(result)
            if values.shape != (self.indexer.node_count,):
                raise ValueError
            order = np.argsort(label_array, kind="stable")
            sorted_labels = label_array[order]
            positions = np.searchsorted(sorted_labels, values)
            positions = np.clip(positions, 0, len(sorted_labels) - 1)
            if bool((sorted_labels[positions] == values).all()):
                return order[positions].astype(np.int32)
        except (TypeError, ValueError):
            pass
        return self.codec.encode_values(list(result))

    def _apply_list(self, codes, rule):
        values = self.codec.decode_values(codes)
        new_values = IndexedEngine._apply_values(self, values, rule)
        return self.codec.encode_values(new_values)


# --------------------------------------------------------------------- #
# The parallel tier
# --------------------------------------------------------------------- #


def plan_chunks(node_count: int, workers: int) -> List[Tuple[int, int]]:
    """Shard ``0 .. node_count`` into at most ``workers`` contiguous ranges.

    Chunk sizes differ by at most one node (the remainder spreads over the
    leading chunks), the ranges tile the node count exactly and never
    produce an empty chunk — fewer nodes than workers simply yields fewer
    chunks.
    """
    if node_count < 0:
        raise SimulationError(f"node count must be non-negative, got {node_count}")
    if node_count == 0:
        return []
    shards = max(1, min(workers, node_count))
    base, extra = divmod(node_count, shards)
    chunks: List[Tuple[int, int]] = []
    start = 0
    for position in range(shards):
        stop = start + base + (1 if position < extra else 0)
        chunks.append((start, stop))
        start = stop
    return chunks


def _max_table_alphabet(table_threshold: int, ball_size: int) -> int:
    """Largest alphabet size whose ``|Σ|^ball_size`` fits the table threshold."""
    if table_threshold < 1:
        return 0
    if ball_size <= 1:
        return table_threshold
    # Integer ball_size-th root: float seed, then correct the off-by-one
    # float rounding in either direction.
    limit = max(0, int(table_threshold ** (1.0 / ball_size)))
    while (limit + 1) ** ball_size <= table_threshold:
        limit += 1
    while limit > 0 and limit**ball_size > table_threshold:
        limit -= 1
    return limit


#: Read-only state inherited by forked workers: ``(values, update, offsets,
#: table, getters)`` for the round being sharded.  Staged immediately
#: before the pool forks and cleared right after, so nothing survives in
#: the parent between rounds; workers are round-scoped, so they never
#: observe a stale value.
_WORKER_STATE: Optional[Tuple] = None


def _worker_apply_chunk(chunk: Tuple[int, int]) -> Tuple[str, int, Any]:
    """Evaluate one ``(start, stop)`` chunk against the inherited state.

    The inner loop is the same C-level :func:`operator.itemgetter` gather
    the indexed tier runs, so a worker's per-node cost matches the serial
    scan's.  Returns ``("ok", start, values)`` on success.  On the first
    raising node the scan stops — matching the sequential scan, which
    never evaluates nodes past a failure — and ``("error", index,
    exception)`` reports the failing flat index; the merger re-raises the
    failure with the lowest index across all chunks, which by the prefix
    argument is exactly the node the sequential scan would have failed on.
    """
    start, stop = chunk
    values, update, offsets, table, getters = _WORKER_STATE
    out: List[Any] = []
    try:
        if len(offsets) == 1:
            # Radius-0 ball: gather straight from the shared index column,
            # exactly as in :meth:`IndexedEngine._apply_values`.
            offset = offsets[0]
            for row in table[start:stop]:
                out.append(update({offset: values[row[0]]}))
        else:
            for position in range(start, stop):
                out.append(update(dict(zip(offsets, getters[position](values)))))
    except Exception as error:  # noqa: BLE001 - shipped back for ordered re-raise
        return ("error", start + len(out), error)
    return ("ok", start, out)


class ParallelEngine(IndexedEngine):
    """The fourth engine tier: process-sharded scans over the index tables.

    Rules the array tier can vectorise (compiled lookup table or
    ``update_batch``) are delegated to an embedded :class:`ArrayEngine` —
    a single fancy index outruns any process pool.  Everything else (the
    "list path" rules: large alphabets, no batch hook) is sharded: the
    flat node range splits into contiguous chunks (:func:`plan_chunks`),
    each evaluated in a forked worker over shared read-only state, and the
    chunk results merge back in index order
    (:func:`repro.local_model.store.merge_chunk_values`).

    The tier is byte-identical to the other three, including exceptions:
    workers report the first failing flat index of their chunk and the
    merger re-raises the lowest one, reproducing first-failing-node
    semantics.  When sharding is impossible — one worker or fewer
    (``REPRO_WORKERS=0``/``1``, a single CPU), no ``fork`` start method, a
    rule marked ``parallel_safe = False``, or any worker-pool failure —
    the round runs on the serial indexed scan instead, so results never
    depend on the machine's process limits.
    """

    def __init__(
        self,
        grid_or_indexer: GridLike,
        workers: Optional[int] = None,
        table_threshold: int = DEFAULT_TABLE_THRESHOLD,
    ):
        super().__init__(grid_or_indexer)
        self.workers = parallel_workers(workers)
        self._array: Optional[ArrayEngine] = (
            ArrayEngine(grid_or_indexer, table_threshold=table_threshold)
            if HAS_NUMPY
            else None
        )
        self._warned_serial_fallback = False
        self._degrade_log: List[Any] = []
        self._statics_log: List[Any] = []
        self._noted_statics: set = set()

    @property
    def degrade_events(self) -> Tuple[Any, ...]:
        """Structured :class:`repro.runtime.telemetry.DegradeEvent` records
        of every tier drop this engine instance has taken."""
        return tuple(self._degrade_log)

    @property
    def statics_events(self) -> Tuple[Any, ...]:
        """Structured :class:`repro.runtime.telemetry.StaticsEvent`
        records — one per autoprove/autoblock decision the purity prover
        took for this engine (only under ``REPRO_STATICS_AUTOPROVE=1``)."""
        return tuple(self._statics_log)

    def _note_statics(self, rule: LocalRule, kind: str, detail: str) -> None:
        """Record an autoprove decision once per ``(kind, rule)`` pair.

        ``_can_shard``/``_can_shm`` run per application, so without the
        dedup a long schedule would grow the log by one event per round.
        """
        from repro.runtime.telemetry import StaticsEvent, publish

        key = (kind, id(rule))
        if key in self._noted_statics:
            return
        self._noted_statics.add(key)
        event = StaticsEvent(
            engine="parallel", kind=kind, rule=repr(rule), detail=detail
        )
        self._statics_log.append(event)
        publish(event)

    # ------------------------------------------------------------------ #
    # Tier selection
    # ------------------------------------------------------------------ #

    def rule_tier(self, rule: LocalRule, labels: Optional[Labels] = None) -> str:
        """Which execution tier ``rule`` currently gets: the array tiers
        (``"table"``/``"batch"``) when vectorisable, else ``"sharded"`` or
        ``"list"`` (serial fallback).  Pass the ``labels`` about to be
        applied for an exact answer — without them the array delegation is
        judged on the codec's current alphabet, as in
        :meth:`ArrayEngine.rule_tier`.  Purely diagnostic: unlike
        application itself, the query never interns ``labels`` into the
        embedded codec, so asking cannot change later tier decisions."""
        if self._array is not None:
            if labels is not None:
                offsets, _ = self.indexer.ball_table(rule.radius, rule.norm)
                if self._alphabet_within(
                    labels,
                    _max_table_alphabet(self._array.table_threshold, len(offsets)),
                ):
                    return "table"
                if rule_traits(rule).update_batch is not None:
                    return "batch"
            else:
                tier = self._array.rule_tier(rule)
                if tier != "list":
                    return tier
        return "sharded" if self._can_shard(rule) else "list"

    def _delegate(self, labels: Labels, rule: LocalRule) -> Optional[ArrayLabelStore]:
        """``labels`` adopted for the array engine when it can vectorise
        this round, ``None`` when the round should shard instead.

        Interning a labelling just to discover its alphabet is too large
        to compile would cost a full encode pass on every sharded round,
        so the check is staged: batch-hook rules always delegate, and
        table candidates are screened with an early-exit distinct-value
        scan (:meth:`_alphabet_within`) before anything is interned.  The
        adopted store is returned so the delegated call re-uses it rather
        than encoding the labelling a second time.
        """
        if self._array is None:
            return None
        if rule_traits(rule).update_batch is not None:
            return self._array.store(labels)
        offsets, _ = self.indexer.ball_table(rule.radius, rule.norm)
        if not self._alphabet_within(
            labels, _max_table_alphabet(self._array.table_threshold, len(offsets))
        ):
            return None
        adopted = self._array.store(labels)
        return adopted if self._array.rule_tier(rule) != "list" else None

    def _alphabet_within(self, labels: Labels, limit: int) -> bool:
        """Whether ``labels`` uses at most ``limit`` distinct values.

        Early-exits after ``limit + 1`` distinct values, so screening an
        identifier-sized alphabet costs a handful of set insertions rather
        than a pass over the grid.
        """
        if limit <= 0:
            return False
        if isinstance(labels, ArrayLabelStore):
            return labels.codec.size <= limit
        values = (
            labels.values_list
            if isinstance(labels, LabelStore) and labels.indexer is self.indexer
            else labels.values()
        )
        seen = set()
        for value in values:
            seen.add(value)
            if len(seen) > limit:
                return False
        return True

    def _can_shard(self, rule: LocalRule) -> bool:
        # checked_parallel_safe last: its one-time PROVEN_UNSAFE warning
        # should only fire when sharding is otherwise actually possible.
        return (
            self.workers > 1
            and "fork" in multiprocessing.get_all_start_methods()
            and checked_parallel_safe(
                rule,
                recorder=lambda kind, detail: self._note_statics(
                    rule, kind, detail
                ),
            )
        )

    # ------------------------------------------------------------------ #
    # Rule execution
    # ------------------------------------------------------------------ #

    def apply_rule(
        self,
        labels: Labels,
        rule: LocalRule,
        ledger: Optional[RoundLedger] = None,
        phase: str = "rule",
    ) -> Union[LabelStore, ArrayLabelStore]:
        """Parallel counterpart of :meth:`IndexedEngine.apply_rule`."""
        adopted = self._delegate(labels, rule)
        if adopted is not None:
            return self._array.apply_rule(adopted, rule, ledger=ledger, phase=phase)
        return super().apply_rule(labels, rule, ledger=ledger, phase=phase)

    def iterate_rule(
        self,
        labels: Labels,
        rule: LocalRule,
        should_stop: Callable[[Labels], bool],
        max_iterations: int,
        ledger: Optional[RoundLedger] = None,
        phase: str = "iterate",
    ) -> Union[LabelStore, ArrayLabelStore]:
        """Parallel counterpart of :meth:`IndexedEngine.iterate_rule`."""
        adopted = self._delegate(labels, rule)
        if adopted is not None:
            return self._array.iterate_rule(
                adopted, rule, should_stop, max_iterations, ledger=ledger, phase=phase
            )
        return super().iterate_rule(
            labels, rule, should_stop, max_iterations, ledger=ledger, phase=phase
        )

    def _apply_values(self, values: List[Any], rule: LocalRule) -> List[Any]:
        if not self._can_shard(rule):
            return IndexedEngine._apply_values(self, values, rule)
        offsets, table = self.indexer.ball_table(rule.radius, rule.norm)
        _, getters = self.indexer.ball_getters(rule.radius, rule.norm)
        chunks = plan_chunks(len(values), self.workers)
        if len(chunks) <= 1:
            return IndexedEngine._apply_values(self, values, rule)
        try:
            results = _traced_round(
                "sharded",
                rule,
                lambda: self._map_chunks(
                    values, rule.update, offsets, table, getters, chunks
                ),
            )
        except Exception as error:  # noqa: BLE001 - worker pools can fail for
            # environmental reasons (process limits, unpicklable labels or
            # exceptions, interpreter shutdown); the serial scan is always
            # available and byte-identical, so degrade instead of failing —
            # but say so once, or a requested multi-core speedup could
            # silently never materialise.
            if not self._warned_serial_fallback:
                self._warned_serial_fallback = True
                from repro.runtime.telemetry import DegradeEvent, publish

                event = DegradeEvent(
                    engine="parallel",
                    tier_from="sharded",
                    tier_to="list",
                    reason=f"worker-pool failure: {error!r}",
                    rule=repr(rule),
                )
                self._degrade_log.append(event)
                publish(event)
                warnings.warn(
                    f"parallel engine degraded to the serial scan after a "
                    f"worker-pool failure: {error!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return IndexedEngine._apply_values(self, values, rule)
        failures = [
            (index, error) for tag, index, error in results if tag == "error"
        ]
        if failures:
            _, error = min(failures, key=lambda failure: failure[0])
            raise error
        return merge_chunk_values(
            [(start, chunk_values) for _, start, chunk_values in results],
            len(values),
        )

    def _map_chunks(self, values, update, offsets, table, getters, chunks):
        """Fork a worker pool and evaluate every chunk against shared state.

        The state is staged in a module global *before* the pool forks, so
        children inherit it through copy-on-write memory — no pickling of
        the value list, the rule (lambdas welcome) or the index tables.
        Only the tiny ``(start, stop)`` tasks and the per-chunk results
        cross process boundaries.
        """
        global _WORKER_STATE
        context = multiprocessing.get_context("fork")
        _WORKER_STATE = (values, update, offsets, table, getters)
        try:
            with context.Pool(len(chunks)) as pool:
                return pool.map(_worker_apply_chunk, chunks)
        finally:
            _WORKER_STATE = None


# --------------------------------------------------------------------- #
# The shared-memory tier
# --------------------------------------------------------------------- #


class ShmEngine(ArrayEngine):
    """The fifth engine tier: persistent workers over shared code vectors.

    Extends :class:`ArrayEngine`, so vectorisable rules (compiled lookup
    table, ``update_batch``) run on the inherited array paths unchanged.
    The remaining "list path" rules — the ones the ``parallel`` tier
    re-forks a pool for every round — are instead dispatched to one
    persistent :class:`repro.runtime.pool.WorkerPool`: spawned on the
    first sharded application, reused for every later round, shut down by
    :meth:`close` (the engine is a context manager, and
    :func:`run_schedule` closes it for you).

    Rules must be registered with the pool before it forks (workers
    inherit them by memory — nothing is pickled, lambdas welcome).
    :meth:`prepare` registers a whole schedule up front; an unregistered
    rule arriving later transparently respawns the pool with the enlarged
    registry, trading one extra spawn for correctness.

    A pool broken *mid-round* (a worker died, hung past the
    ``REPRO_ROUND_TIMEOUT`` deadline, or corrupted its reply) is first
    **healed**: :meth:`WorkerPool.heal` respawns the workers that did not
    finish the round and the round is retried on the same pool, bounded
    by ``REPRO_POOL_RETRIES`` with backoff.  Spawn failures get the same
    retry budget through :meth:`WorkerPool.spawn`.

    Degradation — when healing is exhausted or sharding was never
    possible — is deterministic and byte-identical, announced once per
    instance via a ``RuntimeWarning``: with one worker or fewer
    (``REPRO_WORKERS=0``/``1``), without numpy/shared-memory/fork, for
    ``parallel_safe=False`` rules, or when the pool fails to *spawn*,
    sharded rounds fall back to the ``parallel`` tier's per-round forks —
    which themselves degrade to the serial indexed scan.  A pool broken
    *mid-round* whose heals ran out degrades straight to the serial scan
    instead: the same rule would kill per-round fork workers too, and a
    fork pool hangs rather than fails on abrupt worker death (see
    :meth:`_apply_fallback`).  Every heal and every tier drop is recorded
    as a structured :class:`repro.runtime.telemetry.DegradeEvent` on
    :attr:`degrade_events`.
    """

    def __init__(
        self,
        grid_or_indexer: GridLike,
        workers: Optional[int] = None,
        table_threshold: int = DEFAULT_TABLE_THRESHOLD,
        codec: Optional[LabelCodec] = None,
    ):
        super().__init__(grid_or_indexer, codec=codec, table_threshold=table_threshold)
        self.workers = parallel_workers(workers)
        self._registry: Dict[int, LocalRule] = {}
        self._pool: Optional[WorkerPool] = None
        self._broken = False
        # Set only on *mid-round* pool failures (a worker died while
        # computing): the same rule would kill per-round fork workers too,
        # and multiprocessing.Pool cannot detect abrupt worker death — its
        # map would hang, not fail — so only the serial scan is safe.
        # Spawn-time failures leave this False: plain per-round forks need
        # neither shared memory nor a healthy persistent pool.
        self._serial_only = False
        self._warned_degrade = False
        self._fallback: Optional[ParallelEngine] = None
        #: How many worker pools this engine has spawned — the round
        #: amortisation invariant (one spawn per schedule) is asserted on
        #: this by the runtime tests.
        self.pool_spawns = 0
        #: How many broken rounds were recovered by healing the pool in
        #: place (and how many worker processes those heals re-forked)
        #: instead of degrading a tier.
        self.pool_heals = 0
        self.worker_respawns = 0
        self._degrade_log: List[Any] = []
        # (tier_from, tier_to, reason, rule identity) triples already
        # recorded — keeps per-round repeats of the same degradation from
        # growing the log unboundedly.
        self._noted_degrades: set = set()
        self._statics_log: List[Any] = []
        self._noted_statics: set = set()

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #

    def prepare(self, rules: Sequence[LocalRule]) -> None:
        """Register the rules of an upcoming schedule with the pool.

        Call before the first application (as :func:`run_schedule` does)
        so a single pool spawn serves every phase.  Registering a rule the
        current pool does not know shuts that pool down; the next sharded
        application respawns it with the full registry.
        """
        fresh = {id(rule): rule for rule in rules}
        self._registry.update(fresh)
        if self._pool is not None and any(
            key not in self._pool.rules for key in fresh
        ):
            self._shutdown_pool()

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the engine stays usable —
        the next sharded application simply respawns the pool)."""
        self._shutdown_pool()

    def __enter__(self) -> "ShmEngine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def _ensure_pool(self) -> "WorkerPool":
        from repro.runtime.pool import PoolBrokenError, WorkerPool

        if self._pool is not None and self._pool.closed:
            self._pool = None
        if self._pool is None:
            chunks = plan_chunks(self.indexer.node_count, self.workers)
            try:
                self._pool = WorkerPool.spawn(
                    self.indexer, self.codec, dict(self._registry), chunks
                )
            except PoolBrokenError:
                raise
            except Exception as error:  # noqa: BLE001 - spawn can fail for
                # environmental reasons (process limits, /dev/shm quota);
                # normalise so the caller degrades instead of crashing.
                raise PoolBrokenError(
                    f"could not spawn the shared-memory worker pool: {error!r}"
                ) from error
            self.pool_spawns += 1
        return self._pool

    # ------------------------------------------------------------------ #
    # Tier selection
    # ------------------------------------------------------------------ #

    def rule_tier(self, rule: LocalRule) -> str:
        """Which execution tier ``rule`` currently gets: the inherited
        array tiers (``"table"``/``"batch"``), ``"shm"`` for rounds the
        persistent pool will shard, or ``"list"`` for the degraded serial
        path (which may still fork per round via the parallel fallback)."""
        tier = ArrayEngine.rule_tier(self, rule)
        if tier != "list":
            return tier
        return "shm" if self._can_shm(rule) else "list"

    def _can_shm(self, rule: LocalRule) -> bool:
        # checked_parallel_safe last: its one-time PROVEN_UNSAFE warning
        # should only fire when the pool would otherwise actually spawn.
        return (
            not self._broken
            and self.workers > 1
            and shm_available()
            and self.indexer.node_count > 1
            and checked_parallel_safe(
                rule,
                recorder=lambda kind, detail: self._note_statics(
                    rule, kind, detail
                ),
            )
        )

    # ------------------------------------------------------------------ #
    # Rule execution
    # ------------------------------------------------------------------ #

    def _apply_codes(self, codes, rule: LocalRule):
        from repro.runtime.pool import PoolBrokenError

        if ArrayEngine.rule_tier(self, rule) != "list":
            return super()._apply_codes(codes, rule)
        if self._can_shm(rule):
            key = id(rule)
            if key not in self._registry:
                self.prepare([rule])
            pool = None
            try:
                pool = self._ensure_pool()
            except PoolBrokenError as error:
                # Spawn failure (process limits, /dev/shm quota) that
                # survived WorkerPool.spawn's own retries: the parallel
                # tier's per-round forks are still available.
                self._broken = True
                self._record_degrade(
                    "shm",
                    "parallel",
                    f"pool spawn failure: {error}",
                    rule=rule,
                )
            if pool is not None:
                from repro.runtime.pool import RETRY_BACKOFF, pool_retry_budget

                tracer = _trace.ACTIVE
                if tracer is not None:
                    tracer.instant(
                        _trace.SPAN_TIER_DISPATCH,
                        tier="shm",
                        rule=type(rule).__name__,
                        workers=self.workers,
                    )
                budget = pool_retry_budget()
                attempt = 0
                while True:
                    try:
                        return _traced_round(
                            "shm", rule, lambda: self._apply_shm(pool, codes, key)
                        )
                    except PoolBrokenError as error:
                        if attempt < budget and self._heal_pool(pool, rule):
                            # Healed in place: retry the round on the
                            # same pool after a short backoff.
                            time.sleep(RETRY_BACKOFF * (2**attempt))
                            attempt += 1
                            continue
                        self._broken = True
                        self._serial_only = True
                        self._record_degrade(
                            "shm",
                            "indexed",
                            f"worker-pool failure: {error}",
                            rule=rule,
                            round=pool.rounds_run,
                        )
                        self._shutdown_pool()
                        break
        elif not self._broken and rule_traits(rule).parallel_safe:
            if self.workers <= 1:
                self._record_degrade(
                    "shm",
                    "indexed",
                    f"{self.workers} worker(s) cannot shard rounds "
                    "(REPRO_WORKERS or the CPU count allows at most one)",
                    rule=rule,
                )
            elif not shm_available():
                self._record_degrade(
                    "shm",
                    "parallel",
                    "this platform lacks numpy, "
                    "multiprocessing.shared_memory or the fork start method",
                    rule=rule,
                )
        elif not self._broken:
            # parallel_safe=False is a rule property, not a platform
            # shortfall — it degrades silently (no warning, exactly as in
            # the parallel tier) but is still worth a telemetry record.
            self._record_degrade(
                "shm",
                "indexed",
                "rule is declared parallel_safe=False",
                rule=rule,
                warn=False,
            )
        return self._apply_fallback(codes, rule)

    def _apply_shm(self, pool: "WorkerPool", codes, key: int):
        """One pool round: export codes, run the barrier, merge back.

        Rule exceptions propagate unchanged (the pool already re-raised
        the lowest flat index); only :class:`PoolBrokenError` is left for
        the caller's degradation path.
        """
        pool.submit(codes)
        pool.round(key)
        return pool.snapshot()

    def _apply_fallback(self, codes, rule: LocalRule):
        """The ``parallel`` -> ``indexed`` degradation chain, on codes.

        A pool broken *mid-round* (a worker died while computing) skips
        the parallel tier and goes straight to the serial indexed scan:
        whatever killed a persistent worker would kill per-round fork
        workers just the same, and ``multiprocessing.Pool`` cannot detect
        an abruptly dead worker — its ``map`` would hang, not fail.
        Spawn-time failures and platform shortfalls (no shared memory, too
        few workers for the shm pool but plenty for a plain fork pool)
        keep the parallel rung of the ladder.
        """
        if self._serial_only:
            return self._apply_list(codes, rule)
        values = self.codec.decode_values(codes)
        if self._fallback is None:
            self._fallback = ParallelEngine(self.indexer, workers=self.workers)
        new_values = self._fallback._apply_values(values, rule)
        return self.codec.encode_values(new_values)

    def _heal_pool(self, pool: "WorkerPool", rule: LocalRule) -> bool:
        """Try to heal a broken pool in place; ``True`` means retry.

        A heal that raises (respawn failed, pool already shut down) — or
        a :class:`PoolBrokenError` that did not actually break the pool —
        sends the caller down the degrade ladder instead.
        """
        try:
            if not pool.broken:
                return False
            reason = pool.broken_reason
            respawned = pool.heal()
        except Exception:  # noqa: BLE001 - a failed heal is just a vote
            # for the degrade ladder; the original error carries the story.
            return False
        self.pool_heals += 1
        self.worker_respawns += respawned
        self._record_degrade(
            "shm",
            "shm",
            f"healed {respawned} worker(s) after: {reason}",
            rule=rule,
            round=pool.rounds_run,
            healed=True,
            warn=False,
        )
        return True

    @property
    def degrade_events(self) -> Tuple[Any, ...]:
        """Structured :class:`repro.runtime.telemetry.DegradeEvent`
        records — every heal and every tier drop, this engine's own and
        its parallel fallback's."""
        events = tuple(self._degrade_log)
        if self._fallback is not None:
            events += self._fallback.degrade_events
        return events

    @property
    def statics_events(self) -> Tuple[Any, ...]:
        """Structured :class:`repro.runtime.telemetry.StaticsEvent`
        records — autoprove/autoblock decisions the purity prover took
        for this engine and its parallel fallback (only under
        ``REPRO_STATICS_AUTOPROVE=1``)."""
        events = tuple(self._statics_log)
        if self._fallback is not None:
            events += self._fallback.statics_events
        return events

    def _note_statics(self, rule: LocalRule, kind: str, detail: str) -> None:
        """Record an autoprove decision once per ``(kind, rule)`` pair
        (``_can_shm`` runs per application; see
        :meth:`ParallelEngine._note_statics`)."""
        from repro.runtime.telemetry import StaticsEvent, publish

        key = (kind, id(rule))
        if key in self._noted_statics:
            return
        self._noted_statics.add(key)
        event = StaticsEvent(engine="shm", kind=kind, rule=repr(rule), detail=detail)
        self._statics_log.append(event)
        publish(event)

    def _record_degrade(
        self,
        tier_from: str,
        tier_to: str,
        reason: str,
        rule: Optional[LocalRule] = None,
        round: Optional[int] = None,
        healed: bool = False,
        warn: bool = True,
    ) -> None:
        """Append a :class:`DegradeEvent`; emit the pinned warning from it.

        Heals are always recorded (each one is a distinct recovery);
        repeated tier drops with the same shape are recorded once so a
        long schedule cannot grow the log per round.  The warning text and
        once-per-instance semantics predate the structured log and are
        pinned by tests — they must not change.
        """
        from repro.runtime.telemetry import DegradeEvent, publish

        if not healed:
            key = (tier_from, tier_to, reason, None if rule is None else id(rule))
            if key in self._noted_degrades:
                return
            self._noted_degrades.add(key)
        event = DegradeEvent(
            engine="shm",
            tier_from=tier_from,
            tier_to=tier_to,
            reason=reason,
            rule=None if rule is None else repr(rule),
            round=round,
            healed=healed,
        )
        self._degrade_log.append(event)
        publish(event)
        if warn and not self._warned_degrade:
            self._warned_degrade = True
            warnings.warn(
                f"shm engine degraded to the parallel/indexed fallback: {reason}",
                RuntimeWarning,
                stacklevel=4,
            )


@dataclass
class SchedulePhase:
    """One step of a batched multi-phase execution.

    Attributes
    ----------
    rule:
        The local rule applied during this phase.
    name:
        Phase name used for ledger accounting.
    iterations:
        Fixed number of applications (used when ``until`` is ``None``).
    until:
        Optional stopping predicate over the current labelling; when given,
        the rule is applied until it holds, up to ``max_iterations``.
    max_iterations:
        Application budget for the ``until`` form (required alongside
        ``until``); exceeding it raises
        :class:`repro.errors.SimulationError`.
    """

    rule: LocalRule
    name: str = "phase"
    iterations: int = 1
    until: Optional[Callable[[Labels], bool]] = None
    max_iterations: int = 0


def run_schedule(
    grid_or_indexer: GridLike,
    labels: Labels,
    schedule: Sequence[SchedulePhase],
    ledger: Optional[RoundLedger] = None,
    engine: str = "indexed",
) -> Union[LabelStore, ArrayLabelStore]:
    """Execute a multi-phase algorithm on a fast-path engine tier.

    The labelling stays in one flat value list (``engine="indexed"`` /
    ``"parallel"``) or one numpy code vector (``engine="array"`` /
    ``"shm"``) for the whole schedule; no per-phase dict is materialised.
    ``"auto"`` walks the tiers top down: the shm tier on grids of at least
    :data:`repro.local_model.store.SHM_AUTO_THRESHOLD` nodes (when the
    platform supports it), the parallel tier from
    :data:`repro.local_model.store.PARALLEL_AUTO_THRESHOLD` nodes — both
    only when more than one worker is available (``REPRO_WORKERS``
    overrides the count) — and only when at least one scheduled rule is
    actually sharding-eligible (declared ``parallel_safe``, or proven
    safe under ``REPRO_STATICS_AUTOPROVE=1``) — else the array tier when
    numpy is available, else indexed.  A schedule is the shm tier's
    natural workload: every
    phase's rule is registered up front, so one pool spawn serves all
    rounds, and the pool is deterministically shut down before returning.
    Returns the final store (use ``.to_dict()`` for a plain dict).
    """
    tier = resolve_engine(
        engine,
        allowed=("indexed", "array", "parallel", "shm"),
        node_count=grid_or_indexer.node_count,
        rules=[step.rule for step in schedule],
    )
    if tier == "shm":
        executor: IndexedEngine = ShmEngine(grid_or_indexer)
        executor.prepare([step.rule for step in schedule])
    elif tier == "parallel":
        executor = ParallelEngine(grid_or_indexer)
    elif tier == "array":
        executor = ArrayEngine(grid_or_indexer)
    else:
        executor = IndexedEngine(grid_or_indexer)
    try:
        with _trace.span(
            _trace.SPAN_SCHEDULE,
            tier=tier,
            phases=len(schedule),
            nodes=grid_or_indexer.node_count,
        ):
            current = executor.store(labels)
            for step in schedule:
                with _trace.span(
                    _trace.SPAN_PHASE,
                    phase=step.name,
                    rule=type(step.rule).__name__,
                ):
                    if step.until is not None:
                        if step.max_iterations <= 0:
                            raise SimulationError(
                                f"phase {step.name!r} has an `until` predicate but no "
                                "positive max_iterations budget"
                            )
                        current = executor.iterate_rule(
                            current,
                            step.rule,
                            should_stop=step.until,
                            max_iterations=step.max_iterations,
                            ledger=ledger,
                            phase=step.name,
                        )
                    else:
                        if step.iterations < 0:
                            raise SimulationError(
                                f"phase {step.name!r} has a negative iteration count"
                            )
                        for _ in range(step.iterations):
                            current = executor.apply_rule(
                                current, step.rule, ledger=ledger, phase=step.name
                            )
            return current
    finally:
        if isinstance(executor, ShmEngine):
            executor.close()
