"""Indexed fast-path simulation engine.

This module is the hot-path counterpart of
:mod:`repro.local_model.simulator`: the same synchronous LOCAL-model
semantics (and the same :class:`RoundLedger` accounting), executed over
precomputed :class:`repro.grid.indexer.GridIndexer` tables instead of
per-node ``grid.shift`` calls.  One rule application becomes a flat scan

    ``new[i] = rule.update({offsets[j]: values[table[i][j]] ...})``

which removes all coordinate arithmetic and tuple hashing from the inner
loop.  Labellings live in :class:`repro.local_model.store.LabelStore`
objects, so user-supplied rules, per-node functions and stopping predicates
still see an ordinary node-keyed mapping.

:func:`run_schedule` executes a whole multi-phase algorithm — a sequence of
:class:`SchedulePhase` steps — over one shared indexer without
re-materialising dicts between phases.

Equivalence with the dict path is asserted by the tier-1 tests: on small
grids every function here produces byte-identical labellings to its seed
counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import SimulationError
from repro.grid.indexer import GridIndexer
from repro.grid.torus import Node, ToroidalGrid
from repro.local_model.algorithm import LocalRule
from repro.local_model.simulator import RoundLedger
from repro.local_model.store import LabelStore
from repro.local_model.views import NeighbourhoodView

Labels = Mapping[Node, Any]
GridLike = Union[ToroidalGrid, GridIndexer]


class IndexedEngine:
    """Fast-path executor bound to one grid's precomputed index tables."""

    def __init__(self, grid_or_indexer: GridLike):
        if isinstance(grid_or_indexer, GridIndexer):
            self.indexer = grid_or_indexer
        else:
            self.indexer = GridIndexer.for_grid(grid_or_indexer)
        self.grid = self.indexer.grid

    # ------------------------------------------------------------------ #
    # Label intake
    # ------------------------------------------------------------------ #

    def store(self, labels: Labels) -> LabelStore:
        """Adopt ``labels`` as a :class:`LabelStore` (copying if needed)."""
        if isinstance(labels, LabelStore) and labels.indexer is self.indexer:
            return labels
        return LabelStore.from_mapping(self.indexer, labels)

    def _values(self, labels: Labels) -> List[Any]:
        if isinstance(labels, LabelStore) and labels.indexer is self.indexer:
            return labels.values_list
        return self.indexer.to_values(labels)

    # ------------------------------------------------------------------ #
    # Rule execution
    # ------------------------------------------------------------------ #

    def apply_rule(
        self,
        labels: Labels,
        rule: LocalRule,
        ledger: Optional[RoundLedger] = None,
        phase: str = "rule",
    ) -> LabelStore:
        """Indexed counterpart of :func:`repro.local_model.simulator.apply_rule`."""
        values = self._values(labels)
        new_values = self._apply_values(values, rule)
        if ledger is not None:
            ledger.charge(phase, rule.round_cost(self.grid.dimension))
        return LabelStore(self.indexer, new_values)

    def _apply_values(self, values: List[Any], rule: LocalRule) -> List[Any]:
        offsets, getters = self.indexer.ball_getters(rule.radius, rule.norm)
        update = rule.update
        return [
            update(dict(zip(offsets, gather(values)))) for gather in getters
        ]

    def iterate_rule(
        self,
        labels: Labels,
        rule: LocalRule,
        should_stop: Callable[[Labels], bool],
        max_iterations: int,
        ledger: Optional[RoundLedger] = None,
        phase: str = "iterate",
    ) -> LabelStore:
        """Indexed counterpart of :func:`repro.local_model.simulator.iterate_rule`.

        ``should_stop`` receives a :class:`LabelStore` — a full ``Mapping``
        — so seed-path predicates work unchanged, without any dict being
        rebuilt between iterations.
        """
        current = self.store(labels)
        if should_stop(current):
            return current
        values = list(current.values_list)
        for _ in range(max_iterations):
            values = self._apply_values(values, rule)
            if ledger is not None:
                ledger.charge(phase, rule.round_cost(self.grid.dimension))
            current = LabelStore(self.indexer, values)
            if should_stop(current):
                return current
        raise SimulationError(
            f"rule did not reach its stopping condition within {max_iterations} iterations"
        )

    def run_phase(
        self,
        labels: Labels,
        compute: Callable[[Node, Labels], Any],
        radius: int,
        ledger: Optional[RoundLedger] = None,
        phase: str = "phase",
        norm: str = "l1",
    ) -> LabelStore:
        """Indexed counterpart of :func:`repro.local_model.simulator.run_phase`.

        ``compute(node, visible)`` sees exactly the deduplicated radius-ball
        mapping the dict path provides; a read outside the ball raises
        ``KeyError`` as before, and a partial labelling raises
        :class:`repro.errors.SimulationError` naming the phase, matching the
        dict path's contract.
        """
        try:
            values = self._values(labels)
        except KeyError as error:
            raise SimulationError(
                f"{error.args[0]} in phase {phase!r}; "
                "run_phase requires a total labelling"
            ) from None
        nodes = self.indexer.nodes
        node_table = self.indexer.ball_node_table(radius, norm)
        new_values = [
            compute(node, {nodes[j]: values[j] for j in row})
            for node, row in zip(nodes, node_table)
        ]
        if ledger is not None:
            cost = radius if norm == "l1" else radius * self.grid.dimension
            ledger.charge(phase, cost)
        return LabelStore(self.indexer, new_values)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def collect_label_view(
        self, node: Node, radius: int, labels: Labels, norm: str = "l1"
    ) -> Dict[Any, Any]:
        """Indexed counterpart of :func:`repro.local_model.views.collect_label_view`."""
        values = self._values(labels)
        offsets, table = self.indexer.ball_table(radius, norm)
        row = table[self.indexer.index_of(node)]
        return dict(zip(offsets, [values[j] for j in row]))

    def collect_view(
        self,
        node: Node,
        radius: int,
        identifiers: Mapping[Node, int],
        labels: Optional[Labels] = None,
        norm: str = "l1",
        grid_size: Optional[int] = None,
    ) -> NeighbourhoodView:
        """Indexed counterpart of :func:`repro.local_model.views.collect_view`."""
        id_values = self._values(identifiers)
        offsets, table = self.indexer.ball_table(radius, norm)
        row = table[self.indexer.index_of(node)]
        id_view = dict(zip(offsets, [id_values[j] for j in row]))
        label_view: Dict[Any, Any] = {}
        if labels is not None:
            nodes = self.indexer.nodes
            for offset, j in zip(offsets, row):
                target = nodes[j]
                if target in labels:
                    label_view[offset] = labels[target]
        size = grid_size if grid_size is not None else self.grid.node_count
        return NeighbourhoodView(
            radius=radius,
            identifiers=id_view,
            labels=label_view,
            grid_size=size,
        )


@dataclass
class SchedulePhase:
    """One step of a batched multi-phase execution.

    Attributes
    ----------
    rule:
        The local rule applied during this phase.
    name:
        Phase name used for ledger accounting.
    iterations:
        Fixed number of applications (used when ``until`` is ``None``).
    until:
        Optional stopping predicate over the current labelling; when given,
        the rule is applied until it holds, up to ``max_iterations``.
    max_iterations:
        Application budget for the ``until`` form (required alongside
        ``until``); exceeding it raises
        :class:`repro.errors.SimulationError`.
    """

    rule: LocalRule
    name: str = "phase"
    iterations: int = 1
    until: Optional[Callable[[Labels], bool]] = None
    max_iterations: int = 0


def run_schedule(
    grid_or_indexer: GridLike,
    labels: Labels,
    schedule: Sequence[SchedulePhase],
    ledger: Optional[RoundLedger] = None,
) -> LabelStore:
    """Execute a multi-phase algorithm on the indexed fast path.

    The labelling stays in one flat value list for the whole schedule; no
    per-phase dict is materialised.  Returns the final :class:`LabelStore`
    (use :meth:`LabelStore.to_dict` for a plain dict).
    """
    engine = IndexedEngine(grid_or_indexer)
    current = engine.store(labels)
    for step in schedule:
        if step.until is not None:
            if step.max_iterations <= 0:
                raise SimulationError(
                    f"phase {step.name!r} has an `until` predicate but no "
                    "positive max_iterations budget"
                )
            current = engine.iterate_rule(
                current,
                step.rule,
                should_stop=step.until,
                max_iterations=step.max_iterations,
                ledger=ledger,
                phase=step.name,
            )
        else:
            if step.iterations < 0:
                raise SimulationError(
                    f"phase {step.name!r} has a negative iteration count"
                )
            for _ in range(step.iterations):
                current = engine.apply_rule(
                    current, step.rule, ledger=ledger, phase=step.name
                )
    return current
