"""Algorithm abstractions for the LOCAL model.

Two levels are provided:

* :class:`LocalRule` — a single synchronous update step of declared radius.
  All nodes apply the rule simultaneously to their current state and the
  states visible within the radius; applying a radius-``r`` rule costs ``r``
  communication rounds.
* :class:`GridAlgorithm` — a complete algorithm producing an
  :class:`AlgorithmResult` (node and/or edge outputs plus the number of
  rounds charged).  Concrete algorithms (4-colouring, edge colouring,
  orientations, lookup-table algorithms, ...) subclass this.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.grid.identifiers import IdentifierAssignment
from repro.grid.torus import EdgeKey, Node, ToroidalGrid

Offset = Tuple[int, ...]
LabelView = Mapping[Offset, Any]


class LocalRule(abc.ABC):
    """A single synchronous local update step.

    Subclasses declare the ``radius`` they read and implement
    :meth:`update`, which receives the label view of the node (offset zero
    is the node's own current label) and returns the node's next label.
    """

    #: radius of the view handed to :meth:`update`; applying the rule is
    #: charged ``radius`` communication rounds.
    radius: int = 1

    #: which norm the view uses ("l1" matches grid communication rounds;
    #: "linf" views are charged ``radius * dimension`` rounds).
    norm: str = "l1"

    #: Optional vectorised form consumed by the ``"array"`` engine tier
    #: (and the ``"parallel"``/``"shm"`` tiers, which delegate vectorisable
    #: rules to it) when the rule's alphabet is too large for lookup-table
    #: compilation.  When not ``None``, it must be a callable receiving the
    #: decoded ``(node_count, ball_size)`` value matrix (one row per node,
    #: columns in ball-offset order — offset zero included at its ball
    #: position) and returning a length-``node_count`` sequence/array of
    #: next labels, equal to applying :meth:`update` row by row.
    update_batch: Optional[Callable[[Any], Any]] = None

    #: Whether the ``"parallel"`` and ``"shm"`` engine tiers may shard
    #: applications of this rule across worker processes.  The default
    #: assumes what every LOCAL rule must satisfy anyway: :meth:`update` is
    #: a deterministic function of the view alone.  A rule that
    #: additionally mutates out-of-band state it later reads (e.g. an
    #: instrumentation counter whose value feeds back into outputs) must
    #: set this to ``False`` — worker processes see copies of that state,
    #: so its mutations would be lost between rounds; for the ``shm``
    #: tier's *persistent* workers they would additionally leak from one
    #: round into the next.  Opting out degrades those tiers to the serial
    #: indexed scan, byte-identical.
    parallel_safe: bool = True

    #: Optional declared label alphabet Σ.  LCL rules in the paper's sense
    #: are finite-alphabet; declaring Σ lets the statics layer's
    #: alphabet-closure analysis (:mod:`repro.statics.alphabets`) *prove*
    #: that every label :meth:`update` can return stays inside Σ, which in
    #: turn makes lookup-table compilability and the shm tier's
    #: overflow-free fast path evidence-based instead of declared-on-faith
    #: (see :func:`repro.statics.tiers.infer_tier_eligibility`).  ``None``
    #: (the default) skips the closure analysis entirely.
    alphabet: Optional[Tuple[Any, ...]] = None

    @abc.abstractmethod
    def update(self, view: LabelView) -> Any:
        """Compute the node's next label from its current local view."""

    def round_cost(self, dimension: int) -> int:
        """Rounds charged for one application of this rule."""
        if self.norm == "l1":
            return self.radius
        return self.radius * dimension


@dataclass(frozen=True)
class RuleTraits:
    """The engine-facing trait snapshot of one rule.

    The ``parallel``/``shm`` tiers and the shm worker pool used to probe
    these with scattered ``getattr(rule, "parallel_safe", True)`` /
    ``getattr(rule, "update_batch", None)`` calls; this accessor is the
    single place those conventions are read — and the single place the
    static purity verdict (:mod:`repro.statics.purity`) attaches.
    """

    radius: int
    norm: str
    parallel_safe: bool
    update_batch: Optional[Callable[[Any], Any]]
    #: Whether ``parallel_safe`` was *explicitly declared* (set on the
    #: instance, or on a class below :class:`LocalRule` in the MRO) as
    #: opposed to inherited from the trusting default.  Under
    #: ``REPRO_STATICS_AUTOPROVE=1`` the sharding tiers gate undeclared
    #: rules on the interprocedural purity verdict instead of the default.
    parallel_safe_declared: bool = False
    #: Declared label alphabet Σ (``None`` when the rule declares none);
    #: consumed by the statics layer's alphabet-closure analysis.
    alphabet: Optional[Tuple[Any, ...]] = None

    @property
    def ball_spec(self) -> Tuple[int, str]:
        """The ``(radius, norm)`` key of the rule's ball tables."""
        return (self.radius, self.norm)


def _declared_parallel_safe(rule: Any) -> bool:
    """Whether ``parallel_safe`` is an explicit author declaration.

    True when the attribute lives in the instance ``__dict__`` or on a
    class strictly below :class:`LocalRule` in the MRO.  The ``True``
    default inherited from :class:`LocalRule` (or the ``getattr`` default
    on a duck-typed rule with no such attribute) is *not* a declaration —
    it is the engines trusting the LOCAL-model contract on faith, which
    is exactly what ``REPRO_STATICS_AUTOPROVE=1`` replaces with evidence.
    """
    if not isinstance(rule, type):
        instance_dict = getattr(rule, "__dict__", None)
        if isinstance(instance_dict, dict) and "parallel_safe" in instance_dict:
            return True
    owner = rule if isinstance(rule, type) else type(rule)
    for klass in getattr(owner, "__mro__", ()):
        if klass is LocalRule:
            break
        if "parallel_safe" in klass.__dict__:
            return True
    return False


def _declared_alphabet(rule: Any) -> Optional[Tuple[Any, ...]]:
    alphabet = getattr(rule, "alphabet", None)
    if alphabet is None:
        return None
    try:
        return tuple(alphabet)
    except TypeError:
        return None


def rule_traits(rule: Any) -> RuleTraits:
    """Read a rule's declared engine traits, tolerating duck-typed rules.

    Every engine-tier decision (sharding, batch vectorisation, ball-table
    warming) goes through this accessor instead of ad-hoc ``getattr``
    probes, so the defaults live in exactly one place.
    """
    return RuleTraits(
        radius=getattr(rule, "radius", 1),
        norm=getattr(rule, "norm", "l1"),
        parallel_safe=bool(getattr(rule, "parallel_safe", True)),
        update_batch=getattr(rule, "update_batch", None),
        parallel_safe_declared=_declared_parallel_safe(rule),
        alphabet=_declared_alphabet(rule),
    )


def checked_parallel_safe(
    rule: Any, recorder: Optional[Callable[[str, str], None]] = None
) -> bool:
    """Whether the sharding tiers may fork workers for ``rule``.

    Reads the declared ``parallel_safe`` trait and — when it is ``True`` —
    consults the cached static purity verdict
    (:func:`repro.statics.purity.maybe_warn_parallel_unsafe`): a rule
    whose body is statically ``PROVEN_UNSAFE`` triggers a one-time
    :class:`RuntimeWarning` (or, under ``REPRO_STATICS_STRICT=1``, a
    :class:`RuntimeError`) *before* any worker pool forks.  The declared
    value is still returned: the author's declaration stays authoritative
    outside strict mode, the contradiction merely becomes visible.

    Under ``REPRO_STATICS_AUTOPROVE=1`` a rule with *no explicit*
    declaration is gated on evidence instead: it shards only when the
    interprocedural analysis proves its body safe, and degrades
    byte-identically otherwise.  ``recorder`` (when given) receives one
    ``("autoprove" | "autoblock", reason)`` notice per decision so the
    engines can surface it through telemetry; declared rules and the
    default posture never invoke it.
    """
    traits = rule_traits(rule)
    if not traits.parallel_safe:
        return False
    # Imported lazily: the statics package is analysis tooling layered on
    # top of this module, not a load-bearing dependency of it.
    from repro.statics.purity import autoprove_mode, maybe_warn_parallel_unsafe

    if traits.parallel_safe_declared or not autoprove_mode():
        maybe_warn_parallel_unsafe(rule)
        return True
    from repro.statics.purity import autoprove_decision

    allowed, reason = autoprove_decision(rule)
    if recorder is not None:
        recorder("autoprove" if allowed else "autoblock", reason)
    return allowed


def sharding_eligible(rule: Any) -> bool:
    """Silent twin of :func:`checked_parallel_safe` for policy decisions.

    Same outcome, no side effects: no mis-declaration warning, no strict
    escalation, no telemetry notice.  The ``auto`` engine policy
    (:func:`repro.local_model.store.resolve_engine`) uses this to skip
    the sharding tiers entirely when no rule in a schedule could shard —
    probing eligibility must not itself emit the one-time warning that
    belongs to an actual sharding attempt.
    """
    traits = rule_traits(rule)
    if not traits.parallel_safe:
        return False
    from repro.statics.purity import autoprove_mode

    if traits.parallel_safe_declared or not autoprove_mode():
        return True
    from repro.statics.purity import autoprove_decision

    return autoprove_decision(rule)[0]


class FunctionRule(LocalRule):
    """A :class:`LocalRule` defined by a plain function.

    Convenient for one-off rules::

        rule = FunctionRule(1, lambda view: min(view.values()))
    """

    def __init__(
        self,
        radius: int,
        function: Callable[[LabelView], Any],
        norm: str = "l1",
        batch: Optional[Callable[[Any], Any]] = None,
    ):
        self.radius = radius
        self.norm = norm
        self._function = function
        if batch is not None:
            self.update_batch = batch

    def update(self, view: LabelView) -> Any:
        return self._function(view)


@dataclass
class AlgorithmResult:
    """Output of running a :class:`GridAlgorithm` on a concrete instance.

    Attributes
    ----------
    node_labels:
        Mapping from nodes to their output labels (empty for pure edge
        problems).
    edge_labels:
        Mapping from canonical edge keys to output labels (empty for pure
        node problems).
    rounds:
        Total number of synchronous communication rounds charged.
    metadata:
        Free-form diagnostic information (phase-by-phase round breakdown,
        parameters chosen at run time, ...).
    """

    node_labels: Dict[Node, Any] = field(default_factory=dict)
    edge_labels: Dict[EdgeKey, Any] = field(default_factory=dict)
    rounds: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)

    def with_extra_rounds(self, extra: int) -> "AlgorithmResult":
        """Return a copy of the result with ``extra`` additional rounds charged."""
        return AlgorithmResult(
            node_labels=dict(self.node_labels),
            edge_labels=dict(self.edge_labels),
            rounds=self.rounds + extra,
            metadata=dict(self.metadata),
        )


class GridAlgorithm(abc.ABC):
    """A complete LOCAL-model algorithm for toroidal grids."""

    #: short human-readable name used in experiment reports.
    name: str = "unnamed-algorithm"

    @abc.abstractmethod
    def run(
        self,
        grid: ToroidalGrid,
        identifiers: IdentifierAssignment,
        inputs: Optional[Mapping[Node, Any]] = None,
    ) -> AlgorithmResult:
        """Execute the algorithm on ``grid`` with the given identifiers.

        ``inputs`` carries optional per-node input labels (most problems in
        the paper have none).  Implementations must only access information
        through local views and must report the number of rounds charged.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ConstantOutputAlgorithm(GridAlgorithm):
    """The trivial zero-round algorithm that outputs a constant everywhere.

    Only "trivial" LCL problems (complexity ``O(1)`` on toroidal grids)
    admit such an algorithm — see the discussion after Theorem 3 in the
    paper: on toroidal grids an LCL is solvable in constant time if and only
    if some constant labelling is feasible.
    """

    def __init__(self, node_label: Any = None, edge_label: Any = None, name: str = "constant"):
        self.node_label = node_label
        self.edge_label = edge_label
        self.name = name

    def run(
        self,
        grid: ToroidalGrid,
        identifiers: IdentifierAssignment,
        inputs: Optional[Mapping[Node, Any]] = None,
    ) -> AlgorithmResult:
        node_labels: Dict[Node, Any] = {}
        edge_labels: Dict[EdgeKey, Any] = {}
        if self.node_label is not None:
            node_labels = {node: self.node_label for node in grid.nodes()}
        if self.edge_label is not None:
            edge_labels = {edge: self.edge_label for edge in grid.edges()}
        return AlgorithmResult(node_labels=node_labels, edge_labels=edge_labels, rounds=0)
