"""The LOCAL model of distributed computing on grids.

The simulator follows the standard view of the LOCAL model used in the
paper: a time-``t`` algorithm is a mapping from radius-``t`` neighbourhoods
(including identifiers and the consistent orientation) to local outputs.
Two execution styles are provided:

* **Label rewriting** (:mod:`repro.local_model.simulator`): algorithms are
  sequences of synchronous local rules; every application of a radius-``r``
  rule costs ``r`` communication rounds.  This is the style in which the
  symmetry-breaking and colouring algorithms are implemented, and it gives
  exact round counts for the empirical complexity measurements.
* **Message passing** (:mod:`repro.local_model.messaging`): explicit
  per-node programs exchanging messages over ports, closest to the textbook
  definition.  It is used in tests and examples to validate that the
  rewriting style does not hide communication.

Engine tiers and selection
--------------------------

Label rewriting runs through five byte-identical engine tiers —
``"dict"`` (the reference), ``"indexed"`` (flat scans over precomputed
:class:`repro.grid.indexer.GridIndexer` tables), ``"array"`` (numpy code
vectors with compiled/vectorised rules), ``"parallel"``
(:class:`repro.local_model.engine.ParallelEngine`: process-sharded scans
for the rules the array tier cannot vectorise) and ``"shm"``
(:class:`repro.local_model.engine.ShmEngine`: the same sharded scans over
a persistent :mod:`repro.runtime` worker pool with shared-memory code
vectors, amortising the per-round fork cost across multi-round
schedules).  Entry points taking an ``engine`` argument also accept
``"auto"``, resolved by :func:`repro.local_model.store.resolve_engine`:

* ``"shm"`` when the call site allows that tier, the grid has at least
  :data:`repro.local_model.store.SHM_AUTO_THRESHOLD` nodes, the platform
  supports it (:func:`repro.local_model.store.shm_available`) and more
  than one worker is available;
* else ``"parallel"`` when the call site allows that tier, the grid has
  at least :data:`repro.local_model.store.PARALLEL_AUTO_THRESHOLD` nodes
  and more than one worker is available;
* otherwise ``"array"`` when numpy is importable, else ``"indexed"``.

The worker count comes from
:func:`repro.local_model.store.parallel_workers`: an explicit
``workers=`` argument wins, then the ``REPRO_WORKERS`` environment
variable, then ``os.cpu_count()``.  ``REPRO_WORKERS=0`` (or ``1``)
disables sharding entirely — the parallel tier then executes serially,
which is also the graceful fallback whenever worker processes cannot be
forked.
"""

from repro.local_model.algorithm import (
    AlgorithmResult,
    FunctionRule,
    LocalRule,
    GridAlgorithm,
)
from repro.local_model.simulator import (
    RoundLedger,
    apply_rule,
    iterate_rule,
)
from repro.local_model.engine import (
    ArrayEngine,
    IndexedEngine,
    ParallelEngine,
    SchedulePhase,
    ShmEngine,
    plan_chunks,
    run_schedule,
)
from repro.local_model.store import (
    ArrayLabelStore,
    LabelCodec,
    LabelStore,
    parallel_workers,
    resolve_engine,
    shm_available,
)
from repro.local_model.views import NeighbourhoodView, collect_view
from repro.local_model.messaging import MessagePassingNetwork, NodeProgram
from repro.local_model.order_invariant import (
    order_normalise_view,
    is_order_invariant,
)

__all__ = [
    "AlgorithmResult",
    "ArrayEngine",
    "ArrayLabelStore",
    "FunctionRule",
    "GridAlgorithm",
    "IndexedEngine",
    "LabelCodec",
    "LabelStore",
    "resolve_engine",
    "LocalRule",
    "MessagePassingNetwork",
    "NeighbourhoodView",
    "NodeProgram",
    "ParallelEngine",
    "RoundLedger",
    "SchedulePhase",
    "ShmEngine",
    "apply_rule",
    "shm_available",
    "collect_view",
    "is_order_invariant",
    "iterate_rule",
    "order_normalise_view",
    "parallel_workers",
    "plan_chunks",
    "run_schedule",
]
