"""The LOCAL model of distributed computing on grids.

The simulator follows the standard view of the LOCAL model used in the
paper: a time-``t`` algorithm is a mapping from radius-``t`` neighbourhoods
(including identifiers and the consistent orientation) to local outputs.
Two execution styles are provided:

* **Label rewriting** (:mod:`repro.local_model.simulator`): algorithms are
  sequences of synchronous local rules; every application of a radius-``r``
  rule costs ``r`` communication rounds.  This is the style in which the
  symmetry-breaking and colouring algorithms are implemented, and it gives
  exact round counts for the empirical complexity measurements.
* **Message passing** (:mod:`repro.local_model.messaging`): explicit
  per-node programs exchanging messages over ports, closest to the textbook
  definition.  It is used in tests and examples to validate that the
  rewriting style does not hide communication.
"""

from repro.local_model.algorithm import (
    AlgorithmResult,
    FunctionRule,
    LocalRule,
    GridAlgorithm,
)
from repro.local_model.simulator import (
    RoundLedger,
    apply_rule,
    iterate_rule,
)
from repro.local_model.engine import (
    ArrayEngine,
    IndexedEngine,
    SchedulePhase,
    run_schedule,
)
from repro.local_model.store import (
    ArrayLabelStore,
    LabelCodec,
    LabelStore,
    resolve_engine,
)
from repro.local_model.views import NeighbourhoodView, collect_view
from repro.local_model.messaging import MessagePassingNetwork, NodeProgram
from repro.local_model.order_invariant import (
    order_normalise_view,
    is_order_invariant,
)

__all__ = [
    "AlgorithmResult",
    "ArrayEngine",
    "ArrayLabelStore",
    "FunctionRule",
    "GridAlgorithm",
    "IndexedEngine",
    "LabelCodec",
    "LabelStore",
    "resolve_engine",
    "LocalRule",
    "MessagePassingNetwork",
    "NeighbourhoodView",
    "NodeProgram",
    "RoundLedger",
    "SchedulePhase",
    "apply_rule",
    "collect_view",
    "is_order_invariant",
    "iterate_rule",
    "order_normalise_view",
    "run_schedule",
]
