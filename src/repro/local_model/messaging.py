"""Explicit synchronous message-passing engine.

This is the textbook formulation of the LOCAL model: in each round every
node sends one (arbitrarily large) message to each neighbour, receives the
messages sent to it, and updates its state.  The engine exists to validate
that the higher-level label-rewriting style used by the main algorithms does
not hide communication: anything expressible there can be replayed here with
the same round count.

Node programs address their neighbours through *ports*: on an oriented grid
the natural ports are the :class:`repro.grid.torus.Direction` objects, so a
message sent "east" by a node is received on the "west" port of its eastern
neighbour.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.errors import SimulationError
from repro.grid.identifiers import IdentifierAssignment
from repro.grid.torus import Direction, Node, ToroidalGrid


@dataclass
class NodeContext:
    """Initial knowledge of a node: its identifier, degree and ``n``."""

    identifier: int
    grid_size: int
    dimension: int
    input_label: Any = None


class NodeProgram(abc.ABC):
    """A per-node program executed by :class:`MessagePassingNetwork`."""

    @abc.abstractmethod
    def initialise(self, context: NodeContext) -> None:
        """Receive the node's initial knowledge before round 1."""

    @abc.abstractmethod
    def outgoing_messages(self, round_number: int) -> Dict[Direction, Any]:
        """Messages to send this round, keyed by outgoing direction."""

    @abc.abstractmethod
    def receive_messages(self, round_number: int, messages: Mapping[Direction, Any]) -> None:
        """Process the messages received this round, keyed by incoming direction."""

    @abc.abstractmethod
    def has_terminated(self) -> bool:
        """Return True once the node has fixed its output."""

    @abc.abstractmethod
    def output(self) -> Any:
        """Return the node's local output (only called after termination)."""


class MessagePassingNetwork:
    """Synchronous executor for :class:`NodeProgram` instances on a grid."""

    def __init__(self, grid: ToroidalGrid, identifiers: IdentifierAssignment):
        self.grid = grid
        self.identifiers = identifiers

    def run(
        self,
        programs: Mapping[Node, NodeProgram],
        max_rounds: int,
        inputs: Optional[Mapping[Node, Any]] = None,
    ) -> "ExecutionTrace":
        """Run all programs until they terminate (or the round budget runs out)."""
        nodes = list(self.grid.nodes())
        if set(programs.keys()) != set(nodes):
            raise SimulationError("a program must be supplied for every node")

        for node in nodes:
            context = NodeContext(
                identifier=self.identifiers[node],
                grid_size=self.grid.node_count,
                dimension=self.grid.dimension,
                input_label=None if inputs is None else inputs.get(node),
            )
            programs[node].initialise(context)

        rounds_used = 0
        for round_number in range(1, max_rounds + 1):
            if all(programs[node].has_terminated() for node in nodes):
                break
            # Collect all messages first so that the round is truly synchronous.
            outbox: Dict[Node, Dict[Direction, Any]] = {}
            for node in nodes:
                if programs[node].has_terminated():
                    outbox[node] = {}
                else:
                    outbox[node] = programs[node].outgoing_messages(round_number)
            # Deliver: a message sent by u in direction d arrives at u+d on
            # the opposite port.
            inbox: Dict[Node, Dict[Direction, Any]] = {node: {} for node in nodes}
            for node in nodes:
                for direction, message in outbox[node].items():
                    target = self.grid.step(node, direction)
                    inbox[target][direction.opposite()] = message
            for node in nodes:
                if not programs[node].has_terminated():
                    programs[node].receive_messages(round_number, inbox[node])
            rounds_used = round_number

        if not all(programs[node].has_terminated() for node in nodes):
            raise SimulationError(
                f"not all nodes terminated within {max_rounds} rounds"
            )
        outputs = {node: programs[node].output() for node in nodes}
        return ExecutionTrace(outputs=outputs, rounds=rounds_used)


@dataclass
class ExecutionTrace:
    """Result of a message-passing execution."""

    outputs: Dict[Node, Any]
    rounds: int


class FloodMinimumProgram(NodeProgram):
    """Reference program: flood the minimum identifier within ``radius`` hops.

    After ``radius`` rounds every node outputs the smallest identifier in its
    radius-``radius`` neighbourhood.  Used in tests to cross-check the
    message-passing engine against direct view computations.
    """

    def __init__(self, radius: int):
        self.radius = radius
        self._best: Optional[int] = None
        self._round = 0
        self._dimension = 2

    def initialise(self, context: NodeContext) -> None:
        self._best = context.identifier
        self._round = 0
        self._dimension = context.dimension

    def outgoing_messages(self, round_number: int) -> Dict[Direction, Any]:
        message = self._best
        return {
            Direction(axis, step): message
            for axis in range(self._dimension)
            for step in (1, -1)
        }

    def receive_messages(self, round_number: int, messages: Mapping[Direction, Any]) -> None:
        for value in messages.values():
            if value is not None and value < self._best:
                self._best = value
        self._round = round_number

    def has_terminated(self) -> bool:
        return self._round >= self.radius

    def output(self) -> Any:
        return self._best
