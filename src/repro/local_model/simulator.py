"""Synchronous label-rewriting simulator with round accounting.

The simulator executes :class:`repro.local_model.algorithm.LocalRule`
instances: in one application, every node simultaneously reads the current
labels within the rule's radius and computes its next label.  The cost of
one application is the rule's radius (times the dimension for L-infinity
views).  A :class:`RoundLedger` accumulates the cost of the successive
phases of a composite algorithm, which is how the empirical
``Θ(log* n)`` versus ``Θ(n)`` measurements in the benchmarks are produced.

This module is the dict-based *reference* implementation: it recomputes
every ball with ``grid.shift`` on every node in every round, which keeps it
simple and obviously correct.  Hot paths should use the table-driven
equivalents in :mod:`repro.local_model.engine`, which are asserted
equivalent to this module by the tier-1 tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import SimulationError
from repro.grid.torus import Node, ToroidalGrid
from repro.local_model.algorithm import LocalRule
from repro.local_model.views import collect_label_view


@dataclass
class RoundLedger:
    """Accumulates the round cost of the phases of a composite algorithm."""

    total: int = 0
    phases: List[Tuple[str, int]] = field(default_factory=list)

    def charge(self, phase: str, rounds: int) -> None:
        """Charge ``rounds`` communication rounds to the named phase."""
        if rounds < 0:
            raise SimulationError(f"cannot charge a negative number of rounds ({rounds})")
        self.total += rounds
        self.phases.append((phase, rounds))

    def breakdown(self) -> Dict[str, int]:
        """Return the per-phase totals (phases with equal names are merged)."""
        summary: Dict[str, int] = {}
        for phase, rounds in self.phases:
            summary[phase] = summary.get(phase, 0) + rounds
        return summary


def apply_rule(
    grid: ToroidalGrid,
    labels: Mapping[Node, Any],
    rule: LocalRule,
    ledger: Optional[RoundLedger] = None,
    phase: str = "rule",
) -> Dict[Node, Any]:
    """Apply ``rule`` simultaneously at every node and return the new labels."""
    new_labels: Dict[Node, Any] = {}
    for node in grid.nodes():
        view = collect_label_view(grid, node, rule.radius, labels, norm=rule.norm)
        new_labels[node] = rule.update(view)
    if ledger is not None:
        ledger.charge(phase, rule.round_cost(grid.dimension))
    return new_labels


def iterate_rule(
    grid: ToroidalGrid,
    labels: Mapping[Node, Any],
    rule: LocalRule,
    should_stop: Callable[[Mapping[Node, Any]], bool],
    max_iterations: int,
    ledger: Optional[RoundLedger] = None,
    phase: str = "iterate",
) -> Dict[Node, Any]:
    """Apply ``rule`` repeatedly until ``should_stop`` holds.

    Raises :class:`repro.errors.SimulationError` if the stopping condition
    is not reached within ``max_iterations`` applications — this is the
    safety net that turns a would-be infinite loop (e.g. attempting to run a
    local algorithm for an inherently global problem) into a clean failure.
    """
    current = dict(labels)
    if should_stop(current):
        return current
    for _ in range(max_iterations):
        current = apply_rule(grid, current, rule, ledger=ledger, phase=phase)
        if should_stop(current):
            return current
    raise SimulationError(
        f"rule did not reach its stopping condition within {max_iterations} iterations"
    )


def run_phase(
    grid: ToroidalGrid,
    labels: Mapping[Node, Any],
    compute: Callable[[Node, Mapping[Node, Any]], Any],
    radius: int,
    ledger: Optional[RoundLedger] = None,
    phase: str = "phase",
    norm: str = "l1",
) -> Dict[Node, Any]:
    """Run a one-shot radius-``radius`` phase given as a per-node function.

    ``compute(node, visible)`` receives only the labels of nodes within the
    declared radius (as a mapping from *nodes* to labels, for convenience of
    phases that need the grid geometry); reads outside the radius raise a
    ``KeyError``, which surfaces as an algorithm bug in tests.

    The labelling must be total: a node within the radius that has no entry
    in ``labels`` raises a :class:`repro.errors.SimulationError` naming the
    node and phase, instead of being silently dropped from the view.
    """
    new_labels: Dict[Node, Any] = {}
    for node in grid.nodes():
        if norm == "l1":
            visible_nodes = grid.ball(node, radius, "l1")
        else:
            visible_nodes = grid.ball(node, radius, "linf")
        visible: Dict[Node, Any] = {}
        for v in visible_nodes:
            try:
                visible[v] = labels[v]
            except KeyError:
                raise SimulationError(
                    f"node {v} within radius {radius} of {node} has no label "
                    f"in phase {phase!r}; run_phase requires a total labelling"
                ) from None
        new_labels[node] = compute(node, visible)
    if ledger is not None:
        cost = radius if norm == "l1" else radius * grid.dimension
        ledger.charge(phase, cost)
    return new_labels
