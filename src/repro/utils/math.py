"""Arithmetic helpers: iterated logarithms, primes and toroidal arithmetic.

The iterated logarithm (``log*``) shows up throughout the paper as the
complexity of symmetry breaking; primes are needed by the polynomial-based
cover-free families used in Linial's colour-reduction step; toroidal
difference/distance helpers implement the ``‖x‖ = min(x, n - x)`` convention
from Section 8 of the paper.
"""

from __future__ import annotations

import math


def ceil_div(numerator: int, denominator: int) -> int:
    """Return ``ceil(numerator / denominator)`` using integer arithmetic."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    return -(-numerator // denominator)


def sign(value: int) -> int:
    """Return -1, 0 or +1 according to the sign of ``value``."""
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


def log_star(n: float, base: float = 2.0) -> int:
    """Return the iterated logarithm ``log*`` of ``n`` in the given base.

    ``log*(n)`` is the number of times the logarithm must be applied before
    the result drops to at most 1.  By convention ``log*(n) = 0`` for
    ``n <= 1``.

    >>> log_star(1)
    0
    >>> log_star(2)
    1
    >>> log_star(16)
    3
    >>> log_star(65536)
    4
    """
    if n <= 1:
        return 0
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log(value, base)
        count += 1
    return count


def iterated_log(n: float, iterations: int, base: float = 2.0) -> float:
    """Apply ``log`` to ``n`` exactly ``iterations`` times.

    Values that drop to or below zero saturate at zero, which is convenient
    when plotting empirical round counts against ``log^{(i)} n``.
    """
    value = float(n)
    for _ in range(iterations):
        if value <= 1.0:
            return 0.0
        value = math.log(value, base)
    return value


def is_prime(n: int) -> bool:
    """Return True if ``n`` is a prime number (deterministic trial division).

    The cover-free families used in colour reduction only require primes of
    a few thousand at most, so trial division is entirely adequate.
    """
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 2
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime that is greater than or equal to ``n``."""
    candidate = max(2, n)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def toroidal_difference(a: int, b: int, n: int) -> int:
    """Return the signed difference ``a - b`` on the cycle ``Z_n``.

    The result lies in ``(-n/2, n/2]`` so that it is the displacement with
    the smallest absolute value; this is the natural "relative coordinate"
    two grid nodes can compute about each other without knowing absolute
    coordinates.
    """
    if n <= 0:
        raise ValueError("modulus must be positive")
    diff = (a - b) % n
    if diff > n // 2:
        diff -= n
    return diff


def toroidal_distance(a: int, b: int, n: int) -> int:
    """Return ``‖a - b‖ = min((a - b) mod n, (b - a) mod n)`` on ``Z_n``."""
    if n <= 0:
        raise ValueError("modulus must be positive")
    diff = (a - b) % n
    return min(diff, n - diff)
