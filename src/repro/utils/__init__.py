"""Small shared utilities used across the :mod:`repro` library."""

from repro.utils.math import (
    ceil_div,
    is_prime,
    iterated_log,
    log_star,
    next_prime,
    sign,
    toroidal_difference,
    toroidal_distance,
)
from repro.utils.iter import (
    chunks,
    pairwise_cyclic,
    product_range,
    sliding_windows,
)

__all__ = [
    "ceil_div",
    "chunks",
    "is_prime",
    "iterated_log",
    "log_star",
    "next_prime",
    "pairwise_cyclic",
    "product_range",
    "sign",
    "sliding_windows",
    "toroidal_difference",
    "toroidal_distance",
]
