"""Iteration helpers shared by the grid, synthesis and analysis modules."""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def chunks(items: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield consecutive chunks of ``items`` of at most ``size`` elements.

    >>> list(chunks([1, 2, 3, 4, 5], 2))
    [[1, 2], [3, 4], [5]]
    """
    if size <= 0:
        raise ValueError("chunk size must be positive")
    for start in range(0, len(items), size):
        yield items[start:start + size]


def sliding_windows(items: Sequence[T], width: int) -> Iterator[Tuple[T, ...]]:
    """Yield all contiguous windows of ``width`` elements of ``items``.

    >>> list(sliding_windows("abcd", 2))
    [('a', 'b'), ('b', 'c'), ('c', 'd')]
    """
    if width <= 0:
        raise ValueError("window width must be positive")
    for start in range(len(items) - width + 1):
        yield tuple(items[start:start + width])


def pairwise_cyclic(items: Sequence[T]) -> Iterator[Tuple[T, T]]:
    """Yield consecutive pairs of ``items`` including the wrap-around pair.

    >>> list(pairwise_cyclic([1, 2, 3]))
    [(1, 2), (2, 3), (3, 1)]
    """
    length = len(items)
    for index in range(length):
        yield items[index], items[(index + 1) % length]


def product_range(*sizes: int) -> Iterator[Tuple[int, ...]]:
    """Iterate over the Cartesian product ``range(sizes[0]) x ...``.

    This is the canonical enumeration order for grid coordinates used
    throughout the library (last coordinate varies fastest).

    >>> list(product_range(2, 2))
    [(0, 0), (0, 1), (1, 0), (1, 1)]
    """
    return itertools.product(*(range(size) for size in sizes))


def transpose(rows: Sequence[Sequence[T]]) -> List[Tuple[T, ...]]:
    """Transpose a rectangular list of rows into a list of columns."""
    return [tuple(column) for column in zip(*rows)]
