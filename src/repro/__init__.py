"""repro — a reproduction of "LCL Problems on Grids" (Brandt et al., PODC 2017).

The library implements, from scratch and in pure Python:

* the LOCAL model of distributed computing on toroidal, consistently
  oriented ``d``-dimensional grids (:mod:`repro.grid`,
  :mod:`repro.local_model`);
* locally checkable labelling (LCL) problems, their verification and their
  complexity classes (:mod:`repro.core`);
* the complete one-dimensional (directed cycle) theory of Section 4
  (:mod:`repro.cycles`);
* the symmetry-breaking substrates — Cole–Vishkin, Linial colour reduction,
  colour-class MIS / anchors, distance and conflict colourings
  (:mod:`repro.symmetry`);
* the speed-up theorem and the normal form ``A' ∘ S_k`` of Section 5
  (:mod:`repro.speedup`);
* the automated algorithm synthesis of Section 7 and Appendix A.1 — tile
  enumeration, tile neighbourhood graphs, CSP/SAT solving and runtime
  lookup-table algorithms (:mod:`repro.synthesis`);
* the concrete problems of Sections 8–11: vertex 4-colouring, global
  3-colouring, edge (2d+1)-colouring, X-orientations
  (:mod:`repro.colouring`, :mod:`repro.orientation`);
* the lower-bound constructions: q-sum coordination, the 3-colouring
  reduction machinery, the corner-coordination problem
  (:mod:`repro.coordination`) and the undecidability construction ``L_M``
  (:mod:`repro.undecidability`);
* an experiment harness used by the benchmark suite (:mod:`repro.analysis`).

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every reproduced figure and claim.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
