"""Global (Θ(n)) vertex-colouring algorithms.

Theorem 9 shows that 3-colouring two-dimensional grids requires Ω(n) rounds,
and 2-colouring is impossible whenever ``n`` is odd; the matching upper
bound is the trivial "gather everything and solve" algorithm.  The
constructions here are the standard explicit ones:

* 2-colouring: the checkerboard ``(x + y) mod 2`` (requires every side to be
  even);
* 3-colouring: Vizing's Cartesian-product colouring
  ``(c(x_1) + ... + c(x_d)) mod 3`` built from a proper 3-colouring ``c`` of
  the cycle, which works for every ``n >= 3`` in every dimension.

Both are implemented as global algorithms: their round count is the grid
diameter, the time needed for a single node to see the whole instance.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import UnsolvableInstanceError
from repro.grid.torus import Node, ToroidalGrid
from repro.local_model.algorithm import AlgorithmResult


def _grid_diameter(grid: ToroidalGrid) -> int:
    return sum(side // 2 for side in grid.sides)


def _cycle_three_colouring(length: int) -> List[int]:
    """A proper colouring of the ``length``-cycle with colours {0, 1, 2}.

    Alternates 0/1 and closes an odd cycle with a single 2.
    """
    if length < 3:
        raise UnsolvableInstanceError("a cycle needs at least three nodes")
    colours = [index % 2 for index in range(length)]
    if length % 2 == 1:
        colours[-1] = 2
    return colours


def global_two_colouring(grid: ToroidalGrid) -> AlgorithmResult:
    """2-colour the grid (checkerboard); only possible when all sides are even.

    Raises :class:`repro.errors.UnsolvableInstanceError` for odd sides —
    this is the standard example of a problem that is global simply because
    solutions fail to exist for infinitely many ``n``.
    """
    if any(side % 2 == 1 for side in grid.sides):
        raise UnsolvableInstanceError(
            f"no 2-colouring of a torus with odd side lengths {grid.sides}"
        )
    labels: Dict[Node, int] = {
        node: sum(node) % 2 for node in grid.nodes()
    }
    return AlgorithmResult(
        node_labels=labels,
        rounds=_grid_diameter(grid),
        metadata={"method": "checkerboard"},
    )


def global_three_colouring(grid: ToroidalGrid) -> AlgorithmResult:
    """3-colour the grid via the Cartesian-product construction.

    Uses a proper 3-colouring ``c`` of the ``n``-cycle in each dimension and
    outputs ``(c(x_1) + ... + c(x_d)) mod 3``; adjacent nodes differ in
    exactly one coordinate, where ``c`` changes, so the sum changes modulo 3.
    Works for every ``n >= 3``; by Theorem 9 no ``o(n)``-round algorithm can
    achieve this, hence the charged round count is the grid diameter.
    """
    per_axis: List[List[int]] = [_cycle_three_colouring(side) for side in grid.sides]
    labels: Dict[Node, int] = {}
    for node in grid.nodes():
        labels[node] = sum(per_axis[axis][coordinate] for axis, coordinate in enumerate(node)) % 3
    return AlgorithmResult(
        node_labels=labels,
        rounds=_grid_diameter(grid),
        metadata={"method": "cartesian-product"},
    )
