"""Edge colouring ``d``-dimensional grids with ``2d + 1`` colours (Theorem 15).

The algorithm follows the paper's three-stage plan:

1. for every dimension ``q``, compute a j,k-independent set ``I_q``
   (Definition 18): per-row ruling sets whose members then slide in the
   positive ``q`` direction until their L∞ balls are disjoint;
2. every member of ``I_q`` *marks* one edge of its own ``q``-row inside its
   ball, never adjacent to a previously marked edge (the disjointness of the
   balls bounds how many foreign marks can interfere);
3. marked edges receive the extra colour ``2d``; the marked edges cut every
   row into short segments whose edges are coloured alternately with the two
   colours ``2q`` and ``2q + 1`` reserved for dimension ``q``.

Every step is local; the only ``Θ(log* n)`` ingredient is the per-row
symmetry breaking.  The paper's constants (``k = 2d``, row spacing
``2(4k+1)^d``) force impractically large grids, so the implementation keeps
them as parameters with smaller defaults and retries with larger values when
a greedy stage fails; the returned colouring is always verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.verifier import verify_proper_edge_colouring
from repro.errors import SimulationError, UnsolvableInstanceError
from repro.grid.identifiers import IdentifierAssignment
from repro.grid.indexer import GridIndexer
from repro.grid.torus import Direction, EdgeKey, Node, ToroidalGrid
from repro.local_model.algorithm import AlgorithmResult, GridAlgorithm
from repro.local_model.store import require_numpy, resolve_vector_engine
from repro.colouring.jk_independent import JKIndependentSet, compute_jk_independent_set
from repro.symmetry.linial import linial_colour_reduction
from repro.symmetry.reduction import reduce_colours_to


def _row_edge(grid: ToroidalGrid, node: Node, axis: int, offset: int) -> EdgeKey:
    """The edge of ``node``'s ``axis``-row starting ``offset`` steps away.

    ``offset = 0`` is the edge leaving ``node`` in the positive direction;
    negative offsets go the other way.
    """
    step = tuple(offset if index == axis else 0 for index in range(grid.dimension))
    return (grid.shift(node, step), axis)


def _edges_adjacent(grid: ToroidalGrid, first: EdgeKey, second: EdgeKey) -> bool:
    """Two edges are adjacent when they share an endpoint."""
    first_nodes = {first[0], grid.step(first[0], Direction(first[1], 1))}
    second_nodes = {second[0], grid.step(second[0], Direction(second[1], 1))}
    return bool(first_nodes & second_nodes)


def _mark_edges(
    grid: ToroidalGrid,
    identifiers: IdentifierAssignment,
    independent_sets: List[JKIndependentSet],
    window: int,
) -> Tuple[Set[EdgeKey], int]:
    """Stage 2: every member marks a nearby row edge, avoiding adjacency.

    Members of all dimensions are processed by the classes of a schedule
    colouring of their joint conflict graph (members close enough that their
    choices could interfere).  Raises on failure so the caller can retry.
    """
    proposers: List[Tuple[Node, int]] = []
    for independent_set in independent_sets:
        for member in independent_set.members:
            proposers.append((member, independent_set.axis))

    interaction = 2 * window + 2
    adjacency: Dict[Tuple[Node, int], List[Tuple[Node, int]]] = {p: [] for p in proposers}
    for index, first in enumerate(proposers):
        for second in proposers[index + 1:]:
            if grid.linf_distance(first[0], second[0]) <= interaction:
                adjacency[first].append(second)
                adjacency[second].append(first)
    initial = {p: 2 * identifiers[p[0]] + p[1] for p in proposers}
    max_degree = max((len(n) for n in adjacency.values()), default=0)
    linial = linial_colour_reduction(adjacency, initial, max_degree=max_degree)
    reduced = reduce_colours_to(adjacency, linial.colours)

    classes: Dict[int, List[Tuple[Node, int]]] = {}
    for proposer, colour in reduced.colours.items():
        classes.setdefault(colour, []).append(proposer)

    marked: Set[EdgeKey] = set()
    for colour in sorted(classes):
        for member, axis in classes[colour]:
            chosen: Optional[EdgeKey] = None
            for offset in range(-window, window):
                candidate = _row_edge(grid, member, axis, offset)
                if all(not _edges_adjacent(grid, candidate, other) for other in marked):
                    chosen = candidate
                    break
            if chosen is None:
                raise SimulationError(
                    f"member {member} (axis {axis}) could not mark a free edge; "
                    "increase the separation radius"
                )
            marked.add(chosen)
    schedule_rounds = (linial.rounds + reduced.rounds + len(classes)) * interaction * grid.dimension
    return marked, schedule_rounds


def _colour_row_edges(
    labels: Dict[EdgeKey, int],
    row_edges: List[EdgeKey],
    marked: Set[EdgeKey],
    axis: int,
    base: int,
    special: int,
) -> None:
    """Colour one cyclic row: marked edges special, runs alternate between."""
    length = len(row_edges)
    marked_positions = [
        index for index, edge in enumerate(row_edges) if edge in marked
    ]
    if not marked_positions:
        raise SimulationError(
            f"row through {row_edges[0][0]} along axis {axis} has no marked edge; "
            "the j,k-independent set failed to cover it"
        )
    for position in marked_positions:
        labels[row_edges[position]] = special
    # Colour each maximal run of unmarked edges alternately, starting
    # right after a marked edge.
    for start_index, start in enumerate(marked_positions):
        end = marked_positions[(start_index + 1) % len(marked_positions)]
        gap = (end - start) % length
        if gap == 0:
            # A single marked edge in the row: the segment is the
            # whole remaining cycle.
            gap = length
        for step in range(1, gap):
            position = (start + step) % length
            labels[row_edges[position]] = base + (step - 1) % 2


def _colour_segments(
    grid: ToroidalGrid,
    marked: Set[EdgeKey],
    number_of_colours: int,
    engine: str = "auto",
) -> Dict[EdgeKey, int]:
    """Stage 3: marked edges take the last colour, rows alternate in between.

    ``engine`` selects the execution path (all byte-identical, pinned by
    the randomized equivalence suite): ``"dict"`` walks ``grid.rows``
    directly (the seed reference), ``"indexed"`` reuses the grid indexer's
    precomputed row tables so retries with larger parameters do not
    re-enumerate coordinate tuples, and ``"array"`` computes every edge's
    cyclic distance to its previous marked edge with one vectorised
    ``searchsorted`` per row.
    """
    engine = resolve_vector_engine(engine)
    labels: Dict[EdgeKey, int] = {}
    special = number_of_colours - 1
    if engine == "dict":
        for axis in range(grid.dimension):
            base = 2 * axis
            for row in grid.rows(axis):
                row_edges = [(node, axis) for node in row]
                _colour_row_edges(labels, row_edges, marked, axis, base, special)
        return labels
    indexer = GridIndexer.for_grid(grid)
    if engine == "array":
        return _colour_segments_array(grid, indexer, marked, special)
    nodes = indexer.nodes
    for axis in range(grid.dimension):
        base = 2 * axis
        for row_indices in indexer.rows(axis):
            row_edges = [(nodes[position], axis) for position in row_indices]
            _colour_row_edges(labels, row_edges, marked, axis, base, special)
    return labels


def _colour_segments_array(
    grid: ToroidalGrid,
    indexer: GridIndexer,
    marked: Set[EdgeKey],
    special: int,
) -> Dict[EdgeKey, int]:
    """Array tier of :func:`_colour_segments`.

    For every position of a row, the colour is a pure function of the
    cyclic distance ``step`` to the previous marked position: ``special``
    at distance 0, else ``base + (step - 1) % 2`` — computed for a whole
    row at once via ``searchsorted`` over the marked positions.
    """
    np = require_numpy()
    labels: Dict[EdgeKey, int] = {}
    nodes = indexer.nodes
    marked_flags = np.zeros(indexer.node_count, dtype=bool)
    axis_of_marked: Dict[int, Set[int]] = {}
    for node, axis in marked:
        axis_of_marked.setdefault(axis, set()).add(indexer.index_of(node))
    for axis in range(grid.dimension):
        base = 2 * axis
        marked_flags[:] = False
        for position in axis_of_marked.get(axis, ()):
            marked_flags[position] = True
        for row_indices in indexer.rows(axis):
            row = np.asarray(row_indices, dtype=np.int64)
            length = len(row)
            marked_positions = np.nonzero(marked_flags[row])[0]
            if len(marked_positions) == 0:
                raise SimulationError(
                    f"row through {nodes[row_indices[0]]} along axis {axis} has "
                    "no marked edge; the j,k-independent set failed to cover it"
                )
            positions = np.arange(length)
            previous = marked_positions[
                np.searchsorted(marked_positions, positions, side="right") - 1
            ]
            steps = (positions - previous) % length
            colours = np.where(steps == 0, special, base + (steps - 1) % 2)
            for position, colour in zip(row_indices, colours):
                labels[(nodes[position], axis)] = int(colour)
    return labels


def edge_colouring(
    grid: ToroidalGrid,
    identifiers: IdentifierAssignment,
    separation: int = 3,
    spacing: Optional[int] = None,
    max_retries: int = 2,
    engine: str = "auto",
) -> AlgorithmResult:
    """Colour the edges of the grid with ``2d + 1`` colours.

    ``separation`` is the L∞ ball radius of the j,k-independent sets (the
    paper uses ``2d``; any value large enough for the marking stage works
    and smaller values keep the instance sizes practical).  ``spacing``
    overrides the per-row ruling-set distance.  The stages are retried with
    doubled parameters up to ``max_retries`` times; the result is verified
    before being returned.

    ``engine`` selects the execution path of the j,k-independent-set and
    segment-colouring stages (``"dict"`` reference, ``"indexed"``,
    ``"array"`` for the vectorised segment colouring); all engines are
    byte-identical, pinned by the randomized equivalence suite.
    """
    number_of_colours = 2 * grid.dimension + 1
    attempt = 0
    current_separation = separation
    current_spacing = spacing
    last_error: Optional[Exception] = None
    while attempt <= max_retries:
        try:
            return _edge_colouring_once(
                grid,
                identifiers,
                current_separation,
                current_spacing,
                number_of_colours,
                engine=engine,
            )
        except SimulationError as error:
            last_error = error
            attempt += 1
            current_separation += 1
            current_spacing = None if current_spacing is None else current_spacing * 2
    raise SimulationError(f"edge colouring failed after {max_retries + 1} attempts: {last_error}")


def _edge_colouring_once(
    grid: ToroidalGrid,
    identifiers: IdentifierAssignment,
    separation: int,
    spacing: Optional[int],
    number_of_colours: int,
    engine: str = "auto",
) -> AlgorithmResult:
    engine = resolve_vector_engine(engine)
    if spacing is None:
        spacing = (2 * separation + 1) ** 2
    if min(grid.sides) <= spacing:
        raise UnsolvableInstanceError(
            f"grid side {min(grid.sides)} too small for the row spacing {spacing}; "
            "use a larger grid or a larger spacing override"
        )
    independent_sets: List[JKIndependentSet] = []
    jk_rounds = 0
    # The j,k stage has dict and indexed paths; the array tier rides on the
    # indexed tables there (its win is the segment-colouring stage below).
    jk_engine = "dict" if engine == "dict" else "indexed"
    for axis in range(grid.dimension):
        independent_set = compute_jk_independent_set(
            grid,
            identifiers,
            axis,
            k=separation,
            spacing=spacing,
            movement_cap=min(3 * spacing, min(grid.sides) - 1),
            engine=jk_engine,
        )
        independent_sets.append(independent_set)
        jk_rounds = max(jk_rounds, independent_set.rounds)

    marked, marking_rounds = _mark_edges(grid, identifiers, independent_sets, separation)
    labels = _colour_segments(grid, marked, number_of_colours, engine=engine)
    verification = verify_proper_edge_colouring(grid, labels, number_of_colours)
    if not verification.valid:
        raise SimulationError(
            f"edge colouring verification failed with {len(verification.violations)} violations"
        )
    segment_rounds = 2 * (spacing + spacing)
    total = jk_rounds + marking_rounds + segment_rounds
    return AlgorithmResult(
        edge_labels=labels,
        rounds=total,
        metadata={
            "separation": separation,
            "spacing": spacing,
            "marked_edges": len(marked),
            "jk_rounds": jk_rounds,
            "marking_rounds": marking_rounds,
            "segment_rounds": segment_rounds,
        },
    )


@dataclass
class EdgeColouringAlgorithm(GridAlgorithm):
    """The Theorem 15 edge-colouring packaged as a :class:`GridAlgorithm`."""

    separation: int = 3
    spacing: Optional[int] = None
    name: str = "edge-(2d+1)-colouring"
    engine: str = "auto"

    def run(
        self,
        grid: ToroidalGrid,
        identifiers: IdentifierAssignment,
        inputs: Optional[Mapping[Node, object]] = None,
    ) -> AlgorithmResult:
        return edge_colouring(
            grid,
            identifiers,
            separation=self.separation,
            spacing=self.spacing,
            engine=self.engine,
        )
