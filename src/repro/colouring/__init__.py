"""Vertex and edge colouring algorithms on grids (Sections 8–10).

* :mod:`repro.colouring.vertex4` — the Theorem 4 construction: anchors in
  ``G^[ℓ]``, radii via conflict colouring, the border-count parity
  decomposition and the final 4-colouring.
* :mod:`repro.colouring.vertex_global` — the global algorithms for 2- and
  3-colouring (Θ(n), Theorem 9 shows 3-colouring cannot be done faster).
* :mod:`repro.colouring.jk_independent` — the j,k-independent sets of
  Definition 18 (per-row ruling sets plus eastward conflict resolution).
* :mod:`repro.colouring.edge_colouring` — the (2d+1)-edge-colouring of
  Theorem 15 built on top of the j,k-independent sets.
* :mod:`repro.colouring.impossibility` — the parity impossibility of
  Theorem 21 and exhaustive small-instance infeasibility certificates.
"""

from repro.colouring.vertex_global import (
    global_three_colouring,
    global_two_colouring,
)
from repro.colouring.vertex4 import FourColouringAlgorithm, four_colouring
from repro.colouring.jk_independent import JKIndependentSet, compute_jk_independent_set
from repro.colouring.edge_colouring import EdgeColouringAlgorithm, edge_colouring
from repro.colouring.impossibility import (
    edge_colouring_parity_obstruction,
    exhaustive_edge_colouring_infeasible,
    exhaustive_vertex_colouring_feasible,
)

__all__ = [
    "EdgeColouringAlgorithm",
    "FourColouringAlgorithm",
    "JKIndependentSet",
    "compute_jk_independent_set",
    "edge_colouring",
    "edge_colouring_parity_obstruction",
    "exhaustive_edge_colouring_infeasible",
    "exhaustive_vertex_colouring_feasible",
    "four_colouring",
    "global_three_colouring",
    "global_two_colouring",
]
