"""j,k-independent sets (Definition 18) — the backbone of the edge colouring.

A *j,k-independent set with respect to dimension* ``q`` is a set ``M`` of
nodes such that

1. every node has a member of ``M`` in its ``q``-directional row within
   distance ``j``, and
2. the L∞ radius-``k`` balls of the members are pairwise disjoint.

The paper's construction first takes a maximal independent set of large
distance inside every ``q``-row and then resolves the two-dimensional
conflicts by letting members slide in the positive ``q`` direction until
their balls are free, processed in phases given by a schedule colouring.
We implement exactly that, with configurable (practically sized) constants:
the per-row spacing, the movement cap and the schedule colouring of the
member conflict graph.  Failures (a member that cannot find a free slot
within its movement budget) are reported so the caller can retry with larger
constants — the paper's own constants, ``2(4k+1)^d`` and friends, guarantee
success but are far too large to simulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import SimulationError
from repro.grid.identifiers import IdentifierAssignment
from repro.grid.indexer import GridIndexer
from repro.grid.torus import Node, ToroidalGrid
from repro.symmetry.linial import linial_colour_reduction
from repro.symmetry.reduction import reduce_colours_to
from repro.symmetry.ruling_sets import row_ruling_set


@dataclass
class JKIndependentSet:
    """A j,k-independent set together with its parameters and round cost."""

    members: Set[Node]
    axis: int
    j: int
    k: int
    rounds: int
    phase_rounds: Dict[str, int] = field(default_factory=dict)

    def verify(self, grid: ToroidalGrid) -> List[str]:
        """Return a list of violated Definition 18 properties (empty = valid)."""
        problems: List[str] = []
        members = sorted(self.members)
        for index, first in enumerate(members):
            for second in members[index + 1:]:
                if grid.linf_distance(first, second) <= 2 * self.k:
                    problems.append(
                        f"balls of {first} and {second} intersect "
                        f"(L-infinity distance {grid.linf_distance(first, second)})"
                    )
        for row in grid.rows(self.axis):
            member_positions = [
                position for position, node in enumerate(row) if node in self.members
            ]
            if not member_positions:
                problems.append(f"row through {row[0]} has no member at all")
                continue
            length = len(row)
            for position in range(length):
                closest = min(
                    min((position - p) % length, (p - position) % length)
                    for p in member_positions
                )
                if closest > self.j:
                    problems.append(
                        f"node {row[position]} is {closest} > j={self.j} away from every "
                        "member in its row"
                    )
                    break
        return problems


def _member_conflict_graph(
    grid: ToroidalGrid, members: Set[Node], interaction_radius: int
) -> Dict[Node, List[Node]]:
    adjacency: Dict[Node, List[Node]] = {member: [] for member in members}
    ordered = sorted(members)
    for index, first in enumerate(ordered):
        for second in ordered[index + 1:]:
            if grid.linf_distance(first, second) <= interaction_radius:
                adjacency[first].append(second)
                adjacency[second].append(first)
    return adjacency


def _slide_members_dict(
    grid: ToroidalGrid,
    classes: Dict[int, List[Node]],
    axis: int,
    k: int,
    movement_cap: int,
) -> "tuple[Dict[Node, Node], int]":
    """Reference slide phase: scan the decided set per candidate slot."""
    step = tuple(1 if index == axis else 0 for index in range(grid.dimension))
    offsets = _slide_offsets(movement_cap)
    final_positions: Dict[Node, Node] = {}
    decided: Set[Node] = set()
    slide_rounds = 0
    for colour in sorted(classes):
        for member in classes[colour]:
            placed = None
            for offset in offsets:
                candidate = grid.shift(
                    member, tuple(component * offset for component in step)
                )
                if all(
                    grid.linf_distance(candidate, other) > 2 * k for other in decided
                ):
                    placed = candidate
                    break
            if placed is None:
                raise SimulationError(
                    f"member {member} found no free slot within {movement_cap} steps; "
                    "increase the spacing"
                )
            final_positions[member] = placed
            decided.add(placed)
        slide_rounds += 1
    return final_positions, slide_rounds


def _slide_members_indexed(
    grid: ToroidalGrid,
    classes: Dict[int, List[Node]],
    axis: int,
    k: int,
    movement_cap: int,
) -> "tuple[Dict[Node, Node], int]":
    """Indexed slide phase: occupancy flags checked through L∞ ball tables.

    A candidate slot is free exactly when no decided member lies within L∞
    distance ``2k`` of it, i.e. when no flag is set on its radius-``2k``
    L∞ ball row — the same condition the reference phase evaluates by
    scanning the decided set, so the chosen slots are identical.
    """
    indexer = GridIndexer.for_grid(grid)
    ball_rows = indexer.ball_node_table(2 * k, "linf")
    step = tuple(1 if index == axis else 0 for index in range(grid.dimension))
    offsets = _slide_offsets(movement_cap)
    occupied = [False] * indexer.node_count
    final_positions: Dict[Node, Node] = {}
    slide_rounds = 0
    for colour in sorted(classes):
        for member in classes[colour]:
            placed = None
            for offset in offsets:
                candidate = grid.shift(
                    member, tuple(component * offset for component in step)
                )
                candidate_index = indexer.index_of(candidate)
                if not any(occupied[target] for target in ball_rows[candidate_index]):
                    placed = candidate
                    occupied[candidate_index] = True
                    break
            if placed is None:
                raise SimulationError(
                    f"member {member} found no free slot within {movement_cap} steps; "
                    "increase the spacing"
                )
            final_positions[member] = placed
        slide_rounds += 1
    return final_positions, slide_rounds


def _slide_offsets(movement_cap: int) -> List[int]:
    """Candidate slide magnitudes in closest-first order: 0, +1, -1, ..."""
    offsets = [0]
    for magnitude in range(1, movement_cap + 1):
        offsets.append(magnitude)
        offsets.append(-magnitude)
    return offsets


def compute_jk_independent_set(
    grid: ToroidalGrid,
    identifiers: IdentifierAssignment,
    axis: int,
    k: int,
    spacing: Optional[int] = None,
    movement_cap: Optional[int] = None,
    engine: str = "indexed",
) -> JKIndependentSet:
    """Compute a j,k-independent set with respect to ``axis``.

    ``spacing`` is the per-row ruling-set distance (default ``4(2k+1)``) and
    ``movement_cap`` bounds how far a member may slide east (default
    ``spacing - (2k+1)``); the resulting ``j`` is ``spacing + movement_cap``.
    Raises :class:`repro.errors.SimulationError` when some member cannot
    find a free slot — callers retry with larger constants.

    ``engine`` selects the execution path (``"indexed"`` default,
    ``"dict"`` reference); both produce byte-identical results, pinned by
    the randomized equivalence harness.
    """
    if engine not in ("indexed", "dict"):
        raise ValueError(f"unknown engine {engine!r}; expected 'indexed' or 'dict'")
    if spacing is None:
        spacing = 4 * (2 * k + 1)
    if movement_cap is None:
        movement_cap = spacing - (2 * k + 1)
    if min(grid.sides) <= spacing:
        raise SimulationError(
            f"grid side {min(grid.sides)} too small for row spacing {spacing}"
        )

    ruling = row_ruling_set(grid, identifiers, axis, spacing, engine=engine)
    members = set(ruling.members)

    # Schedule colouring of the member conflict graph: members that could
    # ever interact (balls within reach of each other even after sliding).
    # The conflict graph has one node per *member* (a few per row), so the
    # pairwise construction is cheap on both engines and stays shared.
    interaction_radius = 2 * k + movement_cap + 1
    adjacency = _member_conflict_graph(grid, members, interaction_radius)
    initial = {member: identifiers[member] for member in members}
    max_degree = max((len(neighbours) for neighbours in adjacency.values()), default=0)
    linial = linial_colour_reduction(adjacency, initial, max_degree=max_degree)
    reduced = reduce_colours_to(adjacency, linial.colours)

    classes: Dict[int, List[Node]] = {}
    for member, colour in reduced.colours.items():
        classes.setdefault(colour, []).append(member)

    # Greedy slot selection by schedule classes.  The paper slides members
    # only towards larger coordinates; searching both directions (closest
    # offsets first) preserves every property of Definition 18 and roughly
    # doubles the slack of the greedy, so that is what we do.
    if engine == "indexed":
        final_positions, slide_rounds = _slide_members_indexed(
            grid, classes, axis, k, movement_cap
        )
    else:
        final_positions, slide_rounds = _slide_members_dict(
            grid, classes, axis, k, movement_cap
        )

    overhead = interaction_radius * grid.dimension
    phase_rounds = {
        "row-ruling-set": ruling.rounds,
        "schedule-colouring": (linial.rounds + reduced.rounds) * overhead,
        "sliding": slide_rounds * (movement_cap + 2 * k + 1),
    }
    return JKIndependentSet(
        members=set(final_positions.values()),
        axis=axis,
        j=spacing + movement_cap,
        k=k,
        rounds=sum(phase_rounds.values()),
        phase_rounds=phase_rounds,
    )
