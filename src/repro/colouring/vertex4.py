"""4-colouring ``d``-dimensional grids in ``Θ(log* n)`` (Theorem 4).

The algorithm follows the paper's construction:

1. compute an anchor set ``M`` — a maximal independent set of ``G^[ℓ]`` for
   an even parameter ``ℓ``;
2. assign every anchor ``v`` a radius ``r(v)`` with ``ℓ < r(v) < 2ℓ`` such
   that the bounding hyperplanes of nearby L∞ balls are separated by at
   least 2 in every dimension — a conflict-colouring instance solved
   greedily over a schedule colouring of the anchor conflict graph;
3. let ``count(v)`` be the number of pairs ``(i, u)`` such that node ``v``
   lies on the ``i``-th dimension border of the ball ``B_∞(u, r(u))``; the
   parity of ``count`` splits the nodes into two classes whose connected
   components each fit inside a single ball (Lemma 8);
4. 2-colour each component (they are bipartite because they are small
   compared to the torus) and give the two classes disjoint palettes —
   a proper 4-colouring.

The paper's worst-case parameter ``ℓ = 1 + 12d·16^d`` is astronomically
conservative; in practice small even values of ``ℓ`` succeed, and the
implementation retries with a larger ``ℓ`` whenever the greedy conflict
colouring runs out of radii or the parity decomposition fails to produce
bipartite components.  Every run is verified before being returned.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.verifier import verify_proper_vertex_colouring
from repro.errors import SimulationError, UnsolvableInstanceError
from repro.grid.geometry import ball_offsets
from repro.grid.identifiers import IdentifierAssignment
from repro.grid.indexer import GridIndexer
from repro.grid.torus import Node, ToroidalGrid
from repro.local_model.algorithm import AlgorithmResult, GridAlgorithm
from repro.local_model.store import require_numpy, resolve_vector_engine
from repro.symmetry.conflict_colouring import (
    ConflictColouringInstance,
    solve_conflict_colouring,
)
from repro.symmetry.linial import linial_colour_reduction
from repro.symmetry.mis import compute_anchors
from repro.symmetry.reduction import reduce_colours_to
from repro.utils.math import toroidal_difference


@dataclass
class _RadiusAssignment:
    radii: Dict[Node, int]
    rounds: int


def _anchor_conflict_graph(
    grid: ToroidalGrid, anchors: Set[Node], interaction_radius: int
) -> Dict[Node, List[Node]]:
    """Anchors within L∞ distance ``interaction_radius`` of each other."""
    adjacency: Dict[Node, List[Node]] = {anchor: [] for anchor in anchors}
    anchor_list = sorted(anchors)
    for index, first in enumerate(anchor_list):
        for second in anchor_list[index + 1:]:
            if grid.linf_distance(first, second) <= interaction_radius:
                adjacency[first].append(second)
                adjacency[second].append(first)
    return adjacency


def _assign_radii(
    grid: ToroidalGrid,
    anchors: Set[Node],
    identifiers: IdentifierAssignment,
    ell: int,
    radius_factor: int,
    engine: str = "auto",
) -> _RadiusAssignment:
    """Assign ball radii to anchors via greedy conflict colouring (step 2).

    The paper draws the radii from the open interval ``(ℓ, 2ℓ)``; we allow
    the wider range ``(ℓ, radius_factor·ℓ)`` — coverage only needs
    ``r(v) > ℓ`` and the separation property is enforced explicitly — which
    gives the greedy enough slack to succeed with small ``ℓ``.  ``engine``
    selects the execution path of the conflict-colouring schedule rounds
    (see :func:`repro.symmetry.conflict_colouring.solve_conflict_colouring`);
    all paths are byte-identical.
    """
    max_radius = radius_factor * ell - 1
    interaction_radius = 2 * max_radius + 2
    adjacency = _anchor_conflict_graph(grid, anchors, interaction_radius)
    available = {anchor: tuple(range(ell + 1, max_radius + 1)) for anchor in anchors}

    def forbidden(u: Node, v: Node, ru: int, rv: int) -> bool:
        # The separation property (2) only constrains pairs whose enlarged
        # balls actually intersect.
        if grid.linf_distance(u, v) > ru + rv + 2:
            return False
        for axis in range(grid.dimension):
            delta = toroidal_difference(v[axis], u[axis], grid.sides[axis])
            for epsilon_u in (1, -1):
                for epsilon_v in (1, -1):
                    for slack in (-1, 0, 1):
                        if epsilon_u * ru == slack + epsilon_v * rv + delta:
                            return True
        return False

    instance = ConflictColouringInstance(
        adjacency=adjacency,
        available=available,
        forbidden=forbidden,
    )
    # Schedule colouring of the conflict graph (Linial + batch reduction on
    # the anchor graph, simulated on the grid with the usual overhead).
    initial = {anchor: identifiers[anchor] for anchor in anchors}
    max_degree = max((len(neighbours) for neighbours in adjacency.values()), default=0)
    linial = linial_colour_reduction(adjacency, initial, max_degree=max_degree)
    reduced = reduce_colours_to(adjacency, linial.colours)
    overhead = interaction_radius * grid.dimension
    try:
        result = solve_conflict_colouring(instance, reduced.colours, engine=engine)
        radii = result.assignment
        rounds = (linial.rounds + reduced.rounds + result.rounds) * overhead
    except SimulationError:
        # The paper guarantees the greedy succeeds only for its astronomically
        # large ℓ; with practical ℓ we fall back to solving the same local
        # constraint system exactly with the backtracking CSP solver.  The
        # constraints are unchanged, only the search strategy differs (see the
        # substitution table in DESIGN.md).
        radii = _assign_radii_csp(adjacency, available, forbidden)
        rounds = (linial.rounds + reduced.rounds + len(set(reduced.colours.values()))) * overhead
    return _RadiusAssignment(radii=radii, rounds=rounds)


def _assign_radii_csp(adjacency, available, forbidden) -> Dict[Node, int]:
    """Exact fallback for the radius assignment (same constraints, full search)."""
    from repro.synthesis.csp import BinaryCSP, solve_binary_csp

    csp = BinaryCSP()
    for anchor, radii in available.items():
        csp.add_variable(anchor, radii)
    seen = set()
    for anchor, neighbours in adjacency.items():
        for neighbour in neighbours:
            if (neighbour, anchor) in seen:
                continue
            seen.add((anchor, neighbour))

            def constraint(ru, rv, _u=anchor, _v=neighbour):
                return not forbidden(_u, _v, ru, rv)

            csp.add_constraint(anchor, neighbour, constraint)
    result = solve_binary_csp(csp, node_budget=2_000_000)
    if not result.satisfiable or result.assignment is None:
        raise SimulationError(
            "no radius assignment satisfies the separation constraints; "
            "increase ℓ or the radius factor"
        )
    return dict(result.assignment)


def _shell_contributions(
    grid: ToroidalGrid, radius: int
) -> Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...]]:
    """Shell offsets of an L∞ ball and their per-axis border contributions.

    For a shell offset ``o``, the node ``anchor + o`` lies on the axis-``a``
    border of the ball exactly when its toroidal distance to the anchor
    along ``a`` is the radius; ``|o_a| <= radius < side_a``, so that
    distance is ``min(|o_a|, side_a - |o_a|)``.
    """
    offsets = tuple(
        offset
        for offset in ball_offsets(grid.dimension, radius, "linf")
        if max(abs(component) for component in offset) == radius
    )
    contributions = tuple(
        sum(
            1
            for axis in range(grid.dimension)
            if min(abs(offset[axis]), grid.sides[axis] - abs(offset[axis])) == radius
        )
        for offset in offsets
    )
    return offsets, contributions


def _border_counts(
    grid: ToroidalGrid, radii: Mapping[Node, int], engine: str = "auto"
) -> Dict[Node, int]:
    """Step 3: count, for every node, the dimension borders it lies on.

    ``engine`` selects the execution path (``"dict"`` reference shifting
    coordinate tuples per anchor, ``"indexed"`` reusing the shell's
    target-index table across all anchors of a radius, ``"array"``
    scatter-adding every anchor's shell in one numpy ``np.add.at`` per
    radius group); all three are byte-identical, pinned by the randomized
    equivalence suite.  ``"parallel"``/``"shm"`` are accepted (so one
    engine value can drive the whole 4-colouring) and execute as the
    array tier — this phase is a single scatter pass, not a multi-round
    sharded rule scan.
    """
    engine = resolve_vector_engine(engine)
    if engine == "dict":
        counts_by_node: Dict[Node, int] = {node: 0 for node in grid.nodes()}
        shell_cache: Dict[int, Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...]]] = {}
        for anchor, radius in radii.items():
            if radius not in shell_cache:
                shell_cache[radius] = _shell_contributions(grid, radius)
            offsets, contributions = shell_cache[radius]
            for offset, contribution in zip(offsets, contributions):
                if contribution:
                    counts_by_node[grid.shift(anchor, offset)] += contribution
        return counts_by_node
    indexer = GridIndexer.for_grid(grid)
    if engine == "array":
        return _border_counts_array(grid, indexer, radii)
    counts = [0] * indexer.node_count
    shells: Dict[int, Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...]]] = {}
    for anchor, radius in radii.items():
        shell = shells.get(radius)
        if shell is None:
            offsets, contributions = _shell_contributions(grid, radius)
            shell = (indexer.offset_table(offsets), contributions)
            shells[radius] = shell
        table, contributions = shell
        row = table[indexer.index_of(anchor)]
        for target, contribution in zip(row, contributions):
            if contribution:
                counts[target] += contribution
    return indexer.to_mapping(counts)


def _border_counts_array(
    grid: ToroidalGrid, indexer: GridIndexer, radii: Mapping[Node, int]
) -> Dict[Node, int]:
    """Array tier of :func:`_border_counts`: one scatter-add per radius group.

    ``np.add.at`` accumulates unbuffered, so shell offsets that wrap onto
    the same node on a small torus contribute every occurrence — exactly
    like the per-anchor loops of the other tiers.
    """
    np = require_numpy()
    counts = np.zeros(indexer.node_count, dtype=np.int64)
    by_radius: Dict[int, List[int]] = {}
    for anchor, radius in radii.items():
        by_radius.setdefault(radius, []).append(indexer.index_of(anchor))
    for radius, anchor_positions in by_radius.items():
        offsets, contributions = _shell_contributions(grid, radius)
        keep = tuple(
            position
            for position, contribution in enumerate(contributions)
            if contribution
        )
        if not keep:
            continue
        gather = indexer.offset_index_array(offsets)[
            np.asarray(anchor_positions, dtype=np.int64)[:, None],
            np.asarray(keep, dtype=np.int64)[None, :],
        ]
        weights = np.asarray([contributions[position] for position in keep], dtype=np.int64)
        np.add.at(counts, gather.ravel(), np.tile(weights, len(anchor_positions)))
    return indexer.to_mapping([int(count) for count in counts])


def _two_colour_components(
    grid: ToroidalGrid,
    identifiers: IdentifierAssignment,
    counts: Mapping[Node, int],
    diameter_bound: int,
) -> Dict[Node, int]:
    """Steps 4: split by parity of ``count`` and 2-colour each component.

    Both BFS passes run over the indexer's precomputed neighbour table
    (flat integer indices), visiting nodes and neighbours in exactly the
    order of the tuple-based implementation.
    """
    indexer = GridIndexer.for_grid(grid)
    nodes = indexer.nodes
    neighbour_table = indexer.neighbour_table()
    count_values = [counts[node] for node in nodes]
    id_values = indexer.to_values(identifiers)
    colours: Dict[Node, int] = {}
    visited = [False] * indexer.node_count
    for start in range(indexer.node_count):
        if visited[start]:
            continue
        parity = count_values[start] % 2
        # Collect the connected component of same-parity nodes.
        component: List[int] = []
        queue = deque([start])
        visited[start] = True
        while queue:
            position = queue.popleft()
            component.append(position)
            for neighbour in neighbour_table[position]:
                if visited[neighbour]:
                    continue
                if count_values[neighbour] % 2 == parity:
                    visited[neighbour] = True
                    queue.append(neighbour)
        # The component must be small (contained in one ball); otherwise the
        # radii separation failed and the caller will retry with larger ℓ.
        for position in component:
            for other in component:
                if grid.linf_distance(nodes[position], nodes[other]) > diameter_bound:
                    raise SimulationError(
                        "a parity component spans more than one ball; "
                        "the radii separation property failed"
                    )
        # 2-colour the component by BFS parity from its smallest-identifier node.
        root = min(component, key=lambda position: id_values[position])
        level: Dict[int, int] = {root: 0}
        queue = deque([root])
        component_set = set(component)
        while queue:
            position = queue.popleft()
            for neighbour in neighbour_table[position]:
                if neighbour not in component_set:
                    continue
                if neighbour in level:
                    if (level[neighbour] + level[position]) % 2 == 0 and neighbour != position:
                        # Equal BFS parity on adjacent nodes: an odd cycle.
                        raise SimulationError(
                            "a parity component is not bipartite; retry with larger ℓ"
                        )
                    continue
                level[neighbour] = level[position] + 1
                queue.append(neighbour)
        base = 0 if parity == 1 else 2
        for position in component:
            colours[nodes[position]] = base + (level[position] % 2)
    return colours


def four_colouring(
    grid: ToroidalGrid,
    identifiers: IdentifierAssignment,
    ell: int = 4,
    max_ell: int = 8,
    radius_factor: int = 3,
    engine: str = "auto",
) -> AlgorithmResult:
    """4-colour the grid using the Theorem 4 construction.

    Retries with ``ℓ + 2`` whenever a phase fails, up to ``max_ell``.  The
    returned colouring is always verified; an invalid colouring is treated
    as a phase failure.  ``engine`` selects the execution path of the
    border-count phase (see :func:`_border_counts`); all engines are
    byte-identical.
    """
    if ell % 2 != 0:
        raise ValueError("ℓ must be even")
    last_error: Optional[Exception] = None
    attempt = ell
    while attempt <= max_ell:
        if min(grid.sides) < 2 * radius_factor * attempt + 4:
            raise UnsolvableInstanceError(
                f"grid side {min(grid.sides)} too small for ℓ = {attempt}; "
                "use a larger grid or the synthesised 4-colouring algorithm"
            )
        try:
            return _four_colouring_once(
                grid, identifiers, attempt, radius_factor, engine=engine
            )
        except SimulationError as error:
            last_error = error
            attempt += 2
    raise SimulationError(
        f"4-colouring failed for every ℓ up to {max_ell}: {last_error}"
    )


def _four_colouring_once(
    grid: ToroidalGrid,
    identifiers: IdentifierAssignment,
    ell: int,
    radius_factor: int = 3,
    engine: str = "auto",
) -> AlgorithmResult:
    anchors = compute_anchors(grid, identifiers, ell, norm="linf")
    radii = _assign_radii(
        grid, anchors.members, identifiers, ell, radius_factor, engine=engine
    )
    counts = _border_counts(grid, radii.radii, engine=engine)
    colours = _two_colour_components(
        grid, identifiers, counts, diameter_bound=2 * radius_factor * ell
    )
    verification = verify_proper_vertex_colouring(grid, colours, number_of_colours=4)
    if not verification.valid:
        raise SimulationError(
            f"the parity decomposition produced an improper colouring "
            f"({len(verification.violations)} violations)"
        )
    component_rounds = 2 * (2 * radius_factor * ell) * grid.dimension
    count_rounds = 2 * radius_factor * ell * grid.dimension
    total_rounds = anchors.rounds + radii.rounds + count_rounds + component_rounds
    return AlgorithmResult(
        node_labels=colours,
        rounds=total_rounds,
        metadata={
            "ell": ell,
            "anchor_count": len(anchors.members),
            "anchor_rounds": anchors.rounds,
            "radius_rounds": radii.rounds,
            "count_rounds": count_rounds,
            "component_rounds": component_rounds,
        },
    )


@dataclass
class FourColouringAlgorithm(GridAlgorithm):
    """The Theorem 4 construction packaged as a :class:`GridAlgorithm`.

    The default parameters (``ℓ = 10``, radius factor 3) are the smallest
    ones we found for which the radius assignment is consistently feasible;
    they require a grid side of at least ``2 · 3 · 10 + 4 = 64``.  For
    smaller grids use the synthesised normal-form 4-colouring instead
    (:func:`repro.synthesis.pretrained.load_four_colouring_algorithm`).
    """

    ell: int = 10
    max_ell: int = 12
    radius_factor: int = 3
    name: str = "four-colouring-theorem4"
    engine: str = "auto"

    def run(
        self,
        grid: ToroidalGrid,
        identifiers: IdentifierAssignment,
        inputs: Optional[Mapping[Node, object]] = None,
    ) -> AlgorithmResult:
        return four_colouring(
            grid,
            identifiers,
            ell=self.ell,
            max_ell=self.max_ell,
            radius_factor=self.radius_factor,
            engine=self.engine,
        )
