"""Infeasibility certificates for colouring problems.

Two kinds of lower-bound evidence are produced here:

* **Parity arguments** — Theorem 21: a ``d``-dimensional torus with odd side
  length has no proper edge colouring with ``2d`` colours, because every
  colour class would have to be a perfect matching and a perfect matching
  needs an even number of nodes.
* **Exhaustive certificates** — for small instances, the question "does any
  feasible labelling exist at all?" is decided exactly with the CDCL SAT
  solver; an UNSAT answer is a machine-checked certificate that the problem
  is unsolvable on that instance, which is how the benchmarks back up the
  "global because no solution exists for infinitely many n" classifications.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import SynthesisError
from repro.grid.torus import Direction, EdgeKey, Node, ToroidalGrid
from repro.synthesis.sat import CNF, solve_cnf


def edge_colouring_parity_obstruction(grid: ToroidalGrid, number_of_colours: int) -> Optional[str]:
    """Return the Theorem 21 parity obstruction, if it applies.

    With ``2d`` colours on a ``2d``-regular graph every node must see each
    colour exactly once, so each colour class is a perfect matching of the
    ``n^d`` nodes — impossible when ``n^d`` is odd.
    """
    if number_of_colours != 2 * grid.dimension:
        return None
    if grid.node_count % 2 == 0:
        return None
    return (
        f"a proper {number_of_colours}-edge-colouring of a {2 * grid.dimension}-regular "
        f"graph partitions the edges into perfect matchings, but {grid.node_count} "
        "nodes cannot be perfectly matched"
    )


def _edge_colouring_cnf(grid: ToroidalGrid, number_of_colours: int) -> Tuple[CNF, Dict[Tuple[EdgeKey, int], int]]:
    cnf = CNF()
    variable_of: Dict[Tuple[EdgeKey, int], int] = {}
    for edge in grid.edges():
        for colour in range(number_of_colours):
            variable_of[(edge, colour)] = cnf.new_variable()
    for edge in grid.edges():
        cnf.add_clause(variable_of[(edge, colour)] for colour in range(number_of_colours))
        for first in range(number_of_colours):
            for second in range(first + 1, number_of_colours):
                cnf.add_clause((-variable_of[(edge, first)], -variable_of[(edge, second)]))
    for node in grid.nodes():
        incident = grid.incident_edges(node)
        for index, first in enumerate(incident):
            for second in incident[index + 1:]:
                for colour in range(number_of_colours):
                    cnf.add_clause(
                        (-variable_of[(first, colour)], -variable_of[(second, colour)])
                    )
    return cnf, variable_of


def exhaustive_edge_colouring_infeasible(
    grid: ToroidalGrid,
    number_of_colours: int,
    conflict_budget: int = 400_000,
) -> bool:
    """Decide by exhaustive search whether *no* proper edge colouring exists.

    Returns True when the SAT solver proves unsatisfiability, False when a
    colouring exists.  Raises :class:`repro.errors.SynthesisError` if the
    conflict budget is exhausted without an answer (should not happen on the
    small instances this is meant for).
    """
    cnf, _variables = _edge_colouring_cnf(grid, number_of_colours)
    result = solve_cnf(cnf, conflict_budget=conflict_budget)
    if result.satisfiable:
        return False
    if result.exhausted_budget:
        raise SynthesisError("exhaustive edge-colouring search exhausted its budget")
    return True


def exhaustive_vertex_colouring_feasible(
    grid: ToroidalGrid,
    number_of_colours: int,
    conflict_budget: int = 400_000,
) -> Optional[Dict[Node, int]]:
    """Search exhaustively for a proper vertex colouring of a small grid.

    Returns a colouring if one exists, or None if the instance is provably
    infeasible (for example 2-colouring with an odd side length).
    """
    cnf = CNF()
    variable_of: Dict[Tuple[Node, int], int] = {}
    for node in grid.nodes():
        for colour in range(number_of_colours):
            variable_of[(node, colour)] = cnf.new_variable()
    for node in grid.nodes():
        cnf.add_clause(variable_of[(node, colour)] for colour in range(number_of_colours))
        for first in range(number_of_colours):
            for second in range(first + 1, number_of_colours):
                cnf.add_clause((-variable_of[(node, first)], -variable_of[(node, second)]))
    for node in grid.nodes():
        for axis in range(grid.dimension):
            neighbour = grid.step(node, Direction(axis, 1))
            for colour in range(number_of_colours):
                cnf.add_clause(
                    (-variable_of[(node, colour)], -variable_of[(neighbour, colour)])
                )
    result = solve_cnf(cnf, conflict_budget=conflict_budget)
    if not result.satisfiable:
        if result.exhausted_budget:
            raise SynthesisError("exhaustive vertex-colouring search exhausted its budget")
        return None
    colouring: Dict[Node, int] = {}
    for (node, colour), variable in variable_of.items():
        if result.assignment and result.assignment.get(variable):
            colouring[node] = colour
    return colouring
