"""The concrete cycle LCL problems of Figure 2 (and a few more).

Figure 2 of the paper illustrates four radius-1 problems on directed cycles
together with their complexities:

* 2-colouring — no flexible state, hence ``Θ(n)``;
* 3-colouring — flexible states, hence ``Θ(log* n)``;
* maximal independent set — flexible states (the paper highlights state
  ``00`` with closed walks of lengths 3 and 5), hence ``Θ(log* n)``;
* independent set — a self-loop at ``00`` (the all-zero labelling), hence
  ``O(1)``.

Maximal matching on a cycle is equivalent to a node-labelling problem over
"my matched side" labels; it is included because the introduction of the
paper lists it among the classic ``Θ(log* n)`` problems.
"""

from __future__ import annotations

import itertools
from typing import Callable, Tuple

from repro.cycles.lcl1d import CycleLCL, Window1D


def _windows_satisfying(
    alphabet: Tuple[object, ...], radius: int, predicate: Callable[[Window1D], bool]
) -> frozenset:
    """All windows over ``alphabet`` of length ``2r + 1`` satisfying ``predicate``."""
    length = 2 * radius + 1
    return frozenset(
        window
        for window in itertools.product(alphabet, repeat=length)
        if predicate(window)
    )


def cycle_colouring_problem(number_of_colours: int) -> CycleLCL:
    """Proper vertex colouring of a directed cycle with the given palette."""
    alphabet = tuple(range(1, number_of_colours + 1))

    def proper(window: Window1D) -> bool:
        return all(window[index] != window[index + 1] for index in range(len(window) - 1))

    return CycleLCL(
        name=f"cycle-{number_of_colours}-colouring",
        alphabet=alphabet,
        radius=1,
        feasible_windows=_windows_satisfying(alphabet, 1, proper),
    )


def cycle_independent_set_problem() -> CycleLCL:
    """Independent set on a cycle (no maximality): a trivial O(1) problem."""
    alphabet = (0, 1)

    def independent(window: Window1D) -> bool:
        return all(not (window[index] == 1 and window[index + 1] == 1) for index in range(len(window) - 1))

    return CycleLCL(
        name="cycle-independent-set",
        alphabet=alphabet,
        radius=1,
        feasible_windows=_windows_satisfying(alphabet, 1, independent),
    )


def cycle_maximal_independent_set_problem() -> CycleLCL:
    """Maximal independent set on a cycle."""
    alphabet = (0, 1)

    def feasible(window: Window1D) -> bool:
        previous, centre, following = window
        if centre == 1:
            return previous == 0 and following == 0
        return previous == 1 or following == 1

    return CycleLCL(
        name="cycle-maximal-independent-set",
        alphabet=alphabet,
        radius=1,
        feasible_windows=_windows_satisfying(alphabet, 1, feasible),
    )


def cycle_maximal_matching_problem() -> CycleLCL:
    """Maximal matching on a directed cycle, encoded as a node labelling.

    Each node outputs ``P`` ("matched with my predecessor"), ``S``
    ("matched with my successor") or ``U`` ("unmatched").  Feasibility of a
    window ``(a, b, c)`` requires local consistency of the matching claims
    and maximality: an unmatched node must not have an unmatched neighbour.
    """
    alphabet = ("P", "S", "U")

    def feasible(window: Window1D) -> bool:
        previous, centre, following = window
        # Consistency between the centre and its predecessor.
        if centre == "P" and previous != "S":
            return False
        if previous == "S" and centre != "P":
            return False
        # Consistency between the centre and its successor.
        if centre == "S" and following != "P":
            return False
        if following == "P" and centre != "S":
            return False
        # Maximality: two adjacent unmatched nodes could be matched.
        if centre == "U" and (previous == "U" or following == "U"):
            return False
        return True

    return CycleLCL(
        name="cycle-maximal-matching",
        alphabet=alphabet,
        radius=1,
        feasible_windows=_windows_satisfying(alphabet, 1, feasible),
    )


def cycle_consistent_orientation_problem() -> CycleLCL:
    """An artificial global problem: all nodes must output the same label.

    Over the alphabet {A, B} with the constraint that neighbours agree, the
    output neighbourhood graph has two self-loops, so this is an ``O(1)``
    problem — but restricted to *exactly one* feasible global value it would
    not be an LCL at all.  Used in tests of the classifier.
    """
    alphabet = ("A", "B")

    def feasible(window: Window1D) -> bool:
        return len(set(window)) == 1

    return CycleLCL(
        name="cycle-agreement",
        alphabet=alphabet,
        radius=1,
        feasible_windows=_windows_satisfying(alphabet, 1, feasible),
    )
