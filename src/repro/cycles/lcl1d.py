"""LCL problem specifications on directed cycles.

A radius-``r`` LCL problem on a directed cycle is given by its finite output
alphabet and the set of feasible windows of ``2r + 1`` consecutive output
labels, read in the direction of the orientation.  A labelling of the cycle
is feasible when every (cyclic) window of that length is feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from repro.errors import InvalidProblemError
from repro.grid.indexer import cyclic_window_table
from repro.local_model.store import resolve_engine

Label = object
Window1D = Tuple[Label, ...]


@dataclass(frozen=True)
class CycleLCL:
    """An LCL problem on directed cycles.

    Attributes
    ----------
    name:
        Human-readable name.
    alphabet:
        The finite output alphabet.
    radius:
        The checkability radius ``r``; windows have length ``2r + 1``.
    feasible_windows:
        The set of feasible windows, each a tuple of ``2r + 1`` labels
        listed in the direction of the cycle's orientation (predecessors
        first, the centre node in the middle).
    """

    name: str
    alphabet: Tuple[Label, ...]
    radius: int
    feasible_windows: FrozenSet[Window1D]

    def __post_init__(self) -> None:
        if self.radius < 1:
            raise InvalidProblemError("the checkability radius must be at least 1")
        expected = 2 * self.radius + 1
        for window in self.feasible_windows:
            if len(window) != expected:
                raise InvalidProblemError(
                    f"window {window!r} has length {len(window)}, expected {expected}"
                )
            for label in window:
                if label not in self.alphabet:
                    raise InvalidProblemError(
                        f"window {window!r} uses label {label!r} outside the alphabet"
                    )

    @property
    def window_length(self) -> int:
        """Length of a feasible window, ``2r + 1``."""
        return 2 * self.radius + 1

    @property
    def state_length(self) -> int:
        """Length of a neighbourhood-graph state, ``2r``."""
        return 2 * self.radius

    def window_at(self, labels: Sequence[Label], position: int) -> Window1D:
        """Return the cyclic window of the labelling centred at ``position``."""
        length = len(labels)
        return tuple(
            labels[(position + offset) % length]
            for offset in range(-self.radius, self.radius + 1)
        )

    def is_feasible_window(self, window: Window1D) -> bool:
        """Return True if the window is one of the feasible windows."""
        return tuple(window) in self.feasible_windows


def verify_cycle_labelling(
    problem: CycleLCL, labels: Sequence[Label], engine: str = "indexed"
) -> List[int]:
    """Return the positions whose window violates the problem's constraints.

    An empty list means the labelling is feasible.  The cycle must be at
    least as long as a window so that the cyclic windows are well defined
    (a cycle of length exactly ``2r + 1`` is allowed: every window then
    reads the whole cycle).

    ``engine="indexed"`` (default) gathers the windows through the cached
    cyclic window table of :mod:`repro.grid.indexer`; ``engine="dict"`` is
    the per-position :meth:`CycleLCL.window_at` reference.  Both return the
    identical violation list.
    """
    length = len(labels)
    if length < problem.window_length:
        raise InvalidProblemError(
            f"cycle of length {length} is shorter than a window ({problem.window_length})"
        )
    engine = resolve_engine(engine, allowed=("dict", "indexed"))
    if engine == "indexed":
        table = cyclic_window_table(length, problem.radius)
        feasible = problem.feasible_windows
        return [
            position
            for position, window_indices in enumerate(table)
            if tuple(labels[index] for index in window_indices) not in feasible
        ]
    violations = []
    for position in range(length):
        if not problem.is_feasible_window(problem.window_at(labels, position)):
            violations.append(position)
    return violations
