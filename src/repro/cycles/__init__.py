"""LCL problems on directed cycles (the one-dimensional warm-up, Section 4).

On directed cycles everything is decidable: an LCL problem is represented by
its *output neighbourhood graph* ``H``, and the complexity can be read off
elementary properties of ``H`` (Claim 1 of the paper):

* a self-loop (a feasible constant window) gives ``O(1)``,
* a *flexible* state — one admitting closed walks of every sufficiently
  large length — gives ``Θ(log* n)``,
* otherwise the problem is global: ``Θ(n)`` if ``H`` has any cycle at all,
  and unsolvable for all large ``n`` if it has none.

The package also synthesises asymptotically optimal algorithms for the
``Θ(log* n)`` problems, exactly as the proof of Claim 1 does: find a ruling
set in a power of the cycle, place the flexible state at the chosen nodes
and fill the gaps with pre-computed closed walks of matching lengths.
"""

from repro.cycles.lcl1d import CycleLCL, verify_cycle_labelling
from repro.cycles.catalog import (
    cycle_colouring_problem,
    cycle_independent_set_problem,
    cycle_maximal_independent_set_problem,
    cycle_maximal_matching_problem,
)
from repro.cycles.neighbourhood_graph import (
    NeighbourhoodGraph,
    build_neighbourhood_graph,
)
from repro.cycles.classifier import classify_cycle_problem
from repro.cycles.synthesis import (
    CycleAlgorithmSynthesis,
    solve_globally_on_cycle,
    synthesise_cycle_algorithm,
)

__all__ = [
    "CycleAlgorithmSynthesis",
    "CycleLCL",
    "NeighbourhoodGraph",
    "build_neighbourhood_graph",
    "classify_cycle_problem",
    "cycle_colouring_problem",
    "cycle_independent_set_problem",
    "cycle_maximal_independent_set_problem",
    "cycle_maximal_matching_problem",
    "solve_globally_on_cycle",
    "synthesise_cycle_algorithm",
    "verify_cycle_labelling",
]
