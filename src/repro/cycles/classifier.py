"""Exact complexity classification of LCL problems on directed cycles.

Claim 1 of the paper: the complexity of a cycle LCL problem ``P`` is

* ``O(1)`` if some state of the output neighbourhood graph has a self-loop,
* otherwise ``Θ(log* n)`` if some state is flexible,
* otherwise ``Θ(n)``.

Problems whose neighbourhood graph has no cycle at all have no feasible
solution on long cycles; following the paper's convention such problems are
also classified as global.
"""

from __future__ import annotations

from typing import Optional

from repro.core.complexity import ClassificationResult, ComplexityClass
from repro.cycles.lcl1d import CycleLCL
from repro.cycles.neighbourhood_graph import NeighbourhoodGraph, build_neighbourhood_graph


def classify_cycle_problem(
    problem: CycleLCL,
    graph: Optional[NeighbourhoodGraph] = None,
) -> ClassificationResult:
    """Classify a cycle LCL problem exactly (everything is decidable here)."""
    if graph is None:
        if not problem.feasible_windows:
            # No feasible window at all: the neighbourhood graph is empty,
            # so the problem is unsolvable on every cycle — global by the
            # paper's convention.  Skip building the graph.
            return ClassificationResult(
                problem_name=problem.name,
                complexity=ComplexityClass.GLOBAL,
                exact=True,
                evidence={
                    "reason": (
                        "no cycle in the neighbourhood graph; unsolvable on long cycles"
                    ),
                    "solvable_for_some_lengths": False,
                },
            )
        graph = build_neighbourhood_graph(problem)

    if graph.has_self_loop():
        loops = graph.self_loop_states()
        return ClassificationResult(
            problem_name=problem.name,
            complexity=ComplexityClass.CONSTANT,
            exact=True,
            evidence={
                "reason": "constant labelling is feasible",
                "self_loop_states": loops,
            },
        )

    flexible = graph.flexible_states()
    if flexible:
        best_state = min(flexible, key=lambda state: (flexible[state], repr(state)))
        return ClassificationResult(
            problem_name=problem.name,
            complexity=ComplexityClass.LOG_STAR,
            exact=True,
            evidence={
                "reason": "flexible state exists",
                "flexible_states": flexible,
                "witness_state": best_state,
                "witness_flexibility": flexible[best_state],
            },
        )

    solvable = graph.has_cycle()
    return ClassificationResult(
        problem_name=problem.name,
        complexity=ComplexityClass.GLOBAL,
        exact=True,
        evidence={
            "reason": (
                "no flexible state; spacing of neighbourhood occurrences needs "
                "global coordination"
                if solvable
                else "no cycle in the neighbourhood graph; unsolvable on long cycles"
            ),
            "solvable_for_some_lengths": solvable,
        },
    )
