"""Automated synthesis of optimal algorithms on directed cycles.

For a cycle LCL problem with a flexible state ``u`` of flexibility ``k``,
the proof of Claim 1 gives the optimal ``Θ(log* n)`` algorithm:

1. compute a maximal independent set ``I`` of the ``k``-th power of the
   cycle — consecutive members are then between ``k + 1`` and ``2k + 1``
   hops apart,
2. place the state ``u`` at every member of ``I``, and
3. fill each gap of length ``i`` with a pre-computed closed walk of length
   exactly ``i`` from ``u`` back to ``u`` in the neighbourhood graph.

The synthesis object pre-computes the state, the flexibility and the gap
walks; running it on a concrete cycle only needs the ruling set (the
``Θ(log* n)`` part) plus constant-time filling.

For global (but solvable) problems :func:`solve_globally_on_cycle` finds a
feasible labelling by dynamic programming over closed walks of length
exactly ``n`` — the brute-force ``Θ(n)`` algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.complexity import ComplexityClass
from repro.cycles.classifier import classify_cycle_problem
from repro.cycles.lcl1d import CycleLCL
from repro.cycles.neighbourhood_graph import NeighbourhoodGraph, build_neighbourhood_graph
from repro.errors import SynthesisError, UnsolvableInstanceError
from repro.grid.indexer import cyclic_power_pattern
from repro.symmetry.fastpath import compute_mis_indexed

State = Tuple[object, ...]


@dataclass
class CycleAlgorithmSynthesis:
    """A synthesised optimal algorithm for a ``Θ(log* n)`` cycle problem.

    Attributes
    ----------
    problem:
        The problem being solved.
    anchor_state:
        The flexible state placed at the ruling-set nodes.
    spacing:
        The power of the cycle in which the ruling set is computed; equals
        the flexibility of ``anchor_state``.
    gap_walks:
        For every possible gap length ``i`` (``spacing + 1 .. 2·spacing + 1``)
        a closed walk of that length from ``anchor_state`` to itself.
    """

    problem: CycleLCL
    anchor_state: State
    spacing: int
    gap_walks: Dict[int, List[State]] = field(default_factory=dict)

    def run(self, identifiers: Sequence[int]) -> Tuple[List[object], int]:
        """Solve the problem on the cycle described by its identifier sequence.

        Returns the list of output labels (indexed by position along the
        cycle) and the number of rounds charged: the ruling-set computation
        plus a constant number of filling rounds.
        """
        length = len(identifiers)
        if length < 2 * self.spacing + 2:
            raise UnsolvableInstanceError(
                f"cycle of length {length} is too short for spacing {self.spacing}; "
                "solve such constant-size instances by brute force"
            )

        # Maximal independent set of the spacing-th power of the cycle; the
        # neighbour positions come from the cached cyclic power pattern
        # shared with the per-row ruling sets, and the MIS runs on the
        # int-keyed fast path (positions are already flat indices).
        pattern = cyclic_power_pattern(length, self.spacing)
        adjacency = [sorted(neighbours) for neighbours in pattern]
        ruling = compute_mis_indexed(
            adjacency, list(identifiers), max_degree=2 * self.spacing
        )
        anchors = sorted(ruling.members)
        if not anchors:
            raise SynthesisError("ruling set computation returned no anchors")

        labels: List[Optional[object]] = [None] * length
        for index, anchor in enumerate(anchors):
            following = anchors[(index + 1) % len(anchors)]
            gap = (following - anchor) % length
            walk = self.gap_walks.get(gap)
            if walk is None:
                raise SynthesisError(
                    f"no pre-computed walk for gap length {gap}; "
                    f"available: {sorted(self.gap_walks)}"
                )
            for offset in range(gap):
                labels[(anchor + offset) % length] = walk[offset][0]

        if any(label is None for label in labels):
            raise SynthesisError("gap filling left some positions unlabelled")
        # Rounds: the ruling set on the spacing-th power (simulated on the
        # cycle with a factor-`spacing` overhead) plus the constant filling.
        rounds = ruling.rounds * self.spacing + (2 * self.spacing + 1)
        return [label for label in labels], rounds


def synthesise_cycle_algorithm(problem: CycleLCL) -> CycleAlgorithmSynthesis:
    """Synthesise the optimal algorithm for a ``Θ(log* n)`` cycle problem.

    Raises :class:`repro.errors.SynthesisError` if the problem is not in the
    ``Θ(log* n)`` class (constant problems do not need this machinery and
    global problems have no such algorithm).
    """
    graph = build_neighbourhood_graph(problem)
    classification = classify_cycle_problem(problem, graph)
    if classification.complexity is not ComplexityClass.LOG_STAR:
        raise SynthesisError(
            f"problem {problem.name!r} has complexity {classification.complexity.value}; "
            "the normal-form synthesis applies only to Θ(log* n) problems"
        )
    anchor_state: State = classification.evidence["witness_state"]
    spacing: int = classification.evidence["witness_flexibility"]

    gap_walks: Dict[int, List[State]] = {}
    for gap in range(spacing + 1, 2 * spacing + 2):
        walk = graph.walk_of_length(anchor_state, gap)
        if walk is None:
            raise SynthesisError(
                f"state {anchor_state!r} has flexibility {spacing} but no walk of length {gap}"
            )
        gap_walks[gap] = walk
    return CycleAlgorithmSynthesis(
        problem=problem,
        anchor_state=anchor_state,
        spacing=spacing,
        gap_walks=gap_walks,
    )


def solve_globally_on_cycle(problem: CycleLCL, length: int) -> List[object]:
    """Find a feasible labelling of the ``length``-cycle by brute force.

    This is the ``Θ(n)`` algorithm available to every solvable LCL problem:
    gather the whole instance and compute any feasible output — here a
    closed walk of length exactly ``length`` in the neighbourhood graph.
    Raises :class:`repro.errors.UnsolvableInstanceError` when no feasible
    labelling exists (for example 2-colouring an odd cycle).
    """
    graph = build_neighbourhood_graph(problem)
    for state in graph.states:
        walk = graph.walk_of_length(state, length)
        if walk is not None:
            return [walk[offset][0] for offset in range(length)]
    raise UnsolvableInstanceError(
        f"problem {problem.name!r} has no feasible labelling on a cycle of length {length}"
    )
