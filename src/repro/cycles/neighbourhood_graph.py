"""The output neighbourhood graph of a cycle LCL problem (Section 4).

The nodes of the graph ``H`` are sequences of ``2r`` consecutive output
labels; every feasible window ``u_1 ... u_{2r+1}`` contributes the directed
edge ``(u_1 ... u_{2r},  u_2 ... u_{2r+1})``.  Walks in ``H`` correspond to
feasible labellings: a closed walk of length exactly ``n`` is a feasible
labelling of the ``n``-cycle.

The complexity of the problem can be read off ``H`` (Claim 1): a self-loop
gives ``O(1)``; a *flexible* state — one with closed walks of every
sufficiently large length — gives ``Θ(log* n)``; otherwise the problem is
global.

Successor walks run on an indexed fast path: states are numbered by their
position in :attr:`NeighbourhoodGraph.states` and reachable sets are kept
as integer bitmasks, so one walk step is a bitwise OR over precomputed
successor masks instead of per-state set unions.  The ``*_reference``
methods keep the original dict/set implementations; both paths are pinned
byte-identical by the randomized equivalence harness.  Walk reconstruction
examines candidate states in the canonical :attr:`states` order on both
paths, so returned walks are deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cycles.lcl1d import CycleLCL

State = Tuple[object, ...]


@dataclass
class NeighbourhoodGraph:
    """The output neighbourhood graph ``H`` of a cycle LCL problem."""

    problem_name: str
    states: Tuple[State, ...]
    successors: Dict[State, Tuple[State, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._index: Optional[Dict[State, int]] = None
        self._successor_indices: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._successor_masks: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------------ #
    # Indexed tables
    # ------------------------------------------------------------------ #

    def _tables(self) -> Tuple[Dict[State, int], Tuple[Tuple[int, ...], ...], Tuple[int, ...]]:
        """State→index map, successor index tuples and successor bitmasks.

        Built lazily once per graph; the graph is treated as immutable
        after construction (``build_neighbourhood_graph`` is the only
        producer).
        """
        if self._index is None:
            index = {state: position for position, state in enumerate(self.states)}
            successor_indices = tuple(
                tuple(index[target] for target in self.successors.get(state, ()))
                for state in self.states
            )
            masks = []
            for targets in successor_indices:
                mask = 0
                for target in targets:
                    mask |= 1 << target
                masks.append(mask)
            self._index = index
            self._successor_indices = successor_indices
            self._successor_masks = tuple(masks)
        assert self._successor_indices is not None and self._successor_masks is not None
        return self._index, self._successor_indices, self._successor_masks

    @staticmethod
    def _mask_bits(mask: int) -> List[int]:
        """Indices of the set bits of ``mask`` in increasing order."""
        bits = []
        while mask:
            low = mask & -mask
            bits.append(low.bit_length() - 1)
            mask ^= low
        return bits

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #

    def has_self_loop(self) -> bool:
        """Return True if some state has an edge to itself."""
        _, _, masks = self._tables()
        return any((mask >> position) & 1 for position, mask in enumerate(masks))

    def self_loop_states(self) -> Tuple[State, ...]:
        """Return all states carrying a self-loop."""
        _, _, masks = self._tables()
        return tuple(
            state
            for position, state in enumerate(self.states)
            if (masks[position] >> position) & 1
        )

    def closed_walk_lengths(self, state: State, max_length: int) -> Set[int]:
        """Lengths ``1 .. max_length`` for which a closed walk at ``state`` exists.

        Computed by a breadth-first layering over successor bitmasks:
        the reachable set after ``t`` steps is one integer, and a step is
        a bitwise OR of the successor masks of its set bits.
        """
        index, _, masks = self._tables()
        start = index[state]
        target_bit = 1 << start
        lengths: Set[int] = set()
        current = target_bit
        for step in range(1, max_length + 1):
            following = 0
            remaining = current
            while remaining:
                low = remaining & -remaining
                following |= masks[low.bit_length() - 1]
                remaining ^= low
            if following & target_bit:
                lengths.add(step)
            current = following
            if not current:
                break
        return lengths

    def closed_walk_lengths_reference(self, state: State, max_length: int) -> Set[int]:
        """Reference implementation over per-state Python sets."""
        lengths: Set[int] = set()
        current: Set[State] = {state}
        for step in range(1, max_length + 1):
            following: Set[State] = set()
            for node in current:
                following.update(self.successors.get(node, ()))
            if state in following:
                lengths.add(step)
            current = following
            if not current:
                break
        return lengths

    def flexibility(self, state: State, safety_margin: int = 4) -> Optional[int]:
        """Return the flexibility of ``state``, or None if it is not flexible.

        A state is flexible when closed walks of every sufficiently large
        length exist; the flexibility is the smallest ``k`` such that walks
        of every length ``k' >= k`` exist.  Two coprime closed-walk lengths
        ``a, b <= |V(H)|`` guarantee all lengths beyond the Frobenius bound
        ``a·b``, so scanning lengths up to ``|V(H)|² + safety_margin·|V(H)|``
        is sufficient to decide flexibility and to locate the exact value.
        """
        state_count = max(len(self.states), 2)
        horizon = state_count * state_count + safety_margin * state_count
        lengths = self.closed_walk_lengths(state, horizon)
        if not lengths:
            return None
        overall_gcd = 0
        for length in lengths:
            overall_gcd = math.gcd(overall_gcd, length)
        if overall_gcd != 1:
            return None
        # Find the last missing length below the horizon; everything above
        # the scan window is guaranteed by the Frobenius bound.
        last_missing = 0
        for length in range(1, state_count * state_count + 1):
            if length not in lengths:
                last_missing = length
        return last_missing + 1

    def flexible_states(self) -> Dict[State, int]:
        """Return all flexible states together with their flexibilities."""
        result: Dict[State, int] = {}
        for state in self.states:
            value = self.flexibility(state)
            if value is not None:
                result[state] = value
        return result

    def has_cycle(self) -> bool:
        """Return True if ``H`` contains any directed cycle.

        Without a cycle the problem has no feasible labelling on long
        cycles at all (any labelling of an ``n``-cycle is a closed walk of
        length ``n``).
        """
        # Iterative DFS with colours over the successor index tables.
        WHITE, GREY, BLACK = 0, 1, 2
        _, successor_indices, _ = self._tables()
        colour = [WHITE] * len(self.states)
        for root in range(len(self.states)):
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[int, int]] = [(root, 0)]
            colour[root] = GREY
            while stack:
                node, pointer = stack[-1]
                successors = successor_indices[node]
                if pointer < len(successors):
                    stack[-1] = (node, pointer + 1)
                    target = successors[pointer]
                    if colour[target] == GREY:
                        return True
                    if colour[target] == WHITE:
                        colour[target] = GREY
                        stack.append((target, 0))
                else:
                    colour[node] = BLACK
                    stack.pop()
        return False

    def has_cycle_reference(self) -> bool:
        """Reference implementation over the state-keyed successor dicts."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[State, int] = {state: WHITE for state in self.states}
        for root in self.states:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[State, int]] = [(root, 0)]
            colour[root] = GREY
            while stack:
                node, pointer = stack[-1]
                successors = self.successors.get(node, ())
                if pointer < len(successors):
                    stack[-1] = (node, pointer + 1)
                    target = successors[pointer]
                    if colour[target] == GREY:
                        return True
                    if colour[target] == WHITE:
                        colour[target] = GREY
                        stack.append((target, 0))
                else:
                    colour[node] = BLACK
                    stack.pop()
        return False

    def walk_of_length(self, state: State, length: int) -> Optional[List[State]]:
        """Return a closed walk ``state -> ... -> state`` of exactly ``length`` steps.

        The walk is returned as the list of ``length + 1`` visited states
        (first and last are ``state``); None if no such walk exists.  The
        reconstruction examines candidate predecessors in the canonical
        :attr:`states` order, so the returned walk is deterministic.
        """
        if length < 1:
            return None
        index, successor_indices, masks = self._tables()
        start = index[state]
        # Dynamic programming over (remaining steps): reachable[t] is the
        # bitmask of states reachable from ``state`` in exactly ``t`` steps.
        reachable: List[int] = [0] * (length + 1)
        reachable[0] = 1 << start
        for step in range(1, length + 1):
            following = 0
            remaining = reachable[step - 1]
            while remaining:
                low = remaining & -remaining
                following |= masks[low.bit_length() - 1]
                remaining ^= low
            reachable[step] = following
        if not reachable[length] & (1 << start):
            return None
        # Reconstruct backwards, scanning candidates in index order.
        walk_indices = [start]
        current = start
        for step in range(length, 0, -1):
            for candidate in self._mask_bits(reachable[step - 1]):
                if (masks[candidate] >> current) & 1:
                    walk_indices.append(candidate)
                    current = candidate
                    break
        walk_indices.reverse()
        return [self.states[position] for position in walk_indices]

    def walk_of_length_reference(self, state: State, length: int) -> Optional[List[State]]:
        """Reference implementation over per-state sets.

        Candidate predecessors are examined in the canonical :attr:`states`
        order, matching the deterministic indexed reconstruction.
        """
        if length < 1:
            return None
        reachable: List[Set[State]] = [set() for _ in range(length + 1)]
        reachable[0] = {state}
        for step in range(1, length + 1):
            for node in reachable[step - 1]:
                reachable[step].update(self.successors.get(node, ()))
        if state not in reachable[length]:
            return None
        walk = [state]
        current = state
        for step in range(length, 0, -1):
            for candidate in self.states:
                if candidate in reachable[step - 1] and current in self.successors.get(
                    candidate, ()
                ):
                    walk.append(candidate)
                    current = candidate
                    break
        walk.reverse()
        return walk


def build_neighbourhood_graph(problem: CycleLCL) -> NeighbourhoodGraph:
    """Construct the output neighbourhood graph of a cycle LCL problem."""
    successors: Dict[State, Set[State]] = {}
    states: Set[State] = set()
    for window in problem.feasible_windows:
        head: State = tuple(window[:-1])
        tail: State = tuple(window[1:])
        states.add(head)
        states.add(tail)
        successors.setdefault(head, set()).add(tail)
    ordered_states = tuple(sorted(states, key=repr))
    return NeighbourhoodGraph(
        problem_name=problem.name,
        states=ordered_states,
        successors={state: tuple(sorted(targets, key=repr)) for state, targets in successors.items()},
    )
