"""The output neighbourhood graph of a cycle LCL problem (Section 4).

The nodes of the graph ``H`` are sequences of ``2r`` consecutive output
labels; every feasible window ``u_1 ... u_{2r+1}`` contributes the directed
edge ``(u_1 ... u_{2r},  u_2 ... u_{2r+1})``.  Walks in ``H`` correspond to
feasible labellings: a closed walk of length exactly ``n`` is a feasible
labelling of the ``n``-cycle.

The complexity of the problem can be read off ``H`` (Claim 1): a self-loop
gives ``O(1)``; a *flexible* state — one with closed walks of every
sufficiently large length — gives ``Θ(log* n)``; otherwise the problem is
global.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cycles.lcl1d import CycleLCL

State = Tuple[object, ...]


@dataclass
class NeighbourhoodGraph:
    """The output neighbourhood graph ``H`` of a cycle LCL problem."""

    problem_name: str
    states: Tuple[State, ...]
    successors: Dict[State, Tuple[State, ...]] = field(default_factory=dict)

    def has_self_loop(self) -> bool:
        """Return True if some state has an edge to itself."""
        return any(state in self.successors.get(state, ()) for state in self.states)

    def self_loop_states(self) -> Tuple[State, ...]:
        """Return all states carrying a self-loop."""
        return tuple(
            state for state in self.states if state in self.successors.get(state, ())
        )

    def closed_walk_lengths(self, state: State, max_length: int) -> Set[int]:
        """Lengths ``1 .. max_length`` for which a closed walk at ``state`` exists.

        Computed by a breadth-first layering: ``reachable[t]`` is the set of
        states reachable from ``state`` in exactly ``t`` steps.
        """
        lengths: Set[int] = set()
        current: Set[State] = {state}
        for step in range(1, max_length + 1):
            following: Set[State] = set()
            for node in current:
                following.update(self.successors.get(node, ()))
            if state in following:
                lengths.add(step)
            current = following
            if not current:
                break
        return lengths

    def flexibility(self, state: State, safety_margin: int = 4) -> Optional[int]:
        """Return the flexibility of ``state``, or None if it is not flexible.

        A state is flexible when closed walks of every sufficiently large
        length exist; the flexibility is the smallest ``k`` such that walks
        of every length ``k' >= k`` exist.  Two coprime closed-walk lengths
        ``a, b <= |V(H)|`` guarantee all lengths beyond the Frobenius bound
        ``a·b``, so scanning lengths up to ``|V(H)|² + safety_margin·|V(H)|``
        is sufficient to decide flexibility and to locate the exact value.
        """
        state_count = max(len(self.states), 2)
        horizon = state_count * state_count + safety_margin * state_count
        lengths = self.closed_walk_lengths(state, horizon)
        if not lengths:
            return None
        overall_gcd = 0
        for length in lengths:
            overall_gcd = math.gcd(overall_gcd, length)
        if overall_gcd != 1:
            return None
        # Find the last missing length below the horizon; everything above
        # the scan window is guaranteed by the Frobenius bound.
        last_missing = 0
        for length in range(1, state_count * state_count + 1):
            if length not in lengths:
                last_missing = length
        return last_missing + 1

    def flexible_states(self) -> Dict[State, int]:
        """Return all flexible states together with their flexibilities."""
        result: Dict[State, int] = {}
        for state in self.states:
            value = self.flexibility(state)
            if value is not None:
                result[state] = value
        return result

    def has_cycle(self) -> bool:
        """Return True if ``H`` contains any directed cycle.

        Without a cycle the problem has no feasible labelling on long
        cycles at all (any labelling of an ``n``-cycle is a closed walk of
        length ``n``).
        """
        # Standard iterative DFS cycle detection with colours.
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[State, int] = {state: WHITE for state in self.states}
        for root in self.states:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[State, int]] = [(root, 0)]
            colour[root] = GREY
            while stack:
                node, pointer = stack[-1]
                successors = self.successors.get(node, ())
                if pointer < len(successors):
                    stack[-1] = (node, pointer + 1)
                    target = successors[pointer]
                    if colour[target] == GREY:
                        return True
                    if colour[target] == WHITE:
                        colour[target] = GREY
                        stack.append((target, 0))
                else:
                    colour[node] = BLACK
                    stack.pop()
        return False

    def walk_of_length(self, state: State, length: int) -> Optional[List[State]]:
        """Return a closed walk ``state -> ... -> state`` of exactly ``length`` steps.

        The walk is returned as the list of ``length + 1`` visited states
        (first and last are ``state``); None if no such walk exists.
        """
        if length < 1:
            return None
        # Dynamic programming over (remaining steps) with predecessor links.
        reachable: List[Set[State]] = [set() for _ in range(length + 1)]
        reachable[0] = {state}
        for step in range(1, length + 1):
            for node in reachable[step - 1]:
                reachable[step].update(self.successors.get(node, ()))
        if state not in reachable[length]:
            return None
        # Reconstruct backwards.
        walk = [state]
        current = state
        for step in range(length, 0, -1):
            for candidate in reachable[step - 1]:
                if current in self.successors.get(candidate, ()):
                    walk.append(candidate)
                    current = candidate
                    break
        walk.reverse()
        return walk


def build_neighbourhood_graph(problem: CycleLCL) -> NeighbourhoodGraph:
    """Construct the output neighbourhood graph of a cycle LCL problem."""
    successors: Dict[State, Set[State]] = {}
    states: Set[State] = set()
    for window in problem.feasible_windows:
        head: State = tuple(window[:-1])
        tail: State = tuple(window[1:])
        states.add(head)
        states.add(tail)
        successors.setdefault(head, set()).add(tail)
    ordered_states = tuple(sorted(states, key=repr))
    return NeighbourhoodGraph(
        problem_name=problem.name,
        states=ordered_states,
        successors={state: tuple(sorted(targets, key=repr)) for state, targets in successors.items()},
    )
