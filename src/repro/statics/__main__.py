"""Entry point for ``python -m repro.statics``."""

from repro.statics.cli import main

raise SystemExit(main())
