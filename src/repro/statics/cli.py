"""``python -m repro.statics`` — run the contract lint (and rule reports).

Exit codes: ``0`` when the tree is clean (every finding allowlisted),
``1`` when new findings exist, ``2`` when the allowlist file itself is
malformed.  ``--format json`` emits one machine-readable document (the CI
job uploads it as an artifact next to the ``BENCH_*.json`` files);
``--rules`` appends the per-rule tier-eligibility report, including each
rule's run-time degrade ladder (the rung order the engines fall through
when a worker pool breaks).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Sequence

from repro.statics.contracts import (
    AllowlistError,
    Finding,
    apply_allowlist,
    load_allowlist,
    run_contract_checks,
)

DEFAULT_ALLOWLIST = ".statics-allowlist"


def _find_root(start: Path) -> Path:
    """Nearest ancestor containing ``src/repro`` (falling back to ``start``)."""
    for candidate in (start, *start.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return start


def _print_text(
    new: Sequence[Finding],
    allowlisted: Sequence[Finding],
    stale: Sequence[str],
    rules: Optional[List[Dict[str, Any]]],
    stream: IO[str],
) -> None:
    for finding in new:
        print(
            f"{finding.path}:{finding.line}: [{finding.check}] {finding.message}",
            file=stream,
        )
        print(f"    fingerprint: {finding.fingerprint}", file=stream)
    for fingerprint in stale:
        print(f"warning: stale allowlist entry (no longer matches): {fingerprint}", file=stream)
    if rules is not None:
        print(f"-- tier eligibility ({len(rules)} rules) --", file=stream)
        for entry in rules:
            tiers = ",".join(entry["eligible_tiers"])
            ladder = ">".join(entry["degrade_ladder"])
            print(
                f"{entry['rule']}: r={entry['radius']} {entry['norm']} "
                f"ball={entry['ball_size']} purity={entry['purity']} "
                f"tiers=[{tiers}] ladder={ladder}",
                file=stream,
            )
            for note in entry["notes"]:
                print(f"    note: {note}", file=stream)
    print(
        f"{len(new)} finding(s), {len(allowlisted)} allowlisted, {len(stale)} stale",
        file=stream,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statics",
        description="Static contract lint and rule reports for the engine stack.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root (default: nearest ancestor containing src/repro)",
    )
    parser.add_argument(
        "--allowlist",
        type=Path,
        default=None,
        help=f"allowlist file (default: <root>/{DEFAULT_ALLOWLIST})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="also emit the per-rule tier-eligibility report (imports the repo)",
    )
    args = parser.parse_args(argv)

    root = (args.root or _find_root(Path.cwd())).resolve()
    allowlist_path = args.allowlist or (root / DEFAULT_ALLOWLIST)

    try:
        allowlist = load_allowlist(allowlist_path)
    except AllowlistError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    findings = run_contract_checks(root)
    new, allowlisted, stale = apply_allowlist(findings, allowlist)

    rules_json: Optional[List[Dict[str, Any]]] = None
    if args.rules:
        from repro.statics.tiers import tier_report

        rules_json = [entry.to_json() for entry in tier_report()]

    if args.format == "json":
        document = {
            "root": str(root),
            "findings": [finding.to_json() for finding in new],
            "allowlisted": [finding.to_json() for finding in allowlisted],
            "stale": list(stale),
            "rules": rules_json,
            "ok": not new,
        }
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        _print_text(new, allowlisted, stale, rules_json, sys.stdout)

    return 0 if not new else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
