"""``python -m repro.statics`` — run the contract lint (and rule reports).

Exit codes: ``0`` when the tree is clean (every finding allowlisted and
no stale allowlist entries), ``1`` when new findings or stale entries
exist, ``2`` when the allowlist file itself is malformed.  Stale entries
fail the run because a fingerprint that matches nothing is a fixed
finding nobody cleaned up — ``--prune`` rewrites the allowlist in place
without them.  ``--format json`` emits one machine-readable document
(the CI job uploads it as an artifact next to the ``BENCH_*.json``
files) with a ``summary`` of purity and closure verdict counts;
``--format github`` emits GitHub workflow annotation lines
(``::error file=...``) so findings land on the PR diff.  ``--rules``
appends the per-rule tier-eligibility report — purity verdict, proven
output alphabet, autoprove eligibility, and each rule's run-time degrade
ladder — and folds alphabet-closure violations (a rule provably
returning labels outside its declared Σ) into the finding flow.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Sequence

from repro.statics.contracts import (
    AllowlistError,
    Finding,
    apply_allowlist,
    load_allowlist,
    run_contract_checks,
)

DEFAULT_ALLOWLIST = ".statics-allowlist"


def _find_root(start: Path) -> Path:
    """Nearest ancestor containing ``src/repro`` (falling back to ``start``)."""
    for candidate in (start, *start.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return start


def _rule_line(entry: Dict[str, Any]) -> str:
    """One ``--rules`` text row: tiers, purity, closure, autoprove flag."""
    tiers = ",".join(entry["eligible_tiers"])
    ladder = ">".join(entry["degrade_ladder"])
    columns = [
        f"{entry['rule']}: r={entry['radius']} {entry['norm']}",
        f"ball={entry['ball_size']}",
        f"purity={entry['purity']}",
    ]
    if entry.get("alphabet") is not None:
        columns.append(f"closure={entry['closure']}")
        proven = entry.get("proven_output_alphabet")
        if proven is not None:
            columns.append("Σ_out=[" + ",".join(proven) + "]")
    if entry.get("autoprove_shardable"):
        columns.append("autoprove=yes")
    columns.append(f"tiers=[{tiers}]")
    columns.append(f"ladder={ladder}")
    return " ".join(columns)


def _print_text(
    new: Sequence[Finding],
    allowlisted: Sequence[Finding],
    stale: Sequence[str],
    rules: Optional[List[Dict[str, Any]]],
    stream: IO[str],
) -> None:
    for finding in new:
        print(
            f"{finding.path}:{finding.line}: [{finding.check}] {finding.message}",
            file=stream,
        )
        print(f"    fingerprint: {finding.fingerprint}", file=stream)
    for fingerprint in stale:
        print(
            f"stale allowlist entry (no longer matches): {fingerprint} "
            "(run with --prune to drop it)",
            file=stream,
        )
    if rules is not None:
        print(f"-- tier eligibility ({len(rules)} rules) --", file=stream)
        for entry in rules:
            print(_rule_line(entry), file=stream)
            for note in entry["notes"]:
                print(f"    note: {note}", file=stream)
    print(
        f"{len(new)} finding(s), {len(allowlisted)} allowlisted, {len(stale)} stale",
        file=stream,
    )


def _print_github(
    new: Sequence[Finding], stale: Sequence[str], stream: IO[str]
) -> None:
    """GitHub workflow-command annotations: one ``::error`` per finding.

    The format is line-oriented (``::error file={path},line={line}::{msg}``)
    and the message must stay on one line; newlines would terminate the
    command, so they are flattened defensively.
    """
    for finding in new:
        message = f"[{finding.check}] {finding.message} (fingerprint: {finding.fingerprint})"
        message = message.replace("\n", " ")
        print(
            f"::error file={finding.path},line={finding.line}::{message}",
            file=stream,
        )
    for fingerprint in stale:
        print(
            "::error file=.statics-allowlist::stale allowlist entry "
            f"{fingerprint} matches no finding (run python -m repro.statics --prune)",
            file=stream,
        )


def _prune_allowlist(path: Path, stale: Sequence[str]) -> int:
    """Rewrite ``path`` without the ``stale`` fingerprints; count removals.

    Comments and blank lines survive untouched — only lines whose
    fingerprint column matches a stale entry are dropped.
    """
    if not path.is_file() or not stale:
        return 0
    doomed = set(stale)
    kept: List[str] = []
    removed = 0
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            fingerprint = line.partition("#")[0].strip()
            if fingerprint in doomed:
                removed += 1
                continue
        kept.append(raw)
    path.write_text("\n".join(kept) + ("\n" if kept else ""), encoding="utf-8")
    return removed


def _summarise(
    new: Sequence[Finding],
    allowlisted: Sequence[Finding],
    stale: Sequence[str],
    rules: Optional[List[Dict[str, Any]]],
) -> Dict[str, Any]:
    """Verdict counts for the ``statics-report.json`` CI artifact."""
    summary: Dict[str, Any] = {
        "findings": len(new),
        "allowlisted": len(allowlisted),
        "stale": len(stale),
    }
    if rules is not None:
        purity: Dict[str, int] = {}
        closure: Dict[str, int] = {}
        autoprove = 0
        for entry in rules:
            purity[entry["purity"]] = purity.get(entry["purity"], 0) + 1
            if entry.get("alphabet") is not None:
                closure[entry["closure"]] = closure.get(entry["closure"], 0) + 1
            if entry.get("autoprove_shardable"):
                autoprove += 1
        summary["rules"] = len(rules)
        summary["purity"] = purity
        summary["closure"] = closure
        summary["autoprove_shardable"] = autoprove
    return summary


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statics",
        description="Static contract lint and rule reports for the engine stack.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root (default: nearest ancestor containing src/repro)",
    )
    parser.add_argument(
        "--allowlist",
        type=Path,
        default=None,
        help=f"allowlist file (default: <root>/{DEFAULT_ALLOWLIST})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text; github emits ::error annotations)",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="also emit the per-rule tier-eligibility report (imports the repo)",
    )
    parser.add_argument(
        "--prune",
        action="store_true",
        help="rewrite the allowlist dropping stale entries, then report",
    )
    args = parser.parse_args(argv)

    root = (args.root or _find_root(Path.cwd())).resolve()
    allowlist_path = args.allowlist or (root / DEFAULT_ALLOWLIST)

    try:
        allowlist = load_allowlist(allowlist_path)
    except AllowlistError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    findings = run_contract_checks(root)

    rules_json: Optional[List[Dict[str, Any]]] = None
    if args.rules:
        from repro.statics.tiers import closure_findings, tier_report

        rules_json = [entry.to_json() for entry in tier_report()]
        findings = sorted(
            findings + closure_findings(root=root),
            key=lambda f: (f.path, f.line, f.check, f.symbol),
        )

    new, allowlisted, stale = apply_allowlist(findings, allowlist)

    if args.prune and stale:
        removed = _prune_allowlist(allowlist_path, stale)
        print(
            f"pruned {removed} stale allowlist entr{'y' if removed == 1 else 'ies'}",
            file=sys.stderr,
        )
        stale = []

    if args.format == "json":
        document = {
            "root": str(root),
            "findings": [finding.to_json() for finding in new],
            "allowlisted": [finding.to_json() for finding in allowlisted],
            "stale": list(stale),
            "rules": rules_json,
            "summary": _summarise(new, allowlisted, stale, rules_json),
            "ok": not new and not stale,
        }
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        print()
    elif args.format == "github":
        _print_github(new, stale, sys.stdout)
    else:
        _print_text(new, allowlisted, stale, rules_json, sys.stdout)

    return 0 if not new and not stale else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
