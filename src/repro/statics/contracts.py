"""Repo-wide contract lint for the engine stack's conventions.

The engine tiers stay byte-identical only while every consumer follows a
handful of conventions that no compiler enforces: route ``engine=``
parameters through :func:`repro.local_model.store.resolve_engine`, keep
``grid.shift`` inside the simulator, keep raw ``multiprocessing`` /
``shared_memory`` plumbing inside :mod:`repro.runtime`, pair every
:class:`~repro.runtime.buffers.SharedCodeBuffer` acquisition with a
close/unlink path, keep fault-injection hooks
(:mod:`repro.runtime.faults`) out of algorithm layers, record
benchmark output through the ``bench_json`` fixture, and measure wall
time only through :mod:`repro.observability` (no ad-hoc ``time.*`` clock
reads in ``src/``).  This module walks
the tree (``src/`` plus ``benchmarks/``),
parses each file once, and reports every violation as a :class:`Finding`.

Accepted findings live in an annotated allowlist file
(``.statics-allowlist`` by default): one fingerprint per line, each with a
mandatory ``# justification`` comment.  Fingerprints are
``check:path:symbol`` — deliberately free of line numbers, so unrelated
edits to a file do not churn the allowlist.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Engine names whose presence as an ``engine=`` default puts a function
#: in scope for the routing check.
ENGINE_DEFAULTS = {"dict", "indexed", "array", "parallel", "shm"}

#: Functions that *are* the routing layer and are therefore exempt.
RESOLVER_NAMES = {"resolve_engine", "resolve_vector_engine"}

#: Files allowed to call ``grid.shift`` directly: the simulator (the one
#: sanctioned consumer) and the torus module that defines it.
SHIFT_ALLOWED_FILES = {
    "src/repro/local_model/simulator.py",
    "src/repro/grid/torus.py",
}

#: Directory whose modules own all raw multiprocessing / shared-memory use.
RUNTIME_PREFIX = "src/repro/runtime/"

#: Module roots that count as "raw multiprocessing" outside runtime/.
RAW_MP_MODULES = {"multiprocessing"}

#: The fault-injection module, plus the names it exports through the
#: ``repro.runtime`` package surface.  Referencing either outside
#: runtime/ would let chaos hooks steer an algorithm layer.
FAULT_PLANE_MODULE = "repro.runtime.faults"
FAULT_PLANE_SYMBOLS = {"faults", "FaultPlan", "WorkerFault"}

#: Directory whose modules own neighbour-table construction: every engine
#: tier consumes the flat index tables of a Topology, never raw offset
#: enumerations of its own.
GRID_PREFIX = "src/repro/grid/"

#: The offset-enumeration primitives that *are* neighbour-table
#: construction when called outside the topology layer.
NEIGHBOUR_TABLE_BUILDERS = {"ball_offsets", "offsets_within"}

#: Directory whose modules own wall-clock measurement: engines and the
#: runtime record timings through the span tracer / metrics registry,
#: never with ad-hoc clock reads.
OBSERVABILITY_PREFIX = "src/repro/observability/"

#: ``time.<attr>`` clock reads that count as ad-hoc timing outside the
#: observability package (``time.sleep`` is pacing, not measurement, and
#: stays out of scope).
CLOCK_ATTRIBUTES = {"monotonic", "perf_counter", "process_time", "time", "monotonic_ns", "perf_counter_ns"}


@dataclass(frozen=True)
class Finding:
    """One contract violation at a specific site.

    ``fingerprint`` identifies the *site* (check, file, enclosing symbol)
    without a line number, so allowlist entries survive unrelated edits;
    ``line`` is still reported for humans chasing the finding down.
    """

    check: str
    path: str
    symbol: str
    line: int
    message: str

    @property
    def fingerprint(self) -> str:
        return f"{self.check}:{self.path}:{self.symbol}"

    def to_json(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "path": self.path,
            "symbol": self.symbol,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


class AllowlistError(ValueError):
    """The allowlist file itself is malformed (missing justification)."""


# ---------------------------------------------------------------------------
# Per-file AST helpers
# ---------------------------------------------------------------------------


def _qualified_symbols(tree: ast.Module) -> List[Tuple[str, ast.stmt]]:
    """All (qualified name, node) pairs for def/class nodes in ``tree``."""
    out: List[Tuple[str, ast.stmt]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = f"{prefix}{child.name}"
                out.append((name, child))
                visit(child, f"{name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return out


def _enclosing_symbol(tree: ast.Module, target: ast.AST) -> str:
    """Qualified name of the innermost def/class containing ``target``."""
    best = "<module>"
    best_span: Optional[int] = None
    target_line: int = getattr(target, "lineno", 0)
    for name, node in _qualified_symbols(tree):
        start = node.lineno
        end = getattr(node, "end_lineno", start)
        if start <= target_line <= end:
            span = end - start
            if best_span is None or span <= best_span:
                best, best_span = name, span
    return best


def _imports_engine_layer(tree: ast.Module) -> bool:
    """Whether the module imports from the store/engine routing layer."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module.startswith(("repro.local_model.store", "repro.local_model.engine")):
                return True
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith(("repro.local_model.store", "repro.local_model.engine")):
                    return True
    return False


def _string_default(args: ast.arguments, name: str) -> Optional[str]:
    """String default of parameter ``name``, or None."""
    pos = args.posonlyargs + args.args
    defaults = args.defaults
    offset = len(pos) - len(defaults)
    for index, arg in enumerate(pos):
        if arg.arg == name and index >= offset:
            default = defaults[index - offset]
            if isinstance(default, ast.Constant) and isinstance(default.value, str):
                return default.value
            return None
    for kw_arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if kw_arg.arg == name and default is not None:
            if isinstance(default, ast.Constant) and isinstance(default.value, str):
                return default.value
            return None
    return None


def _has_param(args: ast.arguments, name: str) -> bool:
    return any(a.arg == name for a in args.posonlyargs + args.args + args.kwonlyargs)


def _call_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _routes_engine(node: ast.AST) -> bool:
    """Whether a function body resolves or forwards its ``engine`` argument."""
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        name = _call_name(child.func)
        if name in RESOLVER_NAMES:
            return True
        for keyword in child.keywords:
            if (
                keyword.arg == "engine"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == "engine"
            ):
                return True
    return False


# ---------------------------------------------------------------------------
# The five checks
# ---------------------------------------------------------------------------


def check_engine_routing(path: str, tree: ast.Module) -> List[Finding]:
    """Every in-scope ``engine=`` function must route through a resolver.

    A function is in scope when its ``engine`` default is one of the five
    tier names, or is ``"auto"`` in a module that imports from the
    store/engine routing layer — this keeps synthesis-side vocabulary
    (``"csp"``/``"sat"`` solvers and the like) out of scope.
    """
    findings: List[Finding] = []
    module_in_auto_scope = _imports_engine_layer(tree)
    for symbol, node in _qualified_symbols(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name in RESOLVER_NAMES:
            continue
        if not _has_param(node.args, "engine"):
            continue
        default = _string_default(node.args, "engine")
        in_scope = default in ENGINE_DEFAULTS or (default == "auto" and module_in_auto_scope)
        if not in_scope:
            continue
        if not _routes_engine(node):
            findings.append(
                Finding(
                    check="engine-routing",
                    path=path,
                    symbol=symbol,
                    line=node.lineno,
                    message=(
                        f"{symbol}() accepts engine={default!r} but neither calls "
                        "resolve_engine/resolve_vector_engine nor forwards "
                        "engine= to a callee"
                    ),
                )
            )
    return findings


def check_shift_usage(path: str, tree: ast.Module) -> List[Finding]:
    """No direct ``grid.shift(...)`` calls outside the simulator.

    Bypassing the simulator bypasses round accounting and the engine
    tiers entirely.  ``self.shift`` is exempt (that is the torus's own
    implementation surface); findings are deduplicated per enclosing
    function so one loop body yields one finding.
    """
    if path in SHIFT_ALLOWED_FILES:
        return []
    sites: Dict[str, ast.Call] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "shift"):
            continue
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            continue
        symbol = _enclosing_symbol(tree, node)
        sites.setdefault(symbol, node)
    return [
        Finding(
            check="grid-shift",
            path=path,
            symbol=symbol,
            line=call.lineno,
            message=(
                f"{symbol} calls .shift() directly; views must come from the "
                "simulator (local_model/simulator.py) so round accounting and "
                "engine routing apply"
            ),
        )
        for symbol, call in sorted(sites.items())
    ]


def check_raw_multiprocessing(path: str, tree: ast.Module) -> List[Finding]:
    """No raw ``multiprocessing``/``shared_memory`` imports outside runtime/."""
    if path.startswith(RUNTIME_PREFIX):
        return []
    sites: Dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in RAW_MP_MODULES:
                    sites.setdefault(alias.name, node)
        elif isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            if root in RAW_MP_MODULES:
                sites.setdefault(node.module, node)
    return [
        Finding(
            check="raw-multiprocessing",
            path=path,
            symbol=module,
            line=node.lineno,
            message=(
                f"imports {module!r} outside repro.runtime; process/shared-memory "
                "plumbing belongs in the runtime package"
            ),
        )
        for module, node in sorted(sites.items())
    ]


def check_fault_plane(path: str, tree: ast.Module) -> List[Finding]:
    """Fault-injection hooks stay inside runtime/ (tests are not linted).

    The fault plane (:mod:`repro.runtime.faults`) perturbs the *runtime*
    — worker processes, pipes, shared segments — and the chaos
    equivalence leg asserts that results stay byte-identical whatever it
    injects.  An algorithm or engine layer that consulted the plan could
    make chaos part of the computed labelling, silently voiding that
    invariant, so only runtime modules (and the test tree, which the lint
    does not walk) may import it.
    """
    if path.startswith(RUNTIME_PREFIX):
        return []
    sites: Dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == FAULT_PLANE_MODULE or alias.name.startswith(
                    FAULT_PLANE_MODULE + "."
                ):
                    sites.setdefault(alias.name, node)
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module == FAULT_PLANE_MODULE or node.module.startswith(
                FAULT_PLANE_MODULE + "."
            ):
                sites.setdefault(node.module, node)
            elif node.module == "repro.runtime":
                for alias in node.names:
                    if alias.name in FAULT_PLANE_SYMBOLS:
                        sites.setdefault(f"{node.module}.{alias.name}", node)
    return [
        Finding(
            check="fault-plane",
            path=path,
            symbol=module,
            line=node.lineno,
            message=(
                f"imports {module!r} outside repro.runtime; fault-injection "
                "hooks belong to the runtime layer (and tests) so chaos can "
                "never steer algorithm results"
            ),
        )
        for module, node in sorted(sites.items())
    ]


def check_shared_buffer_lifecycle(path: str, tree: ast.Module) -> List[Finding]:
    """Every ``SharedCodeBuffer`` acquisition needs a close/unlink path.

    A module that calls ``SharedCodeBuffer.create`` must also call
    ``.close()`` and ``.unlink()`` somewhere (the creator owns the
    segment); a module that only attaches must still call ``.close()``.
    Leaked segments outlive the process under ``/dev/shm``.
    """
    creates: Optional[ast.Call] = None
    attaches: Optional[ast.Call] = None
    closes = False
    unlinks = False
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "close":
                closes = True
            elif func.attr == "unlink":
                unlinks = True
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "SharedCodeBuffer"
            ):
                if func.attr == "create" and creates is None:
                    creates = node
                elif func.attr == "attach" and attaches is None:
                    attaches = node
    findings: List[Finding] = []
    if creates is not None and not (closes and unlinks):
        missing = [name for name, ok in (("close", closes), ("unlink", unlinks)) if not ok]
        findings.append(
            Finding(
                check="shared-buffer-lifecycle",
                path=path,
                symbol="SharedCodeBuffer.create",
                line=creates.lineno,
                message=(
                    "SharedCodeBuffer.create without a "
                    + "/".join(missing)
                    + " path in the same module; the segment would leak in /dev/shm"
                ),
            )
        )
    if attaches is not None and not closes:
        findings.append(
            Finding(
                check="shared-buffer-lifecycle",
                path=path,
                symbol="SharedCodeBuffer.attach",
                line=attaches.lineno,
                message=(
                    "SharedCodeBuffer.attach without a close path in the same "
                    "module; attached mappings must be released"
                ),
            )
        )
    return findings


def check_neighbour_tables(path: str, tree: ast.Module) -> List[Finding]:
    """Neighbour-table construction belongs to the topology layer.

    Calling ``ball_offsets``/``offsets_within`` outside ``src/repro/grid/``
    rebuilds a neighbourhood enumeration the :class:`Topology` protocol
    already exports as cached flat tables (``ball_table``/``view_keys``/
    ``ball_index_array``) — and, worse, hard-wires the caller to the torus
    offset vocabulary, so the code silently stops generalising to the
    cycle/tree/graph topologies.  Findings are deduplicated per enclosing
    symbol, like the grid-shift check.
    """
    if path.startswith(GRID_PREFIX):
        return []
    sites: Dict[Tuple[str, str], ast.Call] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node.func)
        if name not in NEIGHBOUR_TABLE_BUILDERS:
            continue
        symbol = _enclosing_symbol(tree, node)
        sites.setdefault((symbol, name), node)
    return [
        Finding(
            check="neighbour-tables",
            path=path,
            symbol=symbol,
            line=call.lineno,
            message=(
                f"{symbol} calls {name}() outside repro.grid; neighbour "
                "tables come from the Topology protocol (ball_table/"
                "view_keys) so non-torus topologies stay supported"
            ),
        )
        for (symbol, name), call in sorted(sites.items())
    ]


def check_bench_json(path: str, tree: ast.Module) -> List[Finding]:
    """Benchmark modules must record results through the bench_json fixture."""
    name = Path(path).name
    if not (path.startswith("benchmarks/") and name.startswith(("bench_", "test_bench_"))):
        return []
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id == "bench_json":
            return []
        if isinstance(node, ast.arg) and node.arg == "bench_json":
            return []
    return [
        Finding(
            check="bench-json",
            path=path,
            symbol="<module>",
            line=1,
            message=(
                "benchmark module never uses the bench_json fixture; its "
                "results are invisible to the BENCH_*.json artifact trail"
            ),
        )
    ]


def check_observability(path: str, tree: ast.Module) -> List[Finding]:
    """Wall-clock reads outside the observability layer are findings.

    Timing that matters belongs in the span tracer or a metrics summary
    (``repro.observability``), where it is attributable, exportable and
    disabled-path-free — an ad-hoc ``time.monotonic()`` pair in an engine
    is invisible to every trace and skews nothing but a local variable.
    Only ``src/`` is in scope: benchmarks measure wall time as their whole
    job, and the observability package is the sanctioned consumer.
    Deadline arithmetic that genuinely needs a raw clock (e.g. the pool's
    round-timeout barrier) is what the allowlist is for.
    """
    if not path.startswith("src/") or path.startswith(OBSERVABILITY_PREFIX):
        return []
    sites: Dict[Tuple[str, str], ast.Call] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in CLOCK_ATTRIBUTES
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            continue
        symbol = _enclosing_symbol(tree, node)
        sites.setdefault((symbol, func.attr), node)
    return [
        Finding(
            check="observability",
            path=path,
            symbol=symbol,
            line=call.lineno,
            message=(
                f"{symbol} calls time.{attr}() directly; measure through "
                "repro.observability (tracer spans / registry.timed) so the "
                "timing is attributable and trace-exportable"
            ),
        )
        for (symbol, attr), call in sorted(sites.items())
    ]


_CHECKS = (
    check_engine_routing,
    check_shift_usage,
    check_raw_multiprocessing,
    check_fault_plane,
    check_shared_buffer_lifecycle,
    check_neighbour_tables,
    check_bench_json,
    check_observability,
)


# ---------------------------------------------------------------------------
# Tree walk + allowlist
# ---------------------------------------------------------------------------


def _lint_targets(root: Path) -> List[Path]:
    targets: List[Path] = []
    for top in ("src", "benchmarks"):
        base = root / top
        if base.is_dir():
            targets.extend(sorted(base.rglob("*.py")))
    return targets


def run_contract_checks(root: Path) -> List[Finding]:
    """Run every contract check over ``src/`` and ``benchmarks/`` under ``root``."""
    findings: List[Finding] = []
    for file_path in _lint_targets(root):
        rel = file_path.relative_to(root).as_posix()
        try:
            tree = ast.parse(file_path.read_text(encoding="utf-8"), filename=rel)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    check="parse-error",
                    path=rel,
                    symbol="<module>",
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        for check in _CHECKS:
            findings.extend(check(rel, tree))
    findings.sort(key=lambda f: (f.path, f.line, f.check, f.symbol))
    return findings


def load_allowlist(path: Path) -> Dict[str, str]:
    """Parse the allowlist file into ``{fingerprint: justification}``.

    Each non-comment line must read ``<fingerprint>  # <justification>``;
    an entry without a justification is a hard :class:`AllowlistError` —
    the annotation is the point of the file.
    """
    entries: Dict[str, str] = {}
    if not path.is_file():
        return entries
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fingerprint, sep, justification = line.partition("#")
        fingerprint = fingerprint.strip()
        justification = justification.strip()
        if not sep or not justification:
            raise AllowlistError(
                f"{path.name}:{lineno}: allowlist entry {fingerprint!r} has no "
                "justification; write '<fingerprint>  # why this is accepted'"
            )
        if fingerprint in entries:
            raise AllowlistError(
                f"{path.name}:{lineno}: duplicate allowlist entry {fingerprint!r}"
            )
        entries[fingerprint] = justification
    return entries


def apply_allowlist(
    findings: Sequence[Finding], allowlist: Dict[str, str]
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings into (new, allowlisted) and report stale entries.

    Stale entries — fingerprints in the allowlist matching no current
    finding — are returned for a warning, not a failure: a fixed finding
    should prompt cleanup, not break the build.
    """
    new: List[Finding] = []
    allowlisted: List[Finding] = []
    matched: Set[str] = set()
    for finding in findings:
        if finding.fingerprint in allowlist:
            allowlisted.append(finding)
            matched.add(finding.fingerprint)
        else:
            new.append(finding)
    stale = sorted(set(allowlist) - matched)
    return new, allowlisted, stale
