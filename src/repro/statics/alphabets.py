"""Alphabet-closure abstract interpretation of rule bodies.

LCL rules in the conf_podc_BrandtHKLOPRSU17 sense are *finite-alphabet*:
every label a correct ``update`` returns comes from the problem's label
set Σ.  The engine stack leans on that finiteness twice — lookup-table
compilation bounds the table by ``|Σ|^ball_size``, and the shm tier's
codec snapshot is overflow-free only while no new labels appear — but
until now both leaned on the *declared* alphabet on faith.  This module
proves (or refutes) **output closure**: that every label ``update`` can
return is an element of the declared Σ.

The analysis is a small abstract interpreter over the function's AST:

* **Abstract values** are finite sets of concrete labels.  Constants
  abstract to singletons, tuples to bounded products, joins (branches,
  ``or``, conditional expressions) to unions.
* **View reads are ⊤-of-alphabet**: ``view[offset]``, ``view.get(...)``,
  iteration over ``view.values()`` all abstract to the full Σ — the
  analysis asks "assuming inputs range over Σ, do outputs stay in Σ?",
  which is exactly the LCL closure property.
* **Branches are joined**, loops run to a bounded fixpoint and widen to
  ⊤ (an unconstrained value) when they fail to stabilise, and helper
  calls are resolved through :mod:`repro.statics.callgraph` and
  interpreted recursively (cycle-safe, depth-bounded) so the catalogue
  idiom — ``update`` delegating to module-level helpers — stays
  analysable.

Verdicts are three-valued, mirroring the purity prover:

* ``PROVEN_CLOSED`` — every syntactic return abstracts to a finite set
  ``⊆ Σ``; the union of those sets is reported as the *proven output
  alphabet* and consumed by
  :func:`repro.statics.tiers.infer_tier_eligibility`.
* ``PROVEN_ESCAPES`` — some return abstracts to a finite set containing
  a label outside Σ (a relabelling through a dict with out-of-Σ values,
  string concatenation building new labels, a branch returning a
  sentinel...).  The abstraction over-approximates path feasibility, so
  an escape is "provable under the abstraction" — the contract lint
  surfaces it as an ``alphabet-closure`` finding and the annotated
  allowlist absorbs deliberate ones.
* ``UNKNOWN`` — some return abstracts to ⊤ (unresolvable call, widened
  loop, unsupported construct).  ``UNKNOWN`` never gates and never
  lints; it only withholds the proven output alphabet.

Like the purity layer, this module imports nothing from
:mod:`repro.local_model`; rule objects are plain inputs.
"""

from __future__ import annotations

import ast
import enum
import inspect
import textwrap
import types
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.statics.callgraph import (
    MAX_CALL_DEPTH,
    resolve_class_method,
    resolve_global,
    resolve_module_function,
)
from repro.statics.purity import MUTATING_METHODS, _rule_targets, _unwrap_function

#: Abstract sets wider than this widen to ⊤ — keeps products (tuple
#: construction, binary operators over Σ × Σ) bounded.
SET_LIMIT = 256

#: Passes a loop body is re-interpreted before widening to ⊤.
LOOP_LIMIT = 8


class ClosureVerdict(enum.Enum):
    """Three-valued outcome of the closure analysis."""

    PROVEN_CLOSED = "proven-closed"
    PROVEN_ESCAPES = "proven-escapes"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ClosureAnalysis:
    """Outcome of analysing one rule's output closure.

    ``proven_output`` is the union of all return-value abstractions when
    the verdict is ``PROVEN_CLOSED`` (ordered as in the declared
    alphabet) and ``None`` otherwise; ``escapes`` holds ``repr``s of
    labels provably (under the abstraction) returned outside Σ;
    ``reasons`` the human-readable notes behind ⊤ values.
    """

    verdict: ClosureVerdict
    alphabet: Tuple[Any, ...]
    proven_output: Optional[Tuple[Any, ...]]
    escapes: Tuple[str, ...]
    reasons: Tuple[str, ...]

    def describe(self) -> str:
        parts = list(self.escapes) + list(self.reasons)
        return "; ".join(parts) if parts else "no findings"


# --------------------------------------------------------------------- #
# Abstract values
# --------------------------------------------------------------------- #


class _Top:
    """⊤ — an unconstrained value."""

    def __repr__(self) -> str:
        return "⊤"


TOP = _Top()


class _View:
    """The rule's view parameter: a mapping from offsets to Σ labels."""

    def __repr__(self) -> str:
        return "view"


class _SelfRef:
    """The rule instance; only ``.alphabet`` resolves to a known value."""

    def __init__(self, alphabet: Tuple[Any, ...]) -> None:
        self.alphabet = alphabet

    def __repr__(self) -> str:
        return "self"


class _Elements:
    """An iterable whose *elements* abstract to ``value`` (order unknown)."""

    def __init__(self, value: "AbstractValue") -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Elements) and other.value == self.value

    def __hash__(self) -> int:  # pragma: no cover - never keyed
        return hash("_Elements")

    def __repr__(self) -> str:
        return f"elements({self.value!r})"


class _Pairs:
    """An iterable of 2-tuples: ``(keys, values)`` component abstractions."""

    def __init__(self, keys: "AbstractValue", values: "AbstractValue") -> None:
        self.keys = keys
        self.values = values

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _Pairs)
            and other.keys == self.keys
            and other.values == self.values
        )

    def __hash__(self) -> int:  # pragma: no cover - never keyed
        return hash("_Pairs")

    def __repr__(self) -> str:
        return f"pairs({self.keys!r}, {self.values!r})"


class _Map:
    """A dict with concretely-known keys and abstract values.

    Mutations *join* rather than replace (branch copies share the map
    object, so accumulating is the sound direction), and any write
    through a non-concrete key poisons the map: every later lookup and
    iteration answers ⊤.
    """

    def __init__(self) -> None:
        self.entries: Dict[Any, "AbstractValue"] = {}
        self.poisoned = False

    def assign(self, keys: "AbstractValue", value: "AbstractValue") -> None:
        if self.poisoned:
            return
        if not isinstance(keys, frozenset):
            self.poisoned = True
            return
        for key in keys:
            existing = self.entries.get(key)
            self.entries[key] = value if existing is None else _join(existing, value)

    def lookup(self, keys: "AbstractValue") -> "AbstractValue":
        if self.poisoned:
            return TOP
        if isinstance(keys, frozenset):
            hits = [self.entries[key] for key in keys if key in self.entries]
            if not hits:
                return TOP
            result: AbstractValue = hits[0]
            for hit in hits[1:]:
                result = _join(result, hit)
            return result
        return self.joined_values()

    def joined_values(self) -> "AbstractValue":
        if self.poisoned or not self.entries:
            return TOP
        values = list(self.entries.values())
        result: AbstractValue = values[0]
        for value in values[1:]:
            result = _join(result, value)
        return result

    def key_set(self) -> "AbstractValue":
        if self.poisoned:
            return TOP
        return frozenset(self.entries.keys())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _Map)
            and other.poisoned == self.poisoned
            and other.entries == self.entries
        )

    def __hash__(self) -> int:  # pragma: no cover - never keyed
        return hash("_Map")

    def __repr__(self) -> str:
        return f"map({self.entries!r}, poisoned={self.poisoned})"


AbstractValue = Union[_Top, FrozenSet[Any], _View, _SelfRef, _Elements, _Pairs, _Map]


def _join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a is b:
        return a
    if isinstance(a, frozenset) and isinstance(b, frozenset):
        union = a | b
        return union if len(union) <= SET_LIMIT else TOP
    if isinstance(a, _View) and isinstance(b, _View):
        return a
    if isinstance(a, _Elements) and isinstance(b, _Elements):
        return _Elements(_join(a.value, b.value))
    if isinstance(a, _Pairs) and isinstance(b, _Pairs):
        return _Pairs(_join(a.keys, b.keys), _join(a.values, b.values))
    if isinstance(a, _Map) and isinstance(b, _Map):
        merged = _Map()
        merged.poisoned = a.poisoned or b.poisoned
        for key in set(a.entries) | set(b.entries):
            left, right = a.entries.get(key), b.entries.get(key)
            if left is None:
                assert right is not None
                merged.entries[key] = right
            elif right is None:
                merged.entries[key] = left
            else:
                merged.entries[key] = _join(left, right)
        return merged
    if a == b:
        return a
    return TOP


def _singleton(value: Any) -> AbstractValue:
    try:
        hash(value)
    except TypeError:
        return TOP
    return frozenset({value})


_IMMUTABLE_MEMBERS = (str, int, float, bool, bytes, tuple, frozenset, type(None))

_BIN_OPERATORS: Dict[type, Any] = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a**b,
    ast.BitOr: lambda a, b: a | b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitXor: lambda a, b: a ^ b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
}

_UNARY_OPERATORS: Dict[type, Any] = {
    ast.USub: lambda a: -a,
    ast.UAdd: lambda a: +a,
    ast.Invert: lambda a: ~a,
    ast.Not: lambda a: not a,
}

#: Single-argument pure builtins applied elementwise over finite sets.
_ELEMENTWISE_BUILTINS: Dict[str, Any] = {
    "abs": abs,
    "bool": bool,
    "chr": chr,
    "float": float,
    "int": int,
    "len": len,
    "ord": ord,
    "repr": repr,
    "round": round,
    "str": str,
}


def _product_members(
    parts: Sequence[AbstractValue],
) -> Optional[List[Tuple[Any, ...]]]:
    """Concrete tuples from per-component finite sets, ``None`` when ⊤."""
    members: List[Tuple[Any, ...]] = [()]
    for part in parts:
        if not isinstance(part, frozenset):
            return None
        grown = [prefix + (value,) for prefix in members for value in part]
        if len(grown) > SET_LIMIT:
            return None
        members = grown
    return members


class _Interpreter:
    """One abstract stack frame: interprets a function body over Σ."""

    def __init__(
        self,
        function: types.FunctionType,
        sigma: FrozenSet[Any],
        declared: Tuple[Any, ...],
        owner: Optional[type],
        depth: int,
        stack: FrozenSet[types.CodeType],
        notes: List[str],
    ) -> None:
        self.function = function
        self.sigma = sigma
        self.declared = declared
        self.owner = owner
        self.depth = depth
        self.stack = stack | {function.__code__}
        self.notes = notes
        self.returns: List[AbstractValue] = []

    # ------------------------------------------------------------- #
    # Entry
    # ------------------------------------------------------------- #

    def note(self, reason: str) -> None:
        label = getattr(self.function, "__qualname__", self.function.__name__)
        message = f"{label}: {reason}"
        if message not in self.notes:
            self.notes.append(message)

    def run(self, arguments: List[AbstractValue]) -> List[AbstractValue]:
        """Interpret the body with positional ``arguments``; return the
        list of abstract return values (including an implicit ``None``
        when the body may fall through)."""
        definition = self._definition()
        if definition is None:
            self.note("source unavailable for abstract interpretation")
            return [TOP]
        env: Dict[str, AbstractValue] = {}
        parameters = list(definition.args.posonlyargs) + list(definition.args.args)
        for index, parameter in enumerate(parameters):
            if index < len(arguments):
                env[parameter.arg] = arguments[index]
            else:
                default = self._parameter_default(definition.args, index, len(parameters))
                env[parameter.arg] = default
        for parameter in definition.args.kwonlyargs:
            env[parameter.arg] = TOP
        if definition.args.vararg is not None:
            env[definition.args.vararg.arg] = TOP
        if definition.args.kwarg is not None:
            env[definition.args.kwarg.arg] = TOP
        self.exec_block(definition.body, env)
        if not _terminates(definition.body):
            self.returns.append(_singleton(None))
        return self.returns or [_singleton(None)]

    def _definition(self) -> Optional[ast.FunctionDef]:
        try:
            source = textwrap.dedent(inspect.getsource(self.function))
            tree = ast.parse(source)
        except (OSError, TypeError, SyntaxError, IndentationError, ValueError):
            return None
        definition = tree.body[0] if tree.body else None
        if isinstance(definition, ast.AsyncFunctionDef):
            self.note("async function (not abstractly interpretable)")
            return None
        if not isinstance(definition, ast.FunctionDef):
            return None
        return definition

    def _parameter_default(
        self, args: ast.arguments, index: int, count: int
    ) -> AbstractValue:
        offset = index - (count - len(args.defaults))
        if 0 <= offset < len(args.defaults):
            default = args.defaults[offset]
            if isinstance(default, ast.Constant):
                return _singleton(default.value)
        return TOP

    # ------------------------------------------------------------- #
    # Statements
    # ------------------------------------------------------------- #

    def exec_block(self, stmts: Sequence[ast.stmt], env: Dict[str, AbstractValue]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.stmt, env: Dict[str, AbstractValue]) -> None:
        if isinstance(stmt, ast.Return):
            value = _singleton(None) if stmt.value is None else self.eval(stmt.value, env)
            self.returns.append(value)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self.bind_target(target, value, env)
        elif isinstance(stmt, ast.AugAssign):
            synthetic = ast.BinOp(
                left=_load_of(stmt.target), op=stmt.op, right=stmt.value
            )
            self.bind_target(stmt.target, self.eval(synthetic, env), env)
        elif isinstance(stmt, ast.AnnAssign):
            value = TOP if stmt.value is None else self.eval(stmt.value, env)
            self.bind_target(stmt.target, value, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            self.exec_branches([stmt.body, stmt.orelse], env)
        elif isinstance(stmt, ast.For):
            self.exec_loop(stmt, env, target=stmt.target, iterable=stmt.iter)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            self.exec_loop(stmt, env, target=None, iterable=None)
        elif isinstance(stmt, ast.Try):
            blocks: List[List[ast.stmt]] = [list(stmt.body)]
            for handler in stmt.handlers:
                if handler.name is not None:
                    env[handler.name] = TOP
                blocks.append(list(handler.body))
            if stmt.orelse:
                blocks.append(list(stmt.orelse))
            self.exec_branches(blocks, env)
            if stmt.finalbody:
                self.exec_block(stmt.finalbody, env)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self.bind_target(item.optional_vars, TOP, env)
            self.exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, env)
            # A raising path produces no label; nothing to record.
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env[target.id] = TOP
        elif isinstance(stmt, (ast.Pass, ast.Break, ast.Continue, ast.Assert)):
            if isinstance(stmt, ast.Assert):
                self.eval(stmt.test, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested definition's returns are its own; the bound name is
            # an opaque callable.
            env[stmt.name] = TOP
            self.note(f"nested definition {stmt.name!r} is not interpreted")
        else:
            # Unknown statement kind (match statements, imports, ...):
            # havoc the environment and count any return buried inside it
            # as ⊤ so no syntactic return is ever silently dropped.
            self.note(f"unsupported statement {type(stmt).__name__}")
            for name in list(env):
                env[name] = TOP
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Return):
                    self.returns.append(TOP)

    def exec_branches(
        self, blocks: Sequence[List[ast.stmt]], env: Dict[str, AbstractValue]
    ) -> None:
        snapshots: List[Dict[str, AbstractValue]] = []
        for block in blocks:
            branch_env = dict(env)
            self.exec_block(block, branch_env)
            snapshots.append(branch_env)
        names = set(env)
        for snapshot in snapshots:
            names |= set(snapshot)
        for name in names:
            values = [snapshot.get(name, env.get(name, TOP)) for snapshot in snapshots]
            joined = values[0]
            for value in values[1:]:
                joined = _join(joined, value)
            env[name] = joined

    def exec_loop(
        self,
        stmt: Union[ast.For, ast.While],
        env: Dict[str, AbstractValue],
        target: Optional[ast.expr],
        iterable: Optional[ast.expr],
    ) -> None:
        for _ in range(LOOP_LIMIT):
            before = dict(env)
            if target is not None and iterable is not None:
                self.bind_iteration_target(target, self.eval(iterable, env), env)
            body_env = dict(env)
            self.exec_block(stmt.body, body_env)
            for name in set(env) | set(body_env):
                joined = _join(env.get(name, TOP), body_env.get(name, TOP))
                env[name] = joined
            if env == before:
                break
        else:
            # No fixpoint within the bound: widen everything this loop
            # could have touched — i.e. the whole frame — and take one
            # final pass so returns inside the body are recorded at ⊤.
            for name in list(env):
                env[name] = TOP
            if target is not None:
                self.bind_iteration_target(target, TOP, env)
            self.exec_block(stmt.body, dict(env))
        if stmt.orelse:
            self.exec_block(stmt.orelse, env)

    def bind_target(
        self, target: ast.expr, value: AbstractValue, env: Dict[str, AbstractValue]
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            components = self.unpack(value, len(target.elts))
            for element, component in zip(target.elts, components):
                self.bind_target(element, component, env)
        elif isinstance(target, ast.Starred):
            self.bind_target(target.value, TOP, env)
        elif isinstance(target, ast.Subscript):
            container = self.eval(target.value, env)
            if isinstance(container, _Map):
                container.assign(self.eval(target.slice, env), value)
            elif isinstance(target.value, ast.Name):
                env[target.value.id] = TOP
        elif isinstance(target, ast.Attribute):
            # ``self.x = ...`` — the purity layer's business; the written
            # slot reads back as ⊤ here anyway.
            pass

    def unpack(self, value: AbstractValue, arity: int) -> List[AbstractValue]:
        if isinstance(value, _Pairs) and arity == 2:
            return [value.keys, value.values]
        if isinstance(value, frozenset):
            components: List[AbstractValue] = []
            for index in range(arity):
                projected = set()
                for member in value:
                    if not isinstance(member, tuple) or len(member) != arity:
                        return [TOP] * arity
                    projected.add(member[index])
                if len(projected) > SET_LIMIT:
                    return [TOP] * arity
                components.append(frozenset(projected))
            return components
        return [TOP] * arity

    def bind_iteration_target(
        self, target: ast.expr, iterable: AbstractValue, env: Dict[str, AbstractValue]
    ) -> None:
        element = self.element_of(iterable)
        if (
            isinstance(target, (ast.Tuple, ast.List))
            and isinstance(iterable, _Pairs)
            and len(target.elts) == 2
        ):
            self.bind_target(target.elts[0], iterable.keys, env)
            self.bind_target(target.elts[1], iterable.values, env)
            return
        self.bind_target(target, element, env)

    def element_of(self, iterable: AbstractValue) -> AbstractValue:
        if isinstance(iterable, _View):
            return TOP  # iterating a view yields offsets, not labels
        if isinstance(iterable, _Elements):
            return iterable.value
        if isinstance(iterable, _Pairs):
            merged = _product_members([iterable.keys, iterable.values])
            if merged is None:
                return TOP
            return frozenset(merged) if len(merged) <= SET_LIMIT else TOP
        if isinstance(iterable, _Map):
            return iterable.key_set()
        if isinstance(iterable, frozenset):
            elements: set = set()
            for member in iterable:
                if isinstance(member, (tuple, str, frozenset)):
                    elements.update(member)
                else:
                    return TOP
            return frozenset(elements) if len(elements) <= SET_LIMIT else TOP
        return TOP

    # ------------------------------------------------------------- #
    # Expressions
    # ------------------------------------------------------------- #

    def eval(self, node: ast.expr, env: Dict[str, AbstractValue]) -> AbstractValue:
        if isinstance(node, ast.Constant):
            return _singleton(node.value)
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return self.global_constant(node.id)
        if isinstance(node, ast.Tuple):
            members = _product_members([self.eval(el, env) for el in node.elts])
            return TOP if members is None else frozenset(members)
        if isinstance(node, ast.Dict):
            return self.eval_dict(node, env)
        if isinstance(node, ast.Subscript):
            return self.eval_subscript(node, env)
        if isinstance(node, ast.Attribute):
            return self.eval_attribute(node, env)
        if isinstance(node, ast.BinOp):
            return self.eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            return self.eval_unaryop(node, env)
        if isinstance(node, ast.BoolOp):
            joined: AbstractValue = self.eval(node.values[0], env)
            for value in node.values[1:]:
                joined = _join(joined, self.eval(value, env))
            return joined
        if isinstance(node, ast.Compare):
            self.eval(node.left, env)
            for comparator in node.comparators:
                self.eval(comparator, env)
            return frozenset({True, False})
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return _join(self.eval(node.body, env), self.eval(node.orelse, env))
        if isinstance(node, ast.Call):
            return self.eval_call(node, env)
        if isinstance(node, ast.JoinedStr):
            return self.eval_joined_str(node, env)
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, env)
            self.bind_target(node.target, value, env)
            return value
        if isinstance(node, ast.Starred):
            self.eval(node.value, env)
            return TOP
        # Lambdas, comprehensions, sets/lists, await/yield, slices...
        return TOP

    def global_constant(self, name: str) -> AbstractValue:
        bound = getattr(self.function, "__globals__", {}).get(name)
        if isinstance(bound, _IMMUTABLE_MEMBERS) and not isinstance(bound, types.ModuleType):
            return _singleton(bound)
        return TOP

    def eval_dict(self, node: ast.Dict, env: Dict[str, AbstractValue]) -> AbstractValue:
        mapping = _Map()
        for key, value in zip(node.keys, node.values):
            abstract_value = self.eval(value, env)
            if key is None:  # ``{**other}`` unpacking
                mapping.poisoned = True
                continue
            mapping.assign(self.eval(key, env), abstract_value)
        return mapping

    def eval_subscript(
        self, node: ast.Subscript, env: Dict[str, AbstractValue]
    ) -> AbstractValue:
        container = self.eval(node.value, env)
        if isinstance(node.slice, ast.Slice):
            return TOP
        index = self.eval(node.slice, env)
        if isinstance(container, _View):
            return frozenset(self.sigma)
        if isinstance(container, _Map):
            return container.lookup(index)
        if isinstance(container, _Elements):
            return container.value
        if isinstance(container, frozenset) and isinstance(index, frozenset):
            projected: set = set()
            for member in container:
                if not isinstance(member, (tuple, str)):
                    return TOP
                for position in index:
                    if not isinstance(position, int):
                        return TOP
                    if -len(member) <= position < len(member):
                        projected.add(member[position])
            if not projected or len(projected) > SET_LIMIT:
                return TOP
            return frozenset(projected)
        return TOP

    def eval_attribute(
        self, node: ast.Attribute, env: Dict[str, AbstractValue]
    ) -> AbstractValue:
        base = self.eval(node.value, env)
        if isinstance(base, _SelfRef) and node.attr == "alphabet":
            return _singleton(base.alphabet)
        if isinstance(node.value, ast.Name) and node.value.id not in env:
            module = getattr(self.function, "__globals__", {}).get(node.value.id)
            if isinstance(module, types.ModuleType):
                bound = getattr(module, node.attr, None)
                if isinstance(bound, _IMMUTABLE_MEMBERS):
                    return _singleton(bound)
        return TOP

    def eval_binop(self, node: ast.BinOp, env: Dict[str, AbstractValue]) -> AbstractValue:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        operator = _BIN_OPERATORS.get(type(node.op))
        if (
            operator is None
            or not isinstance(left, frozenset)
            or not isinstance(right, frozenset)
        ):
            return TOP
        if len(left) * len(right) > SET_LIMIT:
            return TOP
        results: set = set()
        for a in left:
            for b in right:
                try:
                    value = operator(a, b)
                    hash(value)
                except Exception:
                    continue  # that combination raises; no label flows
                results.add(value)
        if not results or len(results) > SET_LIMIT:
            return TOP
        return frozenset(results)

    def eval_unaryop(
        self, node: ast.UnaryOp, env: Dict[str, AbstractValue]
    ) -> AbstractValue:
        operand = self.eval(node.operand, env)
        operator = _UNARY_OPERATORS.get(type(node.op))
        if operator is None or not isinstance(operand, frozenset):
            return frozenset({True, False}) if isinstance(node.op, ast.Not) else TOP
        results: set = set()
        for member in operand:
            try:
                value = operator(member)
                hash(value)
            except Exception:
                continue
            results.add(value)
        return frozenset(results) if results else TOP

    def eval_joined_str(
        self, node: ast.JoinedStr, env: Dict[str, AbstractValue]
    ) -> AbstractValue:
        parts: List[AbstractValue] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(_singleton(str(piece.value)))
            elif isinstance(piece, ast.FormattedValue):
                if piece.format_spec is not None:
                    return TOP
                value = self.eval(piece.value, env)
                if not isinstance(value, frozenset):
                    return TOP
                render = repr if piece.conversion == 114 else str
                rendered = frozenset(render(member) for member in value)
                if len(rendered) > SET_LIMIT:
                    return TOP
                parts.append(rendered)
            else:
                return TOP
        members = _product_members(parts)
        if members is None:
            return TOP
        return frozenset("".join(member) for member in members)

    # ------------------------------------------------------------- #
    # Calls
    # ------------------------------------------------------------- #

    def eval_call(self, node: ast.Call, env: Dict[str, AbstractValue]) -> AbstractValue:
        if isinstance(node.func, ast.Attribute):
            return self.eval_method_call(node, node.func, env)
        if isinstance(node.func, ast.Name):
            return self.eval_named_call(node, node.func.id, env)
        for argument in node.args:
            self.eval(argument, env)
        return TOP

    def eval_named_call(
        self, node: ast.Call, name: str, env: Dict[str, AbstractValue]
    ) -> AbstractValue:
        arguments = [self.eval(argument, env) for argument in node.args]
        for keyword in node.keywords:
            self.eval(keyword.value, env)
        if name in env:
            return TOP  # locally-bound callables stay opaque
        if name in ("min", "max"):
            if len(arguments) == 1:
                return self.element_of(arguments[0])
            if arguments:
                joined: AbstractValue = arguments[0]
                for argument in arguments[1:]:
                    joined = _join(joined, argument)
                return joined
            return TOP
        if name in ("sorted", "list", "tuple", "set", "frozenset", "reversed", "iter"):
            if len(arguments) == 1 and not node.keywords:
                argument = arguments[0]
                if isinstance(argument, (_Pairs, _Elements)):
                    return argument  # reordering keeps the same elements
                return _Elements(self.element_of(argument))
            return TOP
        if name == "dict" and not node.args and not node.keywords:
            return _Map()
        if name in _ELEMENTWISE_BUILTINS and len(arguments) == 1:
            argument = arguments[0]
            if isinstance(argument, frozenset):
                results: set = set()
                for member in argument:
                    try:
                        value = _ELEMENTWISE_BUILTINS[name](member)
                        hash(value)
                    except Exception:
                        continue
                    results.add(value)
                return frozenset(results) if results else TOP
            return TOP
        target = resolve_global(self.function, name)
        if target is not None:
            return self.interpret_callee(target, arguments, owner=None, label=name)
        return TOP

    def eval_method_call(
        self, node: ast.Call, callee: ast.Attribute, env: Dict[str, AbstractValue]
    ) -> AbstractValue:
        receiver = self.eval(callee.value, env)
        method = callee.attr
        arguments = [self.eval(argument, env) for argument in node.args]
        for keyword in node.keywords:
            self.eval(keyword.value, env)
        if isinstance(receiver, _View):
            if method == "values":
                return _Elements(frozenset(self.sigma))
            if method == "items":
                return _Pairs(TOP, frozenset(self.sigma))
            if method == "keys":
                return _Elements(TOP)
            if method == "copy":
                return _View()
            if method == "get":
                default = arguments[1] if len(arguments) > 1 else _singleton(None)
                return _join(frozenset(self.sigma), default)
            return TOP
        if isinstance(receiver, _Map):
            if method in MUTATING_METHODS:
                receiver.poisoned = True
                return TOP
            if method == "get":
                default = arguments[1] if len(arguments) > 1 else _singleton(None)
                looked = receiver.lookup(arguments[0]) if arguments else TOP
                return _join(looked, default)
            if method == "values":
                return _Elements(receiver.joined_values())
            if method == "keys":
                return _Elements(receiver.key_set())
            if method == "items":
                return _Pairs(receiver.key_set(), receiver.joined_values())
            if method == "copy":
                copied = _Map()
                copied.entries = dict(receiver.entries)
                copied.poisoned = receiver.poisoned
                return copied
            return TOP
        if isinstance(receiver, _SelfRef) or (
            isinstance(callee.value, ast.Name) and callee.value.id not in env
        ):
            target: Optional[types.FunctionType] = None
            owner: Optional[type] = None
            if isinstance(receiver, _SelfRef) and self.owner is not None:
                target = resolve_class_method(self.owner, method)
                owner = self.owner
                if target is not None:
                    return self.interpret_callee(
                        target,
                        [receiver] + arguments,
                        owner=owner,
                        label=f"self.{method}",
                    )
            elif isinstance(callee.value, ast.Name):
                target = resolve_module_function(
                    self.function, callee.value.id, method
                )
                if target is not None:
                    return self.interpret_callee(
                        target,
                        arguments,
                        owner=None,
                        label=f"{callee.value.id}.{method}",
                    )
            return TOP
        if (
            isinstance(receiver, frozenset)
            and method not in MUTATING_METHODS
            and all(isinstance(member, _IMMUTABLE_MEMBERS) for member in receiver)
            and all(isinstance(argument, frozenset) for argument in arguments)
        ):
            # Pure method application over immutable members (str.upper,
            # str.replace, tuple.count, ...), elementwise over the bounded
            # product of receiver × arguments.
            frames = _product_members([receiver] + arguments)
            if frames is None:
                return TOP
            results: set = set()
            for frame in frames:
                bound = getattr(frame[0], method, None)
                if bound is None or not callable(bound):
                    continue
                try:
                    value = bound(*frame[1:])
                    hash(value)
                except Exception:
                    continue
                results.add(value)
            if not results or len(results) > SET_LIMIT:
                return TOP
            return frozenset(results)
        return TOP

    def interpret_callee(
        self,
        target: Any,
        arguments: List[AbstractValue],
        owner: Optional[type],
        label: str,
    ) -> AbstractValue:
        function = _unwrap_function(target)
        if function is None:
            return TOP
        if function.__code__ in self.stack:
            self.note(f"recursive call to {label}() widens to ⊤")
            return TOP
        if self.depth >= MAX_CALL_DEPTH:
            self.note(f"call to {label}() beyond depth bound widens to ⊤")
            return TOP
        child = _Interpreter(
            function,
            self.sigma,
            self.declared,
            owner,
            self.depth + 1,
            self.stack,
            self.notes,
        )
        values = child.run(arguments)
        joined: AbstractValue = values[0]
        for value in values[1:]:
            joined = _join(joined, value)
        return joined


def _load_of(target: ast.expr) -> ast.expr:
    """A Load-context copy of an AugAssign target."""
    clone = ast.copy_location(
        ast.parse(ast.unparse(target), mode="eval").body, target
    )
    return clone


def _terminates(stmts: Sequence[ast.stmt]) -> bool:
    """Whether every path through ``stmts`` ends in ``return``/``raise``.

    Conservative: loops and try blocks never count, so a fall-through
    implicit ``return None`` may be recorded for bodies that in fact
    always return — an over-approximation, never a missed path.
    """
    for stmt in stmts:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return True
        if (
            isinstance(stmt, ast.If)
            and stmt.orelse
            and _terminates(stmt.body)
            and _terminates(stmt.orelse)
        ):
            return True
    return False


# --------------------------------------------------------------------- #
# Rule-level entry point (cached)
# --------------------------------------------------------------------- #

_CLOSURE_CACHE: Dict[Tuple[Any, ...], ClosureAnalysis] = {}


def _unknown(
    alphabet: Tuple[Any, ...], reasons: Tuple[str, ...]
) -> ClosureAnalysis:
    return ClosureAnalysis(
        verdict=ClosureVerdict.UNKNOWN,
        alphabet=alphabet,
        proven_output=None,
        escapes=(),
        reasons=reasons,
    )


def analyse_closure(
    rule: Any, alphabet: Optional[Sequence[Any]] = None
) -> ClosureAnalysis:
    """Prove (or refute) output closure of ``rule`` over its alphabet.

    ``alphabet`` overrides the rule's declared ``alphabet`` attribute;
    when neither is given the analysis is vacuously ``UNKNOWN`` — there
    is no Σ to be closed over.  Only the scalar ``update`` path is
    interpreted (``update_batch`` is the array tier's vectorised twin,
    pinned byte-identical to ``update`` by the equivalence harness).
    Results are cached per ``(code objects, Σ)``.
    """
    declared = alphabet if alphabet is not None else getattr(rule, "alphabet", None)
    if declared is None:
        return _unknown((), ("no declared alphabet to close over",))
    try:
        declared_tuple = tuple(declared)
        sigma = frozenset(declared_tuple)
    except TypeError:
        return _unknown((), ("declared alphabet is not a finite hashable set",))
    if not declared_tuple:
        return _unknown((), ("declared alphabet is empty",))

    batch = getattr(rule, "update_batch", None)
    targets = [
        (label, function, owner)
        for label, function, owner in _rule_targets(rule)
        if function is not batch or batch is None
    ]
    if not targets:
        return _unknown(declared_tuple, ("rule has no update body to interpret",))

    key_parts: List[Any] = [declared_tuple]
    for _, function, _owner in targets:
        unwrapped = _unwrap_function(function)
        if unwrapped is not None:
            key_parts.append(unwrapped.__code__)
    cache_key = tuple(key_parts)
    cached = _CLOSURE_CACHE.get(cache_key)
    if cached is not None:
        return cached

    notes: List[str] = []
    returns: List[AbstractValue] = []
    for label, function, owner in targets:
        unwrapped = _unwrap_function(function)
        if unwrapped is None:
            notes.append(f"{label}: not a pure-Python function")
            returns.append(TOP)
            continue
        interpreter = _Interpreter(
            unwrapped, sigma, declared_tuple, owner, 0, frozenset(), notes
        )
        parameters = unwrapped.__code__.co_varnames[: unwrapped.__code__.co_argcount]
        arguments: List[AbstractValue] = []
        if owner is not None and parameters and parameters[0] == "self":
            arguments.append(_SelfRef(declared_tuple))
        arguments.append(_View())
        try:
            returns.extend(interpreter.run(arguments))
        except Exception as error:  # pragma: no cover - interpreter bug guard
            notes.append(f"{label}: abstract interpretation failed ({error!r})")
            returns.append(TOP)

    escapes: List[str] = []
    output: set = set()
    undecided = False
    for value in returns:
        if isinstance(value, frozenset):
            bad = sorted((repr(member) for member in value if member not in sigma))
            if bad:
                escapes.extend(bad)
            else:
                output |= set(value)
        else:
            undecided = True
    if escapes:
        analysis = ClosureAnalysis(
            verdict=ClosureVerdict.PROVEN_ESCAPES,
            alphabet=declared_tuple,
            proven_output=None,
            escapes=tuple(dict.fromkeys(escapes)),
            reasons=tuple(notes),
        )
    elif undecided:
        analysis = _unknown(declared_tuple, tuple(notes) or ("a return value widened to ⊤",))
    else:
        ordered = tuple(member for member in declared_tuple if member in output)
        analysis = ClosureAnalysis(
            verdict=ClosureVerdict.PROVEN_CLOSED,
            alphabet=declared_tuple,
            proven_output=ordered,
            escapes=(),
            reasons=tuple(notes),
        )
    _CLOSURE_CACHE[cache_key] = analysis
    return analysis


def clear_closure_cache() -> None:
    """Drop cached closure analyses (test isolation)."""
    _CLOSURE_CACHE.clear()
