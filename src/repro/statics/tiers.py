"""Static tier-eligibility inference for :class:`LocalRule` objects.

The engine stack picks an execution tier per rule at run time (compiled
lookup table, vectorised batch, sharded workers, serial list scan — see
:mod:`repro.local_model.engine`), and a rule that silently misses the fast
tiers simply runs slowly.  This module answers the question *statically*:
given a rule's declared traits (radius, norm, ``update_batch``,
``parallel_safe``) and its purity verdict, which tiers is it eligible for,
and why?  ``python -m repro.statics --rules`` prints the report for every
rule class in the repository, so a silent slow-path fallback becomes a
visible line in CI output instead of a mystery in a flame graph.

Eligibility mirrors the run-time checks exactly:

* **table** — compiled lookup tables require the encoded neighbourhood
  space ``|Σ|^ball_size`` to fit under the engine's table threshold.  The
  alphabet size is a run-time quantity, so the report states the *largest*
  alphabet the rule could be compiled for
  (:func:`max_table_alphabet`); when the caller knows the alphabet it gets
  a definite yes/no.
* **batch** — the rule declares an ``update_batch`` hook.
* **sharded** — the rule declares ``parallel_safe=True`` *and* the purity
  analysis did not prove the declaration wrong.  Rules that declare
  nothing but are interprocedurally ``PROVEN_SAFE`` are additionally
  reported ``autoprove_shardable`` — under ``REPRO_STATICS_AUTOPROVE=1``
  the engines shard them on the proof alone.
* **fallback-only** — none of the above: the rule can never leave the
  serial list scan, whatever engine the caller requests.

Rules that declare a finite output alphabet (``alphabet = (...)``) also
get the alphabet-closure verdict from :mod:`repro.statics.alphabets`: a
``proven-closed`` rule's outputs provably stay inside Σ (so the shm
tier's synced alphabet can never overflow it mid-schedule), while a
``proven-escapes`` rule is a contract-lint finding
(:func:`closure_findings`).
"""

from __future__ import annotations

import importlib
import pkgutil
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Set, Tuple, Type

from repro.statics.alphabets import ClosureVerdict, analyse_closure
from repro.statics.purity import RuleAnalysis, Verdict, analyse_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.statics.contracts import Finding


def ball_size(dimension: int, radius: int, norm: str = "l1") -> int:
    """Number of offsets in the radius-``radius`` ball (offset zero included).

    Matches :func:`repro.grid.indexer.ball_offsets` combinatorially without
    needing a grid: the L1 ball counts offsets with ``|x_1|+...+|x_d| <=
    r``, the L∞ ball counts the full ``(2r+1)^d`` box.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if norm == "linf":
        return (2 * radius + 1) ** dimension
    if norm != "l1":
        raise ValueError(f"unknown norm {norm!r}; expected 'l1' or 'linf'")
    if dimension == 0:
        return 1
    # Iterative convolution: counts[s] = number of d-vectors with L1 mass s.
    counts = [1] + [0] * radius
    for _ in range(dimension):
        next_counts = [0] * (radius + 1)
        for mass, ways in enumerate(counts):
            if not ways:
                continue
            for step in range(-(radius - mass), radius - mass + 1):
                next_counts[mass + abs(step)] += ways
        counts = next_counts
    return sum(counts)


def max_table_alphabet(table_threshold: int, size_of_ball: int) -> int:
    """Largest alphabet whose ``|Σ|^ball_size`` fits the table threshold."""
    from repro.local_model.engine import _max_table_alphabet

    return int(_max_table_alphabet(table_threshold, size_of_ball))


@dataclass(frozen=True)
class TierEligibility:
    """Static answer to "which engine tiers can this rule use?".

    ``table_compilable`` is ``None`` when the alphabet size is unknown
    (compile-eligibility then depends on the run-time alphabet staying at
    most ``table_max_alphabet``); the ``eligible_tiers`` tuple lists the
    tiers in the engines' own preference order, always ending in
    ``"list"`` (the serial scan is universally available).

    ``degrade_ladder`` lists the run-time rungs in the order the engine
    stack falls through them when one breaks: a worker-pool failure
    demotes the persistent ``shm`` rung to per-round ``parallel`` forks,
    a second failure lands on the ``serial`` scan (see the
    ``DegradeEvent`` telemetry in :mod:`repro.local_model.engine`).  The
    ladder always ends in ``"serial"`` — the rung that cannot break.
    """

    rule: str
    radius: int
    norm: str
    size_of_ball: int
    verdict: Verdict
    parallel_safe: bool
    parallel_safe_declared: bool
    table_max_alphabet: int
    table_compilable: Optional[bool]
    batch_vectorisable: bool
    shardable: bool
    autoprove_shardable: bool
    alphabet: Optional[Tuple[Any, ...]]
    closure: str
    proven_output_alphabet: Optional[Tuple[Any, ...]]
    shm_overflow_free: Optional[bool]
    fallback_only: bool
    eligible_tiers: Tuple[str, ...]
    degrade_ladder: Tuple[str, ...]
    notes: Tuple[str, ...]

    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable form for the CLI report."""
        return {
            "rule": self.rule,
            "radius": self.radius,
            "norm": self.norm,
            "ball_size": self.size_of_ball,
            "purity": self.verdict.value,
            "parallel_safe": self.parallel_safe,
            "parallel_safe_declared": self.parallel_safe_declared,
            "table_max_alphabet": self.table_max_alphabet,
            "table_compilable": self.table_compilable,
            "batch_vectorisable": self.batch_vectorisable,
            "shardable": self.shardable,
            "autoprove_shardable": self.autoprove_shardable,
            "alphabet": None if self.alphabet is None else [repr(label) for label in self.alphabet],
            "closure": self.closure,
            "proven_output_alphabet": (
                None
                if self.proven_output_alphabet is None
                else [repr(label) for label in self.proven_output_alphabet]
            ),
            "shm_overflow_free": self.shm_overflow_free,
            "fallback_only": self.fallback_only,
            "eligible_tiers": list(self.eligible_tiers),
            "degrade_ladder": list(self.degrade_ladder),
            "notes": list(self.notes),
        }


def infer_tier_eligibility(
    rule: Any,
    alphabet_size: Optional[int] = None,
    table_threshold: Optional[int] = None,
    dimension: int = 2,
    topology: Optional[Any] = None,
) -> TierEligibility:
    """Infer the engine tiers ``rule`` (instance or class) is eligible for.

    ``alphabet_size`` — when the caller knows the labelling's alphabet —
    turns the table answer from a bound into a definite yes/no;
    ``table_threshold`` defaults to the engines'
    :data:`~repro.local_model.engine.DEFAULT_TABLE_THRESHOLD`;
    ``dimension`` is the torus dimension the ball size is computed for.
    ``topology`` — any :class:`repro.grid.topology.Topology` — replaces the
    combinatorial torus ball size with the topology's own view width
    (``len(topology.view_keys(radius, norm))``, the exponent the engines
    actually compile against on that instance) and takes precedence over
    ``dimension``.
    """
    from repro.local_model.algorithm import rule_traits
    from repro.local_model.engine import DEFAULT_TABLE_THRESHOLD

    threshold = table_threshold if table_threshold is not None else DEFAULT_TABLE_THRESHOLD
    traits = rule_traits(rule)
    analysis: RuleAnalysis = analyse_rule(rule)
    if topology is not None:
        size = len(topology.view_keys(traits.radius, traits.norm))
    else:
        size = ball_size(dimension, traits.radius, traits.norm)
    alphabet_bound = max_table_alphabet(threshold, size)

    notes: List[str] = []
    if alphabet_size is not None:
        table_compilable: Optional[bool] = 0 < alphabet_size <= alphabet_bound
    elif alphabet_bound <= 1:
        # At most a one-letter alphabet fits: no useful rule compiles.
        table_compilable = False
        notes.append(
            f"ball of {size} offsets leaves no usable alphabet under "
            f"threshold {threshold} (silent slow path for table execution)"
        )
    else:
        table_compilable = None
        notes.append(
            f"table-compilable for alphabets of at most {alphabet_bound} "
            f"labels (|Σ|^{size} <= {threshold})"
        )

    batch_vectorisable = traits.update_batch is not None
    declared_safe = traits.parallel_safe
    shardable = declared_safe and analysis.verdict is not Verdict.PROVEN_UNSAFE
    autoprove_shardable = (
        not traits.parallel_safe_declared
        and analysis.verdict is Verdict.PROVEN_SAFE
    )
    if declared_safe and analysis.verdict is Verdict.PROVEN_UNSAFE:
        notes.append(
            "declared parallel_safe=True but statically PROVEN_UNSAFE: "
            + analysis.describe()
        )
    if not declared_safe:
        notes.append("declared parallel_safe=False: sharding tiers degrade to the serial scan")
    if analysis.verdict is Verdict.UNKNOWN and analysis.unknown:
        notes.append("purity undecided: " + "; ".join(analysis.unknown[:3]))
    if autoprove_shardable:
        notes.append(
            "undeclared but interprocedurally PROVEN_SAFE: shards under "
            "REPRO_STATICS_AUTOPROVE=1 on the proof alone"
        )

    closure_analysis = analyse_closure(rule)
    closure = closure_analysis.verdict.value
    proven_output = closure_analysis.proven_output
    if traits.alphabet is None:
        shm_overflow_free: Optional[bool] = None
    else:
        # A proven-closed rule can never intern a label outside its
        # declared Σ mid-schedule, so the shm pool's synced alphabet is
        # bounded by |Σ| for the whole run.
        shm_overflow_free = closure_analysis.verdict is ClosureVerdict.PROVEN_CLOSED
        if closure_analysis.verdict is ClosureVerdict.PROVEN_CLOSED:
            notes.append(
                "output alphabet proven closed over Σ="
                + repr(tuple(traits.alphabet))
            )
        elif closure_analysis.verdict is ClosureVerdict.PROVEN_ESCAPES:
            notes.append(
                "output provably escapes the declared alphabet: "
                + closure_analysis.describe()
            )
        else:
            notes.append(
                "alphabet closure undecided: " + closure_analysis.describe()
            )

    eligible: List[str] = []
    if table_compilable is not False:
        eligible.append("table")
    if batch_vectorisable:
        eligible.append("batch")
    if shardable:
        eligible.append("sharded")
    eligible.append("list")
    fallback_only = eligible == ["list"]

    # The run-time fall-through: sharded rules enter at the persistent
    # shm rung and demote to per-round parallel forks, then to the
    # serial scan; the fast per-rule paths (table, batch) sit above the
    # sharding rungs and never break, so they only appear when eligible.
    ladder: List[str] = []
    if table_compilable is not False:
        ladder.append("table")
    if batch_vectorisable:
        ladder.append("batch")
    if shardable:
        ladder.extend(("shm", "parallel"))
    ladder.append("serial")
    if fallback_only:
        notes.append(
            "fallback-only: this rule can never leave the serial list scan, "
            "whatever engine is requested"
        )

    name = rule.__name__ if isinstance(rule, type) else type(rule).__name__
    return TierEligibility(
        rule=name,
        radius=traits.radius,
        norm=traits.norm,
        size_of_ball=size,
        verdict=analysis.verdict,
        parallel_safe=declared_safe,
        parallel_safe_declared=traits.parallel_safe_declared,
        table_max_alphabet=alphabet_bound,
        table_compilable=table_compilable,
        batch_vectorisable=batch_vectorisable,
        shardable=shardable,
        autoprove_shardable=autoprove_shardable,
        alphabet=traits.alphabet,
        closure=closure,
        proven_output_alphabet=proven_output,
        shm_overflow_free=shm_overflow_free,
        fallback_only=fallback_only,
        eligible_tiers=tuple(eligible),
        degrade_ladder=tuple(ladder),
        notes=tuple(notes),
    )


def discover_rule_classes(package_name: str = "repro") -> List[Type[Any]]:
    """Import every module of ``package_name`` and collect the concrete
    :class:`~repro.local_model.algorithm.LocalRule` subclasses.

    Import failures (an optional dependency missing on this platform) are
    tolerated: the affected module's rules are simply absent from the
    report rather than aborting it.
    """
    from repro.local_model.algorithm import LocalRule

    package = importlib.import_module(package_name)
    search_path: List[str] = list(getattr(package, "__path__", []))
    for module_info in pkgutil.walk_packages(search_path, prefix=f"{package_name}."):
        # ``__main__`` modules run their CLI at import; discovery must
        # never execute an entry point just to enumerate rule classes.
        if module_info.name.rsplit(".", 1)[-1] == "__main__":
            continue
        try:
            importlib.import_module(module_info.name)
        except Exception:  # noqa: BLE001 - optional deps may be missing
            continue

    collected: List[Type[Any]] = []
    seen: Set[type] = set()

    def visit(cls: type) -> None:
        for subclass in cls.__subclasses__():
            if subclass in seen:
                continue
            seen.add(subclass)
            # __subclasses__ sees every live class in the interpreter;
            # only report rules defined inside the requested package
            # (a test harness importing this module brings its own).
            module = getattr(subclass, "__module__", "")
            in_package = module == package_name or module.startswith(
                f"{package_name}."
            )
            if in_package and not getattr(subclass, "__abstractmethods__", None):
                collected.append(subclass)
            visit(subclass)

    visit(LocalRule)
    return sorted(collected, key=lambda cls: (cls.__module__, cls.__qualname__))


def closure_findings(
    rules: Optional[Iterable[Any]] = None, root: Optional[Any] = None
) -> List["Finding"]:
    """Contract-lint findings for rules that provably escape their Σ.

    A rule that declares a finite output alphabet but whose ``update``
    provably returns a label outside it has a broken contract — the tier
    report would silently show ``closure=proven-escapes`` while every
    downstream consumer (codec sizing, shm alphabet sync, table
    compilation bounds) trusts the declaration.  These findings ride the
    same allowlist flow as the AST contract checks; they are only
    computed alongside the rule report because they need the imported
    rule classes (the pure-AST lint never imports the tree).

    ``root`` (a :class:`pathlib.Path`) relativises source paths so the
    fingerprints match allowlist entries written from the repo root.
    """
    import inspect
    from pathlib import Path

    from repro.statics.contracts import Finding

    targets = list(rules) if rules is not None else discover_rule_classes()
    findings: List[Finding] = []
    for rule in targets:
        analysis = analyse_closure(rule)
        if analysis.verdict is not ClosureVerdict.PROVEN_ESCAPES:
            continue
        cls = rule if isinstance(rule, type) else type(rule)
        try:
            source = inspect.getsourcefile(cls)
            line = inspect.getsourcelines(cls)[1]
        except (OSError, TypeError):
            source, line = None, 1
        path = Path(source).as_posix() if source else "<unknown>"
        if root is not None and source:
            try:
                path = Path(source).resolve().relative_to(Path(root).resolve()).as_posix()
            except ValueError:
                pass
        escapes = ", ".join(analysis.escapes) or "see closure reasons"
        findings.append(
            Finding(
                check="alphabet-closure",
                path=path,
                symbol=cls.__qualname__,
                line=line,
                message=(
                    f"declared alphabet {tuple(analysis.alphabet)!r} but update "
                    f"provably returns labels outside it: {escapes}"
                ),
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.symbol))
    return findings


def tier_report(
    rules: Optional[Iterable[Any]] = None,
    alphabet_size: Optional[int] = None,
    table_threshold: Optional[int] = None,
    dimension: int = 2,
    topology: Optional[Any] = None,
) -> List[TierEligibility]:
    """Per-rule eligibility report (defaults to every discoverable rule class)."""
    targets = list(rules) if rules is not None else discover_rule_classes()
    return [
        infer_tier_eligibility(
            rule,
            alphabet_size=alphabet_size,
            table_threshold=table_threshold,
            dimension=dimension,
            topology=topology,
        )
        for rule in targets
    ]
