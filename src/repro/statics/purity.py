"""Static purity analysis of :class:`~repro.local_model.algorithm.LocalRule` bodies.

Why this exists
---------------

The ``parallel`` and ``shm`` engine tiers evaluate rule chunks in forked
worker processes.  A rule whose ``update`` mutates out-of-band state it
later reads — a closure counter, a captured dict, an attribute on ``self``
— diverges silently between the serial oracle and the workers (each worker
sees a fork-time copy of that state), and the randomized equivalence
harness can miss the divergence when it is input-dependent.  This module
*proves* the absence (or presence) of such effects statically, so the
engines can warn before the first fork instead of diverging after it.

The classifier
--------------

:func:`analyse_rule` inspects the rule's ``update`` (and ``update_batch``
when present; for :class:`~repro.local_model.algorithm.FunctionRule` the
wrapped function) through two cooperating passes:

* a **bytecode pass** (:mod:`dis`) that is always available: the
  ``STORE_DEREF`` / ``STORE_GLOBAL`` / ``DELETE_DEREF`` /
  ``DELETE_GLOBAL`` opcodes are definitive evidence of closure-cell or
  global mutation, and a reference to a nondeterminism/I-O module
  (``random``, ``time``, ...) that is *actually bound* to that module in
  the function's globals is definitive evidence of impurity;
* an **AST pass** (:func:`inspect.getsource` + :mod:`ast`) that
  additionally catches attribute and item writes on captured objects,
  mutating method calls (``.append``/``.update``/...) on captured
  objects, and calls to impure builtins — and that is the only pass
  allowed to *prove safety*: a function whose every name is a parameter,
  a provably fresh local, or a whitelisted pure builtin, and whose every
  call resolves to one of those, is ``PROVEN_SAFE``.

The AST pass is **interprocedural** by default: a call site that names a
same-package helper function (``helper(view)``, ``module.helper(view)``,
``self.method(view)``) is resolved through
:mod:`repro.statics.callgraph` and the callee analysed bottom-up with
the same two passes, memoised per code object, cycle-safe (recursion
bottoms the fixpoint at ``UNKNOWN``) and depth-bounded.  Pass
``interprocedural=False`` to :func:`analyse_rule` /
:func:`analyse_function` to reproduce the strictly intraprocedural
verdicts of earlier revisions.

Verdicts are deliberately three-valued:

* ``PROVEN_UNSAFE`` — sound: every unsafe finding names a concrete
  effect; the engines warn (or, under ``REPRO_STATICS_STRICT=1``, raise)
  when such a rule is declared ``parallel_safe=True``.
* ``PROVEN_SAFE`` — sound in the other direction: no heap effect outside
  function-fresh objects, no nondeterminism, no I/O.
* ``UNKNOWN`` — everything the analysis cannot decide (no retrievable
  source, calls into unanalysed helpers, mutation of arguments).
  ``UNKNOWN`` never warns: a ``lambda`` rule must not produce a warning
  storm.

Analyses are cached per code object (the per-rule-instance cost after the
first call is one dictionary lookup), and mis-declaration warnings are
emitted at most once per rule instance.
"""

from __future__ import annotations

import ast
import dis
import enum
import inspect
import os
import textwrap
import types
import warnings
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.statics.callgraph import InterproceduralContext

#: Environment variable escalating the mis-declaration warning (a rule
#: declared ``parallel_safe=True`` whose body is ``PROVEN_UNSAFE``) into a
#: :class:`RuntimeError` raised before any worker pool forks.
STRICT_VARIABLE = "REPRO_STATICS_STRICT"

#: Environment variable opting the sharding tiers into evidence-based
#: gating: a rule with *no explicit* ``parallel_safe`` declaration shards
#: only when the interprocedural analysis proves it safe (see
#: :func:`autoprove_decision`); declared rules keep the author's word.
AUTOPROVE_VARIABLE = "REPRO_STATICS_AUTOPROVE"

#: Modules whose mere use inside a rule body is impure: nondeterminism
#: (``random``, ``secrets``, ``uuid``), wall-clock reads (``time``,
#: ``datetime``) and process/file/network I-O.
IMPURE_MODULES: FrozenSet[str] = frozenset(
    {
        "random",
        "secrets",
        "uuid",
        "time",
        "datetime",
        "os",
        "sys",
        "io",
        "socket",
        "subprocess",
        "threading",
        "multiprocessing",
    }
)

#: Builtins whose call is impure (I-O, dynamic state access).
IMPURE_BUILTINS: FrozenSet[str] = frozenset(
    {"open", "print", "input", "exec", "eval", "globals", "vars", "__import__", "setattr", "delattr"}
)

#: Builtins a ``PROVEN_SAFE`` body may call: pure value constructors and
#: combinators with no heap effects outside their return value.
SAFE_BUILTINS: FrozenSet[str] = frozenset(
    {
        "abs",
        "all",
        "any",
        "bool",
        "chr",
        "dict",
        "divmod",
        "enumerate",
        "filter",
        "float",
        "format",
        "frozenset",
        "hash",
        "int",
        "isinstance",
        "issubclass",
        "iter",
        "len",
        "list",
        "map",
        "max",
        "min",
        "next",
        "ord",
        "pow",
        "range",
        "repr",
        "reversed",
        "round",
        "set",
        "sorted",
        "str",
        "sum",
        "tuple",
        "zip",
    }
)

#: Exception constructors a ``PROVEN_SAFE`` body may call: raising is a
#: deterministic function of the inputs (the equivalence harness pins
#: first-failing-node exceptions byte-identically across tiers), so
#: building the exception object is as pure as building a tuple.
SAFE_EXCEPTION_TYPES: FrozenSet[str] = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "Exception",
        "IndexError",
        "KeyError",
        "LookupError",
        "NotImplementedError",
        "OverflowError",
        "RuntimeError",
        "StopIteration",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)

#: Read-only ``Mapping`` methods: calling these on a parameter (the view)
#: is pure.
SAFE_MAPPING_METHODS: FrozenSet[str] = frozenset(
    {"get", "items", "keys", "values", "count", "index", "copy"}
)

#: Method names that mutate their receiver in place.
MUTATING_METHODS: FrozenSet[str] = frozenset(
    {
        "append",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
        "write",
        "writelines",
    }
)

#: Literal/constructor expressions whose assignment makes a local name
#: *fresh*: the object cannot alias caller- or closure-owned state, so
#: mutating it stays function-private.
_FRESH_EXPRESSIONS = (ast.List, ast.Dict, ast.Set, ast.Tuple, ast.ListComp, ast.DictComp, ast.SetComp, ast.Constant)

#: Opcodes that are definitive evidence of closure-cell/global mutation.
_UNSAFE_STORE_OPS: FrozenSet[str] = frozenset(
    {"STORE_DEREF", "DELETE_DEREF", "STORE_GLOBAL", "DELETE_GLOBAL"}
)


class Verdict(enum.Enum):
    """Three-valued outcome of the purity analysis."""

    PROVEN_SAFE = "proven-safe"
    PROVEN_UNSAFE = "proven-unsafe"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class RuleAnalysis:
    """Outcome of analysing one rule (or one plain function).

    ``verdict`` merges every analysed target function (``update``, a
    wrapped ``FunctionRule`` function, ``update_batch``): any unsafe
    target makes the rule unsafe; otherwise any undecidable target makes
    it unknown; only a fully decided rule is proven safe.  ``unsafe``
    and ``unknown`` carry one human-readable reason per finding, each
    prefixed with the target function's name.
    """

    verdict: Verdict
    unsafe: Tuple[str, ...]
    unknown: Tuple[str, ...]
    targets: Tuple[str, ...]

    def describe(self) -> str:
        """One line per finding, suitable for warnings and CLI output."""
        reasons = list(self.unsafe) + list(self.unknown)
        if not reasons:
            return "no findings"
        return "; ".join(reasons)


# --------------------------------------------------------------------- #
# Function-level analysis
# --------------------------------------------------------------------- #


class _FunctionScan:
    """Accumulated evidence about one function body."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.unsafe: List[str] = []
        self.unknown: List[str] = []
        self.proved = False  # True only when the AST pass completed

    def flag_unsafe(self, reason: str) -> None:
        self.unsafe.append(f"{self.name}: {reason}")

    def flag_unknown(self, reason: str) -> None:
        self.unknown.append(f"{self.name}: {reason}")

    @property
    def verdict(self) -> Verdict:
        if self.unsafe:
            return Verdict.PROVEN_UNSAFE
        if self.unknown or not self.proved:
            return Verdict.UNKNOWN
        return Verdict.PROVEN_SAFE


def _iter_code_objects(code: types.CodeType) -> Iterator[types.CodeType]:
    """Yield ``code`` and every code object nested in its constants."""
    yield code
    for constant in code.co_consts:
        if isinstance(constant, types.CodeType):
            yield from _iter_code_objects(constant)


def _bytecode_pass(function: types.FunctionType, scan: _FunctionScan) -> None:
    """Collect definitive unsafety evidence from the compiled bytecode.

    Catches closure-cell and global mutation (``STORE_DEREF`` /
    ``STORE_GLOBAL`` and their deletes) wherever the AST pass could not
    run, and references to impure modules that are really bound to those
    modules in the function's globals — a name collision (a local variable
    called ``time``) is not evidence, so the binding is checked.
    """
    function_globals = getattr(function, "__globals__", {})
    for code in _iter_code_objects(function.__code__):
        for instruction in dis.get_instructions(code):
            if instruction.opname in _UNSAFE_STORE_OPS:
                kind = "closure cell" if "DEREF" in instruction.opname else "global"
                scan.flag_unsafe(
                    f"mutates a {kind} ({instruction.argval!r}) "
                    f"[{instruction.opname}]"
                )
        for name in code.co_names:
            if name in IMPURE_MODULES:
                bound = function_globals.get(name)
                if isinstance(bound, types.ModuleType) and bound.__name__.split(".")[0] == name:
                    scan.flag_unsafe(
                        f"references the {name!r} module "
                        "(nondeterminism or I/O inside a rule body)"
                    )


def _collect_locals(tree: ast.AST, params: Set[str]) -> Tuple[Set[str], Set[str]]:
    """Return ``(locals, fresh)`` for the function body.

    ``locals`` is every name bound anywhere inside the body (assignments,
    loop targets, ``with`` aliases, comprehension targets, imports, nested
    ``def``/``lambda`` parameters — a flat over-approximation); ``fresh``
    is the subset only ever assigned from literal/constructor expressions,
    whose mutation therefore cannot escape the function.
    """
    bound: Set[str] = set(params)
    fresh: Set[str] = set()
    tainted: Set[str] = set()

    def bind(target: ast.AST, value: Optional[ast.expr]) -> None:
        # Only genuine name bindings count: a ``container[key] = ...`` or
        # ``obj.attr = ...`` target mutates an existing object and must
        # not make ``container``/``obj`` look like a local.
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind(element, None)
        elif isinstance(target, ast.Starred):
            bind(target.value, None)
        elif isinstance(target, ast.Name):
            bound.add(target.id)
            is_fresh = isinstance(value, _FRESH_EXPRESSIONS) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("list", "dict", "set", "tuple", "frozenset")
            )
            if is_fresh and target.id not in tainted:
                fresh.add(target.id)
            else:
                tainted.add(target.id)
                fresh.discard(target.id)

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target, node.value)
        elif isinstance(node, ast.AugAssign):
            bind(node.target, None)
        elif isinstance(node, ast.AnnAssign):
            # ``counts: dict = {}`` is as fresh as the unannotated form.
            bind(node.target, node.value)
        elif isinstance(node, ast.NamedExpr):
            # Walrus targets are never *fresh*: the assignment is an
            # expression whose value keeps flowing (``(xs := []).append``
            # aliases before the binding is even visible), so mutating a
            # walrus-bound name must degrade to UNKNOWN, not prove safe.
            bind(node.target, None)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target, None)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            bind(node.optional_vars, None)
        elif isinstance(node, ast.comprehension):
            bind(node.target, None)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A def's name binds in the *enclosing* scope, so the analysed
            # function's own name is not one of its locals — a recursive
            # self-call resolves through globals like any helper call.
            if node is not tree:
                bound.add(node.name)
            for argument in _all_arguments(node.args):
                bound.add(argument.arg)
        elif isinstance(node, ast.Lambda):
            for argument in _all_arguments(node.args):
                bound.add(argument.arg)
    return bound, fresh


def _all_arguments(args: ast.arguments) -> List[ast.arg]:
    collected = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg is not None:
        collected.append(args.vararg)
    if args.kwarg is not None:
        collected.append(args.kwarg)
    return collected


def _root_name(node: ast.expr) -> Optional[str]:
    """The leftmost :class:`ast.Name` of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _ast_pass(
    function: types.FunctionType,
    scan: _FunctionScan,
    context: Optional["InterproceduralContext"] = None,
) -> bool:
    """Analyse the retrievable source of ``function``; return ``True`` when
    the pass ran (source found and parsed).

    The pass records unsafe evidence (writes outside fresh locals,
    impure/mutating calls) and unknown evidence (calls into unanalysed
    helpers, argument mutation).  When it completes without either, the
    function is proven safe.  ``context`` (when given) resolves helper
    call sites interprocedurally instead of flagging them unknown.
    """
    try:
        source = textwrap.dedent(inspect.getsource(function))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError, ValueError):
        return False
    definition = tree.body[0] if tree.body else None
    if isinstance(definition, (ast.FunctionDef, ast.AsyncFunctionDef)):
        params = {argument.arg for argument in _all_arguments(definition.args)}
    else:
        # ``getsource`` of a lambda returns its enclosing statement, which
        # parses but is not a clean function definition to scope — let the
        # bytecode pass decide, degrade to UNKNOWN otherwise.
        return False
    if isinstance(definition, ast.AsyncFunctionDef):
        # The engines call ``update`` synchronously; an async body never
        # runs to completion under them, and its suspension points step
        # outside the analysed control flow.
        scan.flag_unknown("async function (engines call update synchronously)")

    bound, fresh = _collect_locals(definition, params)
    nested_scope_flagged = False

    def free_or_global(name: str) -> bool:
        return name not in bound

    def classify_write(target: ast.expr, what: str) -> None:
        root = _root_name(target)
        if root is None:
            scan.flag_unknown(f"{what} on an unresolvable expression")
        elif root == "self" or free_or_global(root):
            scan.flag_unsafe(f"{what} on captured object {root!r}")
        elif root in params:
            scan.flag_unknown(f"{what} on argument {root!r} (mutates its input)")
        elif root not in fresh:
            scan.flag_unknown(f"{what} on local {root!r} (may alias captured state)")

    for node in ast.walk(definition):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            scan.flag_unsafe(
                f"declares {' and '.join(node.names)!r} "
                f"{'global' if isinstance(node, ast.Global) else 'nonlocal'}"
            )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    kind = "attribute write" if isinstance(target, ast.Attribute) else "item write"
                    classify_write(target, kind)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, (ast.Attribute, ast.Subscript)):
                kind = (
                    "augmented attribute write"
                    if isinstance(node.target, ast.Attribute)
                    else "augmented item write"
                )
                classify_write(node.target, kind)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    classify_write(target, "deletion")
        elif isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
            scan.flag_unknown("suspends execution (await/yield)")
        elif (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            and node is not definition
        ):
            # A nested scope can capture and mutate locals of this body in
            # ways the flat fresh-locals tracking cannot see; degrade to
            # UNKNOWN rather than risk a wrong PROVEN_SAFE.
            if not nested_scope_flagged:
                nested_scope_flagged = True
                scan.flag_unknown(
                    "defines a nested function or lambda "
                    "(nested scopes are not tracked)"
                )
        elif isinstance(node, ast.Call):
            _classify_call(
                node, scan, bound, fresh, params, free_or_global, function, context
            )
    return True


def _classify_call(
    node: ast.Call,
    scan: _FunctionScan,
    bound: Set[str],
    fresh: Set[str],
    params: Set[str],
    free_or_global: Any,
    function: types.FunctionType,
    context: Optional["InterproceduralContext"] = None,
) -> None:
    callee = node.func
    if isinstance(callee, ast.Name):
        name = callee.id
        if name in IMPURE_BUILTINS:
            scan.flag_unsafe(f"calls impure builtin {name}()")
        elif name in SAFE_BUILTINS or name in SAFE_EXCEPTION_TYPES:
            return
        elif name in bound:
            scan.flag_unknown(f"calls local/argument callable {name}() (unanalysed)")
        else:
            # A global read: a function defined elsewhere, a class, a
            # captured helper.  Same-package helpers are resolved and
            # analysed interprocedurally; everything else stays honest.
            if context is not None:
                from repro.statics.callgraph import resolve_global

                target = resolve_global(function, name)
                if target is not None:
                    context.judge_call(scan, f"{name}()", target)
                    return
            scan.flag_unknown(f"calls unanalysed global {name}()")
    elif isinstance(callee, ast.Attribute):
        root = _root_name(callee)
        method = callee.attr
        if root is not None and root in IMPURE_MODULES:
            bound_value = getattr(function, "__globals__", {}).get(root)
            if isinstance(bound_value, types.ModuleType) or free_or_global(root):
                scan.flag_unsafe(
                    f"calls {root}.{method}() (nondeterminism or I/O)"
                )
                return
        if method in MUTATING_METHODS:
            if root is None:
                scan.flag_unknown(f".{method}() on an unresolvable receiver")
            elif root == "self" or free_or_global(root):
                scan.flag_unsafe(f"calls mutating .{method}() on captured object {root!r}")
            elif root in params:
                scan.flag_unknown(f"calls mutating .{method}() on argument {root!r}")
            elif root not in fresh:
                scan.flag_unknown(
                    f"calls mutating .{method}() on local {root!r} "
                    "(may alias captured state)"
                )
            return
        if method in SAFE_MAPPING_METHODS and root is not None and (root in params or root in bound):
            return
        if context is not None and isinstance(callee.value, ast.Name):
            # Only one-hop attribute calls resolve (``self.method(...)``,
            # ``module.helper(...)``); deeper chains stay unanalysed.
            base = callee.value.id
            if base == "self" and context.owner is not None:
                from repro.statics.callgraph import resolve_class_method

                target = resolve_class_method(context.owner, method)
                if target is not None:
                    context.judge_call(
                        scan, f"self.{method}()", target, owner=context.owner
                    )
                    return
            elif free_or_global(base):
                from repro.statics.callgraph import resolve_module_function

                target = resolve_module_function(function, base, method)
                if target is not None:
                    context.judge_call(scan, f"{base}.{method}()", target)
                    return
        if root == "self" or (root is not None and free_or_global(root)):
            scan.flag_unknown(f"calls unanalysed method {root}.{method}()")
        else:
            scan.flag_unknown(f"calls unanalysed method .{method}()")
    else:
        scan.flag_unknown("calls a computed callable expression")


def analyse_function(
    function: Any,
    name: Optional[str] = None,
    *,
    owner: Optional[type] = None,
    interprocedural: bool = True,
) -> RuleAnalysis:
    """Analyse one plain function (or bound method) for purity.

    ``owner`` is the class against which ``self.method(...)`` call sites
    resolve (``None`` for free functions); ``interprocedural=False``
    restores the strictly intraprocedural analysis, under which every
    helper call is an ``UNKNOWN`` finding.
    """
    target = _unwrap_function(function)
    label = name or getattr(target, "__qualname__", None) or repr(function)
    if target is None:
        return RuleAnalysis(
            verdict=Verdict.UNKNOWN,
            unsafe=(),
            unknown=(f"{label}: not a pure-Python function (no bytecode to analyse)",),
            targets=(label,),
        )
    context: Optional["InterproceduralContext"] = None
    if interprocedural:
        from repro.statics.callgraph import InterproceduralContext

        context = InterproceduralContext(target, owner=owner)
    return _scan_function(target, label, context)


def _scan_function(
    target: types.FunctionType,
    label: str,
    context: Optional["InterproceduralContext"],
) -> RuleAnalysis:
    scan = _FunctionScan(label)
    _bytecode_pass(target, scan)
    scan.proved = _ast_pass(target, scan, context)
    if not scan.proved and not scan.unsafe and not scan.unknown:
        scan.flag_unknown("source unavailable; bytecode shows no mutation but cannot prove purity")
    return RuleAnalysis(
        verdict=scan.verdict,
        unsafe=tuple(scan.unsafe),
        unknown=tuple(scan.unknown),
        targets=(label,),
    )


#: Interprocedural callee summaries, memoised per ``(code, owner)``.
#: Only *complete* summaries are stored — a summary whose computation
#: hit the recursion or depth boundary depends on the walk's entry point
#: and is recomputed per path instead.
_SUMMARY_CACHE: Dict[Tuple[types.CodeType, Optional[type]], RuleAnalysis] = {}


def _callee_summary(
    function: types.FunctionType,
    owner: Optional[type],
    parent: "InterproceduralContext",
) -> Tuple[RuleAnalysis, bool]:
    """Purity summary for a resolved callee; ``(analysis, truncated)``."""
    key = (function.__code__, owner)
    cached = _SUMMARY_CACHE.get(key)
    if cached is not None:
        return cached, False
    context = parent.child(function, owner)
    label = getattr(function, "__qualname__", None) or function.__name__
    analysis = _scan_function(function, label, context)
    if not context.truncated:
        _SUMMARY_CACHE[key] = analysis
    return analysis, context.truncated


def _unwrap_function(function: Any) -> Optional[types.FunctionType]:
    seen = 0
    while seen < 8:
        seen += 1
        if isinstance(function, types.FunctionType):
            return function
        if isinstance(function, types.MethodType):
            function = function.__func__
            continue
        if isinstance(function, (staticmethod, classmethod)):
            function = function.__func__
            continue
        wrapped = getattr(function, "__wrapped__", None)
        if wrapped is not None:
            function = wrapped
            continue
        break
    return None


# --------------------------------------------------------------------- #
# Rule-level analysis (cached)
# --------------------------------------------------------------------- #

_ANALYSIS_CACHE: Dict[Tuple[Any, ...], RuleAnalysis] = {}
_WARNED_RULES: "weakref.WeakSet[Any]" = weakref.WeakSet()
_WARNED_RULE_IDS: Set[int] = set()


def _rule_targets(rule: Any) -> List[Tuple[str, Any, Optional[type]]]:
    """The ``(label, function, owner)`` triples a rule's verdict is built
    from; ``owner`` is the class ``self.method(...)`` call sites resolve
    against (``None`` for functions with no class context).

    For classes and instances alike, ``update`` comes from the class (the
    plain function, not the bound method); a
    :class:`~repro.local_model.algorithm.FunctionRule`'s wrapped callable
    and any ``update_batch`` hook are analysed too — an impure batch hook
    corrupts the array tier just as surely.
    """
    owner = rule if isinstance(rule, type) else type(rule)
    targets: List[Tuple[str, Any, Optional[type]]] = []
    update = getattr(owner, "update", None)
    wrapped = getattr(rule, "_function", None) if not isinstance(rule, type) else None
    if wrapped is not None and not callable(wrapped):
        wrapped = None
    if update is not None:
        # A pure delegation trampoline (``return self._function(view)``,
        # the FunctionRule pattern) is skipped in favour of the wrapped
        # function itself — otherwise every FunctionRule would be capped
        # at UNKNOWN by the unanalysable ``self._function`` call.
        code = getattr(_unwrap_function(update), "__code__", None)
        is_trampoline = (
            wrapped is not None
            and code is not None
            and "_function" in code.co_names
        )
        if not is_trampoline:
            targets.append((f"{owner.__name__}.update", update, owner))
    if wrapped is not None:
        targets.append(
            (getattr(wrapped, "__qualname__", f"{owner.__name__}._function"), wrapped, None)
        )
    batch = getattr(rule, "update_batch", None)
    if batch is not None and callable(batch):
        batch_owner = owner if getattr(owner, "update_batch", None) is not None else None
        targets.append(
            (getattr(batch, "__qualname__", f"{owner.__name__}.update_batch"), batch, batch_owner)
        )
    return targets


def _cache_key(
    targets: List[Tuple[str, Any, Optional[type]]]
) -> Optional[Tuple[Any, ...]]:
    key: List[Any] = []
    for _, function, _owner in targets:
        unwrapped = _unwrap_function(function)
        if unwrapped is None:
            return None
        key.append(unwrapped.__code__)
    return tuple(key)


def analyse_rule(rule: Any, *, interprocedural: bool = True) -> RuleAnalysis:
    """Classify a rule (instance or class) as safe, unsafe or unknown.

    The verdict merges every analysed target (see :func:`_rule_targets`):
    any ``PROVEN_UNSAFE`` target decides the rule; otherwise any
    ``UNKNOWN`` target leaves it undecided; a rule whose every target is
    proven is ``PROVEN_SAFE``.  Analyses are cached per tuple of target
    code objects, so repeated calls (the engines consult the verdict on
    every sharded application) cost one dictionary lookup.

    ``interprocedural=False`` restores the strictly intraprocedural
    verdicts (every helper call an ``UNKNOWN`` finding) — useful for
    pinning what the summary analysis *added* on a given rule.
    """
    targets = _rule_targets(rule)
    if not targets:
        return RuleAnalysis(
            verdict=Verdict.UNKNOWN,
            unsafe=(),
            unknown=("rule has no update/update_batch body to analyse",),
            targets=(),
        )
    key = _cache_key(targets)
    if key is not None:
        key = key + (interprocedural,)
        cached = _ANALYSIS_CACHE.get(key)
        if cached is not None:
            return cached
    analyses = [
        analyse_function(function, name, owner=owner, interprocedural=interprocedural)
        for name, function, owner in targets
    ]
    if any(item.verdict is Verdict.PROVEN_UNSAFE for item in analyses):
        verdict = Verdict.PROVEN_UNSAFE
    elif all(item.verdict is Verdict.PROVEN_SAFE for item in analyses):
        verdict = Verdict.PROVEN_SAFE
    else:
        verdict = Verdict.UNKNOWN
    merged = RuleAnalysis(
        verdict=verdict,
        unsafe=tuple(reason for item in analyses for reason in item.unsafe),
        unknown=tuple(reason for item in analyses for reason in item.unknown),
        targets=tuple(label for item in analyses for label in item.targets),
    )
    if key is not None:
        _ANALYSIS_CACHE[key] = merged
    return merged


def clear_analysis_cache() -> None:
    """Drop cached analyses and warning bookkeeping (test isolation)."""
    _ANALYSIS_CACHE.clear()
    _SUMMARY_CACHE.clear()
    _WARNED_RULES.clear()
    _WARNED_RULE_IDS.clear()


def _env_flag(variable: str) -> bool:
    return os.environ.get(variable, "").strip().lower() in ("1", "true", "yes", "on")


def strict_mode() -> bool:
    """Whether ``REPRO_STATICS_STRICT`` escalates mis-declarations to errors."""
    return _env_flag(STRICT_VARIABLE)


def autoprove_mode() -> bool:
    """Whether ``REPRO_STATICS_AUTOPROVE`` gates undeclared rules on evidence.

    Under this opt-in posture an *undeclared* ``parallel_safe`` (the
    inherited ``LocalRule`` default, or a duck-typed rule with no such
    attribute) is no longer taken on faith by the sharding tiers: the
    rule shards only when :func:`analyse_rule` proves it safe
    interprocedurally, and degrades byte-identically to the serial scan
    otherwise.  Explicit declarations keep the author's word either way.
    """
    return _env_flag(AUTOPROVE_VARIABLE)


def autoprove_decision(rule: Any) -> Tuple[bool, str]:
    """``(may_shard, reason)`` for an undeclared rule under autoprove mode.

    The decision rides the cached interprocedural verdict: only a
    ``PROVEN_SAFE`` body shards.  The reason string is surfaced once per
    rule through the engines' statics telemetry (see
    :class:`repro.runtime.telemetry.StaticsEvent`), so an operator can
    see both what was autoproved and why something silently stayed
    serial.
    """
    analysis = analyse_rule(rule)
    name = rule.__name__ if isinstance(rule, type) else type(rule).__name__
    if analysis.verdict is Verdict.PROVEN_SAFE:
        return True, (
            f"rule {name} declares no parallel_safe but is interprocedurally "
            f"PROVEN_SAFE; autoproved for sharded execution"
        )
    return False, (
        f"rule {name} declares no parallel_safe and its body is "
        f"{analysis.verdict.value}; staying on the serial tier "
        f"({analysis.describe()})"
    )


def maybe_warn_parallel_unsafe(rule: Any) -> None:
    """Warn once per rule instance when a ``parallel_safe=True`` declaration
    contradicts a ``PROVEN_UNSAFE`` verdict.

    Called by the ``parallel``/``shm`` engines and the shm
    :class:`~repro.runtime.pool.WorkerPool` *before* any pool forks.  The
    warning is a :class:`RuntimeWarning` naming the rule and every unsafe
    finding; ``REPRO_STATICS_STRICT=1`` escalates it to a
    :class:`RuntimeError` so CI can refuse to shard such a rule at all.
    ``UNKNOWN`` verdicts (lambdas, source-less rules) never warn.
    """
    if not getattr(rule, "parallel_safe", True):
        return
    analysis = analyse_rule(rule)
    if analysis.verdict is not Verdict.PROVEN_UNSAFE:
        return
    message = (
        f"rule {type(rule).__name__} is declared parallel_safe=True but its "
        f"body is statically PROVEN_UNSAFE for sharded execution: "
        f"{analysis.describe()}.  Worker processes would observe fork-time "
        f"copies of the mutated state, so results could silently diverge "
        f"between the serial and sharded tiers; declare parallel_safe=False "
        f"(the engines then degrade byte-identically) or make the rule a "
        f"pure function of its view."
    )
    if strict_mode():
        raise RuntimeError(message)
    if _already_warned(rule):
        return
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _already_warned(rule: Any) -> bool:
    try:
        if rule in _WARNED_RULES:
            return True
        _WARNED_RULES.add(rule)
        return False
    except TypeError:  # non-weakref-able rule objects
        if id(rule) in _WARNED_RULE_IDS:
            return True
        _WARNED_RULE_IDS.add(id(rule))
        return False
