"""Call-graph resolution for the interprocedural purity analysis.

PR 6's purity prover was strictly intraprocedural: any rule whose
``update`` calls a helper function — however obviously pure — landed at
``UNKNOWN`` with a ``calls unanalysed global helper()`` finding.  This
module closes that gap with a *summary-based* call-graph analysis:

* **Resolution.**  A syntactic call site (``helper(...)``,
  ``module.helper(...)``, ``self.method(...)``) is resolved against the
  caller's ``__globals__`` (or, for ``self.*``, against the owning rule
  class) to a concrete pure-Python function.  Only *same-package*
  callees are resolved — the top-level package of the callee's
  ``__module__`` must match the caller's, or be the ``repro`` package
  itself — so third-party code (numpy, stdlib internals) is never pulled
  into the analysis; unresolvable call sites keep today's honest
  ``UNKNOWN``.
* **Summaries.**  Each resolved callee is analysed with the same
  bytecode + AST passes as the rule body itself, bottom-up: a call to a
  ``PROVEN_SAFE`` callee contributes no finding (a proven-safe body has
  no heap effect outside function-fresh objects, so its arguments are
  never mutated either); a ``PROVEN_UNSAFE`` callee makes the caller
  unsafe; an ``UNKNOWN`` callee keeps the caller undecided.  Summaries
  are memoised per ``(code object, owner class)`` in
  :data:`repro.statics.purity._SUMMARY_CACHE`.
* **Termination.**  The analysis walks the call graph depth-first with
  an explicit stack of in-flight code objects: re-entering a code object
  (direct or mutual recursion) bottoms the fixpoint at ``UNKNOWN``, and
  the walk is bounded at :data:`MAX_CALL_DEPTH` frames.  Summaries whose
  computation hit either boundary are *not* memoised — they depend on
  where the walk entered the graph, not only on the callee.

The dataflow direction is deliberately one-way: this module imports
:mod:`repro.statics.purity` helpers lazily inside methods (purity drives
the analysis and calls back into the resolver), and nothing here touches
:mod:`repro.local_model` — the import layering contract of the statics
package (see ``repro/statics/__init__.py``) is preserved.
"""

from __future__ import annotations

import types
from typing import TYPE_CHECKING, Any, FrozenSet, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.statics.purity import _FunctionScan

#: Bound on the depth of the interprocedural walk.  Rule bodies in this
#: reproduction are shallow (a rule calling a helper calling a helper);
#: anything deeper is more likely an analysis runaway than a real rule.
MAX_CALL_DEPTH = 8

#: Package whose helpers are always resolvable, regardless of where the
#: calling rule lives (test modules routinely define rules that call
#: catalogue helpers from ``repro.local_model.rules``).
HOME_PACKAGE = "repro"


def _top_package(function: Any) -> str:
    module = getattr(function, "__module__", None) or ""
    return module.split(".")[0]


def _same_package(caller: types.FunctionType, callee: types.FunctionType) -> bool:
    """Whether ``callee`` is fair game for interprocedural analysis.

    Same top-level package as the caller, or anywhere inside the
    reproduction's own :data:`HOME_PACKAGE`.  Everything else (stdlib,
    numpy, site-packages) stays unanalysed — their purity is a packaging
    question, not a rule-authoring one.
    """
    callee_root = _top_package(callee)
    if not callee_root:
        return False
    return callee_root == _top_package(caller) or callee_root == HOME_PACKAGE


def resolve_global(
    caller: types.FunctionType, name: str
) -> Optional[types.FunctionType]:
    """Resolve a bare-name call site against the caller's globals."""
    from repro.statics.purity import _unwrap_function

    candidate = getattr(caller, "__globals__", {}).get(name)
    if candidate is None:
        return None
    function = _unwrap_function(candidate)
    if function is None or not _same_package(caller, function):
        return None
    return function


def resolve_module_function(
    caller: types.FunctionType, module_name: str, attribute: str
) -> Optional[types.FunctionType]:
    """Resolve a ``module.helper(...)`` call site.

    ``module_name`` must be bound to a real module object in the
    caller's globals; the attribute is then resolved and subjected to
    the same same-package test as bare-name calls.
    """
    from repro.statics.purity import _unwrap_function

    module = getattr(caller, "__globals__", {}).get(module_name)
    if not isinstance(module, types.ModuleType):
        return None
    candidate = getattr(module, attribute, None)
    if candidate is None:
        return None
    function = _unwrap_function(candidate)
    if function is None or not _same_package(caller, function):
        return None
    return function


def resolve_class_method(
    owner: type, method_name: str
) -> Optional[types.FunctionType]:
    """Resolve a ``self.method(...)`` call site against the owning class.

    Only functions found on the class (or its bases) resolve — an
    instance attribute holding a callable (the ``FunctionRule``
    trampoline pattern) is per-instance state the class-level analysis
    cannot see, and stays ``UNKNOWN``.
    """
    from repro.statics.purity import _unwrap_function

    candidate = getattr(owner, method_name, None)
    if candidate is None:
        return None
    return _unwrap_function(candidate)


def _first_reason(reasons: Any) -> str:
    for reason in reasons:
        return str(reason)
    return "no recorded finding"


class InterproceduralContext:
    """State threaded through one interprocedural analysis walk.

    ``stack`` carries the code objects currently being analysed on this
    path (cycle detection); ``depth`` the number of call frames below
    the entry function; ``owner`` the class against which ``self.*``
    call sites resolve (``None`` for plain functions).  ``truncated``
    is set as soon as any judgement on this path hit the recursion or
    depth boundary — such results are path-dependent and must not be
    memoised as context-free summaries.
    """

    def __init__(
        self,
        function: types.FunctionType,
        owner: Optional[type] = None,
        depth: int = 0,
        stack: Optional[FrozenSet[types.CodeType]] = None,
    ) -> None:
        self.function = function
        self.owner = owner
        self.depth = depth
        self.stack: FrozenSet[types.CodeType] = (stack or frozenset()) | {
            function.__code__
        }
        self.truncated = False

    def child(
        self, callee: types.FunctionType, owner: Optional[type]
    ) -> "InterproceduralContext":
        return InterproceduralContext(
            callee, owner=owner, depth=self.depth + 1, stack=self.stack
        )

    def judge_call(
        self,
        scan: "_FunctionScan",
        label: str,
        target: Any,
        owner: Optional[type] = None,
    ) -> None:
        """Fold a resolved callee's purity summary into the caller's scan.

        ``label`` is the human-readable call-site spelling (``helper()``,
        ``self.method()``); ``owner`` the class for resolving the
        *callee's* own ``self.*`` calls when the callee is a method.
        """
        from repro.statics import purity

        function = purity._unwrap_function(target)
        if function is None:
            scan.flag_unknown(f"calls {label} (no analysable function body)")
            return
        if function.__code__ in self.stack:
            self.truncated = True
            scan.flag_unknown(
                f"calls {label} recursively (summary fixpoint bottoms at UNKNOWN)"
            )
            return
        if self.depth >= MAX_CALL_DEPTH:
            self.truncated = True
            scan.flag_unknown(
                f"calls {label} beyond the interprocedural depth bound "
                f"({MAX_CALL_DEPTH})"
            )
            return
        summary, truncated = purity._callee_summary(function, owner, self)
        if truncated:
            self.truncated = True
        if summary.verdict is purity.Verdict.PROVEN_UNSAFE:
            scan.flag_unsafe(
                f"calls {label}, itself impure ({_first_reason(summary.unsafe)})"
            )
        elif summary.verdict is purity.Verdict.UNKNOWN:
            scan.flag_unknown(
                f"calls {label}, itself undecided "
                f"({_first_reason(summary.unknown or summary.unsafe)})"
            )
        # PROVEN_SAFE callees contribute no finding: a proven-safe body
        # has no effect outside function-fresh objects, so it neither
        # mutates its arguments nor any captured state.
