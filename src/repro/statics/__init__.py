"""Static analysis over the engine stack's rules and contracts.

The five byte-identical engine tiers (see ``ROADMAP.md``) rest on
*declared* traits and repo-wide conventions: a rule author hand-sets
``parallel_safe``, the engines trust it, and "every consumer routes
through ``resolve_engine``" is enforced only by review.  This package
turns those conventions into machine-checked contracts:

* :mod:`repro.statics.purity` — an AST + bytecode pass over
  ``LocalRule.update`` / ``update_batch`` bodies classifying each rule as
  ``PROVEN_SAFE``, ``PROVEN_UNSAFE`` (closure-cell or global mutation,
  ``random``/``time``/I-O calls, writes to captured objects) or
  ``UNKNOWN``.  The analysis is *interprocedural*: same-package helper
  calls resolve through :mod:`repro.statics.callgraph` and fold the
  callee's own summary into the verdict.  The ``parallel`` and ``shm``
  tiers consult the cached verdict and emit a one-time
  :class:`RuntimeWarning` (escalated to an error under
  ``REPRO_STATICS_STRICT=1``) when a rule declared ``parallel_safe=True``
  is proven unsafe — *before* any pool forks; under
  ``REPRO_STATICS_AUTOPROVE=1`` an *undeclared* rule shards exactly when
  the proof goes through.
* :mod:`repro.statics.callgraph` — call-site resolution and the
  summary-walk context (cycle detection, depth bound) behind the
  interprocedural verdicts.
* :mod:`repro.statics.alphabets` — abstract interpretation of ``update``
  over a declared finite alphabet Σ, proving output closure
  (``proven-closed`` / ``proven-escapes`` / ``unknown``) and, when
  closed, the exact proven output alphabet.
* :mod:`repro.statics.tiers` — static tier-eligibility inference
  (table-compilable via the ``|Σ|^ball_size`` bound, batch-vectorisable,
  shardable, autoprove-shardable, fallback-only, closure verdicts),
  making silent slow-path fallbacks visible.
* :mod:`repro.statics.contracts` — a repo-wide lint over ``src/`` (and
  ``benchmarks/``) enforcing the engine-stack conventions, with an
  annotated allowlist (``.statics-allowlist``) for accepted findings.
* :mod:`repro.statics.cli` — ``python -m repro.statics`` with
  text/JSON/GitHub-annotation output, exiting non-zero on findings not
  covered by the allowlist (and on stale allowlist entries; ``--prune``
  rewrites them away).

Import layering: :mod:`~repro.statics.purity`,
:mod:`~repro.statics.callgraph`, :mod:`~repro.statics.alphabets` and
:mod:`~repro.statics.contracts` depend on nothing inside
:mod:`repro.local_model` (the engines import *them*), while
:mod:`~repro.statics.tiers` imports the engine module for its thresholds.
Submodules are therefore re-exported lazily — importing
``repro.statics.purity`` from the engine hot path must not drag the
engine module back in through this ``__init__``.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    "Verdict": "repro.statics.purity",
    "RuleAnalysis": "repro.statics.purity",
    "analyse_rule": "repro.statics.purity",
    "analyse_function": "repro.statics.purity",
    "maybe_warn_parallel_unsafe": "repro.statics.purity",
    "clear_analysis_cache": "repro.statics.purity",
    "strict_mode": "repro.statics.purity",
    "autoprove_mode": "repro.statics.purity",
    "autoprove_decision": "repro.statics.purity",
    "InterproceduralContext": "repro.statics.callgraph",
    "ClosureVerdict": "repro.statics.alphabets",
    "ClosureAnalysis": "repro.statics.alphabets",
    "analyse_closure": "repro.statics.alphabets",
    "clear_closure_cache": "repro.statics.alphabets",
    "TierEligibility": "repro.statics.tiers",
    "infer_tier_eligibility": "repro.statics.tiers",
    "discover_rule_classes": "repro.statics.tiers",
    "tier_report": "repro.statics.tiers",
    "closure_findings": "repro.statics.tiers",
    "Finding": "repro.statics.contracts",
    "run_contract_checks": "repro.statics.contracts",
    "load_allowlist": "repro.statics.contracts",
    "apply_allowlist": "repro.statics.contracts",
    "AllowlistError": "repro.statics.contracts",
    "main": "repro.statics.cli",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
