"""Flat integer indexing of toroidal grids — the fast-path substrate.

The dict-based simulator addresses nodes by coordinate tuples and rebuilds
every radius-``r`` ball with :meth:`ToroidalGrid.shift` on every node in
every round.  A :class:`GridIndexer` pays that cost exactly once: it maps
each node to a flat integer index (row-major, matching the order of
:meth:`ToroidalGrid.nodes`) and precomputes, per offset set, the table

    ``table[i][j]`` = flat index of ``shift(node_i, offsets[j])``

after which one rule application is pure list indexing.  The tables are
cached on the indexer, and indexers themselves are cached per grid via
:meth:`GridIndexer.for_grid`, so repeated phases and multi-round algorithms
share all precomputation.

Nothing about the LOCAL-model semantics changes: the tables encode the very
same balls, rows and power neighbourhoods as the tuple-based code paths, and
the equivalence tests assert byte-identical labellings on small grids.
"""

from __future__ import annotations

from functools import lru_cache
from operator import itemgetter
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

try:  # numpy backs the "array" engine tier; the other tiers never need it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

from repro.errors import SimulationError
from repro.grid.geometry import ball_offsets, l1_norm, linf_norm, offsets_within
from repro.grid.topology import Topology, _ColumnGetters, _dedup, topology_cache
from repro.grid.torus import Node, ToroidalGrid
from repro.utils.math import toroidal_difference

Offset = Tuple[int, ...]
IndexTable = Tuple[Tuple[int, ...], ...]
# One shell of a displacement-shell table: (distance, ((offset_index, displacement), ...)).
Shell = Tuple[int, Tuple[Tuple[int, Offset], ...]]


class GridIndexer(Topology):
    """Flat-index view of a :class:`ToroidalGrid` — the torus
    :class:`~repro.grid.topology.Topology` instance, with precomputed
    tables and the torus-specific extras (rows, shells, powers)."""

    def __init__(self, grid: ToroidalGrid):
        self._grid = grid
        self._nodes: Tuple[Node, ...] = tuple(grid.nodes())
        self._index: Dict[Node, int] = {
            node: position for position, node in enumerate(self._nodes)
        }
        self._offset_tables: Dict[Tuple[Offset, ...], IndexTable] = {}
        self._getter_tables: Dict[
            Tuple[Offset, ...], Tuple[Callable[[Sequence[Any]], Tuple[Any, ...]], ...]
        ] = {}
        self._row_tables: Dict[int, Tuple[Tuple[int, ...], ...]] = {}
        self._row_node_tables: Dict[int, Tuple[Tuple[Node, ...], ...]] = {}
        self._shell_tables: Dict[Tuple[int, str], Tuple[Shell, ...]] = {}
        self._node_tables: Dict[Tuple[int, str], Tuple[Tuple[int, ...], ...]] = {}
        self._array_tables: Dict[Tuple[Offset, ...], Any] = {}

    @classmethod
    def for_grid(cls, grid: ToroidalGrid) -> "GridIndexer":
        """Return the (cached) indexer of ``grid``.

        Grids hash by their side lengths and the benchmark sweeps reuse a
        handful of grids across many phases, so indexers live in the shared
        bounded :class:`~repro.grid.topology.TopologyCache` (LRU, one
        eviction at a time) alongside the non-torus topology instances.
        """
        return topology_cache().get_or_create(
            ("torus", grid), lambda: cls(grid)
        )

    def __reduce__(self):
        """Pickle-cheap export: ship only the grid, never the tables.

        A warmed indexer holds megabytes of ball/getter/array tables; the
        ``parallel`` engine tier (and any ``spawn``-based worker) must be
        able to ship an indexer without serialising them.  Unpickling goes
        through :meth:`for_grid`, so a worker process that already indexed
        the same grid reuses its cached instance and tables are rebuilt
        lazily only where actually touched.
        """
        return (GridIndexer.for_grid, (self._grid,))

    # ------------------------------------------------------------------ #
    # Node <-> index conversion
    # ------------------------------------------------------------------ #

    @property
    def grid(self) -> ToroidalGrid:
        """The underlying grid."""
        return self._grid

    @property
    def dimension(self) -> int:
        """The grid dimension (axes of the torus)."""
        return self._grid.dimension

    @property
    def node_count(self) -> int:
        """Number of nodes (and length of every value list)."""
        return len(self._nodes)

    @property
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes in flat-index (row-major) order."""
        return self._nodes

    def index_of(self, node: Node) -> int:
        """Return the flat index of ``node`` (KeyError if not on the grid)."""
        return self._index[node]

    def node_at(self, index: int) -> Node:
        """Return the node with the given flat index."""
        return self._nodes[index]

    def to_values(self, mapping: Mapping[Node, Any]) -> List[Any]:
        """Read a node-keyed mapping into a flat value list (index order).

        Raises ``KeyError`` naming the first node without an entry — a total
        labelling is required, exactly as by the dict-based simulator.
        """
        try:
            return [mapping[node] for node in self._nodes]
        except KeyError:
            for node in self._nodes:
                if node not in mapping:
                    raise KeyError(
                        f"labelling is missing an entry for node {node}"
                    ) from None
            raise

    def to_mapping(self, values: List[Any]) -> Dict[Node, Any]:
        """Materialise a flat value list as a node-keyed dict."""
        return dict(zip(self._nodes, values))

    # ------------------------------------------------------------------ #
    # Precomputed tables
    # ------------------------------------------------------------------ #

    def offset_table(self, offsets: Tuple[Offset, ...]) -> IndexTable:
        """Return (and cache) the target-index table of an offset tuple.

        ``table[i][j]`` is the flat index of the node reached from node ``i``
        by ``offsets[j]``.  Offsets that wrap onto the same node on a small
        torus are *not* deduplicated, matching the view semantics of
        :func:`repro.local_model.views.collect_label_view`.
        """
        table = self._offset_tables.get(offsets)
        if table is None:
            shift = self._grid.shift
            index = self._index
            table = tuple(
                tuple(index[shift(node, offset)] for offset in offsets)
                for node in self._nodes
            )
            self._offset_tables[offsets] = table
        return table

    def view_keys(self, radius: int, norm: str = "l1") -> Tuple[Offset, ...]:
        """The view keys of the torus ball: its displacement offsets."""
        return ball_offsets(self._grid.dimension, radius, norm)

    def ball_table(
        self, radius: int, norm: str = "l1"
    ) -> Tuple[Tuple[Offset, ...], IndexTable]:
        """Return ``(offsets, table)`` for the radius-``radius`` ball."""
        offsets = ball_offsets(self._grid.dimension, radius, norm)
        return offsets, self.offset_table(offsets)

    def ball_getters(
        self, radius: int, norm: str = "l1"
    ) -> Tuple[Tuple[Offset, ...], Tuple[Callable[[Sequence[Any]], Tuple[Any, ...]], ...]]:
        """Return ``(offsets, getters)`` where ``getters[i](values)`` yields
        the ball values of node ``i`` as a tuple (in ball-offset order).

        The getters are C-level :func:`operator.itemgetter` objects, the
        fastest way to gather a fixed index set from a flat value list —
        this is what the engine's inner loop runs on.
        """
        offsets = ball_offsets(self._grid.dimension, radius, norm)
        getters = self._getter_tables.get(offsets)
        if getters is None:
            table = self.offset_table(offsets)
            if len(offsets) == 1:
                # itemgetter with one key returns a bare value, not a
                # 1-tuple; share one gather over the index column instead of
                # caching a closure per node.
                getters = _ColumnGetters(table)
            else:
                getters = tuple(itemgetter(*row) for row in table)
            self._getter_tables[offsets] = getters
        return offsets, getters

    def offset_index_array(self, offsets: Tuple[Offset, ...]):
        """The target-index table of an offset tuple as an ``int32`` array.

        ``array[i, j]`` is the flat index of the node reached from node ``i``
        by ``offsets[j]`` — the :meth:`offset_table` rows materialised as a
        ``(node_count, len(offsets))`` numpy gather matrix, cached alongside
        the tuple tables.  Requires numpy (the "array" engine tier).
        """
        if _np is None:  # pragma: no cover - exercised only on numpy-less installs
            raise SimulationError(
                "offset_index_array requires numpy, which is not installed"
            )
        array = self._array_tables.get(offsets)
        if array is None:
            array = _np.asarray(self.offset_table(offsets), dtype=_np.int32)
            array.setflags(write=False)
            self._array_tables[offsets] = array
        return array

    def ball_index_array(self, radius: int, norm: str = "l1"):
        """Return ``(offsets, array)`` for the radius-``radius`` ball.

        The array is the :meth:`ball_table` index table as a cached
        ``(node_count, ball_size)`` ``int32`` gather matrix — one fancy
        index ``values[array]`` gathers every node's ball in one shot.
        """
        offsets = ball_offsets(self._grid.dimension, radius, norm)
        return offsets, self.offset_index_array(offsets)

    def warm_ball_tables(self, specs: Iterable[Tuple[int, str]]) -> None:
        """Materialise ball tables and getters for ``(radius, norm)`` specs.

        The table handoff of the persistent worker-pool runtime
        (:mod:`repro.runtime`): the pool warms every registered rule's
        tables *before* forking, so all workers inherit one shared copy
        through copy-on-write memory instead of each lazily rebuilding its
        own — on a 1024-sided torus that is hundreds of megabytes times the
        worker count.  Idempotent and cheap when already warm.
        """
        for radius, norm in specs:
            self.ball_table(radius, norm)
            self.ball_getters(radius, norm)

    def ball_node_table(
        self, radius: int, norm: str = "l1"
    ) -> Tuple[Tuple[int, ...], ...]:
        """Per-node deduplicated ball member indices (in ball-offset order).

        This is the indexed counterpart of :meth:`ToroidalGrid.ball`: on a
        small torus where several offsets wrap onto the same node, each
        member appears once, at its first occurrence.
        """
        key = (radius, norm)
        node_table = self._node_tables.get(key)
        if node_table is None:
            _, table = self.ball_table(radius, norm)
            node_table = tuple(_dedup(row) for row in table)
            self._node_tables[key] = node_table
        return node_table

    def neighbour_table(self) -> IndexTable:
        """Per-node indices of the ``2d`` grid neighbours (direction order)."""
        offsets = tuple(
            tuple(step if i == axis else 0 for i in range(self._grid.dimension))
            for axis in range(self._grid.dimension)
            for step in (1, -1)
        )
        return self.offset_table(offsets)

    def rows(self, axis: int) -> Tuple[Tuple[int, ...], ...]:
        """Rows along ``axis`` as tuples of flat indices.

        Rows are produced in the same order, and with the same internal node
        order, as :meth:`ToroidalGrid.rows`.
        """
        table = self._row_tables.get(axis)
        if table is None:
            table = tuple(
                tuple(self._index[node] for node in row)
                for row in self._grid.rows(axis)
            )
            self._row_tables[axis] = table
        return table

    def row_node_table(self, axis: int) -> Tuple[Tuple[Node, ...], ...]:
        """Rows along ``axis`` as tuples of *nodes* (the axis-row gather table).

        Same row order and internal node order as :meth:`ToroidalGrid.rows`,
        materialised once per axis so row-based consumers (ruling sets,
        j,k-independent sets) never rebuild the row lists.
        """
        table = self._row_node_tables.get(axis)
        if table is None:
            nodes = self._nodes
            table = tuple(
                tuple(nodes[i] for i in row) for row in self.rows(axis)
            )
            self._row_node_tables[axis] = table
        return table

    def bfs_distances(self, sources: Iterable[Node]) -> List[int]:
        """Multi-source BFS hop distances over the precomputed neighbour table.

        Returns a flat list (index order) with the distance of every node to
        its nearest source.  On a toroidal grid every node is reachable, so
        the result is total.  Raises ``ValueError`` on an empty source set
        and ``KeyError`` on a source that is not a grid node.
        """
        table = self.neighbour_table()
        distance = [-1] * len(self._nodes)
        frontier: List[int] = []
        for node in sources:
            position = self._index[node]
            if distance[position] < 0:
                distance[position] = 0
                frontier.append(position)
        if not frontier:
            raise ValueError("bfs_distances needs at least one source node")
        depth = 0
        while frontier:
            depth += 1
            next_frontier: List[int] = []
            for position in frontier:
                for target in table[position]:
                    if distance[target] < 0:
                        distance[target] = depth
                        next_frontier.append(target)
            frontier = next_frontier
        return distance

    def displacement_shells(
        self, radius: int, norm: str = "l1"
    ) -> Tuple[Shell, ...]:
        """Ball offsets grouped into shells of increasing *toroidal* distance.

        Each shell is ``(distance, ((offset_index, displacement), ...))``
        where ``offset_index`` refers to the offset order of
        :meth:`ball_table` for the same radius/norm and ``displacement`` is
        the minimal signed displacement the offset realises on this torus
        (``ToroidalGrid.displacement`` of the reached node about the start
        node — on a small torus this can be shorter than the raw offset).
        Shells are sorted by distance; within a shell the entries keep the
        ball-offset order.  Nearest-anchor searches scan shells in order and
        stop at the first hit.
        """
        key = (radius, norm)
        shells = self._shell_tables.get(key)
        if shells is None:
            measure = l1_norm if norm == "l1" else linf_norm
            sides = self._grid.sides
            by_distance: Dict[int, List[Tuple[int, Offset]]] = {}
            for position, offset in enumerate(
                ball_offsets(self._grid.dimension, radius, norm)
            ):
                displacement = tuple(
                    toroidal_difference(0, component, side)
                    for component, side in zip(offset, sides)
                )
                by_distance.setdefault(measure(displacement), []).append(
                    (position, displacement)
                )
            shells = tuple(
                (distance, tuple(by_distance[distance]))
                for distance in sorted(by_distance)
            )
            self._shell_tables[key] = shells
        return shells

    def power_adjacency(self, k: int, norm: str = "l1") -> Dict[Node, List[Node]]:
        """Adjacency lists of the grid power ``G^(k)`` / ``G^[k]``.

        Produces exactly the lists of
        :meth:`repro.grid.power.PowerGraph.adjacency` (same neighbour order,
        wrap-around duplicates removed) from the precomputed tables instead
        of per-node ``shift`` calls.
        """
        offsets = tuple(offsets_within(self._grid.dimension, k, norm))
        table = self.offset_table(offsets)
        nodes = self._nodes
        adjacency: Dict[Node, List[Node]] = {}
        for position, node in enumerate(nodes):
            seen = {position}
            neighbours: List[Node] = []
            for target in table[position]:
                if target not in seen:
                    seen.add(target)
                    neighbours.append(nodes[target])
            adjacency[node] = neighbours
        return adjacency


# --------------------------------------------------------------------- #
# One-dimensional (cycle) tables
#
# The Section 4 machinery works on directed cycles, which have no grid to
# index; their tables depend only on the cycle length, so they are cached
# at module level and shared across problems and instances.
# --------------------------------------------------------------------- #


@lru_cache(maxsize=512)
def cyclic_window_table(length: int, radius: int) -> Tuple[Tuple[int, ...], ...]:
    """Per-position index tuples of the cyclic radius-``radius`` windows.

    ``table[p]`` lists the ``2 * radius + 1`` positions of the window
    centred at ``p`` on a cycle of ``length`` nodes, predecessors first —
    the gather pattern of :meth:`repro.cycles.lcl1d.CycleLCL.window_at`.
    """
    if length <= 0:
        raise ValueError("cycle length must be positive")
    if radius < 0:
        raise ValueError("window radius must be non-negative")
    span = range(-radius, radius + 1)
    return tuple(
        tuple((position + offset) % length for offset in span)
        for position in range(length)
    )


@lru_cache(maxsize=512)
def cyclic_power_pattern(length: int, spacing: int) -> Tuple[Tuple[int, ...], ...]:
    """Neighbour positions in the ``spacing``-th power of a ``length``-cycle.

    ``pattern[p]`` lists the positions within ``spacing`` hops of ``p``
    (excluding ``p`` itself) in the order ``+1, -1, +2, -2, ...`` with
    wrap-around duplicates removed at their first occurrence — exactly the
    adjacency the per-row ruling sets and the cycle synthesis build, shared
    by every row/cycle of the same length.
    """
    if length <= 0:
        raise ValueError("cycle length must be positive")
    if spacing < 0:
        raise ValueError("spacing must be non-negative")
    pattern: List[Tuple[int, ...]] = []
    for position in range(length):
        seen = {position}
        neighbours: List[int] = []
        for delta in range(1, spacing + 1):
            for candidate in ((position + delta) % length, (position - delta) % length):
                if candidate not in seen:
                    seen.add(candidate)
                    neighbours.append(candidate)
        pattern.append(tuple(neighbours))
    return tuple(pattern)


