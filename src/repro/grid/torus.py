"""Toroidal, consistently oriented ``d``-dimensional grid graphs.

This module implements the input graphs of the paper: the node set is
``[n_1] x ... x [n_d]``, two nodes are adjacent when they differ by one in
exactly one coordinate (modulo the side length), and every edge carries a
consistent orientation towards the larger coordinate.  Each node knows, for
every incident edge, which axis it belongs to and whether it points in the
positive ("north"/"east") or negative direction — but nodes do *not* know
their absolute coordinates.

The library uses coordinate tuples directly as node objects.  This keeps the
simulator honest: algorithms are only ever handed *relative* information
(views, displacements, identifiers), never the coordinates themselves.

Edges are identified by the pair ``(node, axis)``, denoting the edge from
``node`` to its positive-direction neighbour along ``axis``.  This gives each
edge exactly one canonical key, which is convenient for edge labellings
(edge colourings, orientations).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import InvalidGridError
from repro.grid.geometry import ball_offsets
from repro.utils.math import toroidal_difference, toroidal_distance

Node = Tuple[int, ...]
EdgeKey = Tuple[Node, int]


@dataclass(frozen=True, order=True)
class Direction:
    """An oriented axis direction, e.g. "east" = axis 0, step +1.

    Attributes
    ----------
    axis:
        Index of the coordinate that changes when moving in this direction.
    step:
        Either ``+1`` (towards larger coordinates) or ``-1``.
    """

    axis: int
    step: int

    def opposite(self) -> "Direction":
        """Return the direction pointing the other way along the same axis."""
        return Direction(self.axis, -self.step)

    @property
    def name(self) -> str:
        """Human-readable name; uses compass names in two dimensions."""
        compass = {(0, 1): "east", (0, -1): "west", (1, 1): "north", (1, -1): "south"}
        if (self.axis, self.step) in compass:
            return compass[(self.axis, self.step)]
        sign = "+" if self.step > 0 else "-"
        return f"axis{self.axis}{sign}"


# Convenient two-dimensional constants (axis 0 = x = east/west, axis 1 = y).
EAST = Direction(0, 1)
WEST = Direction(0, -1)
NORTH = Direction(1, 1)
SOUTH = Direction(1, -1)


def edge_key(node: Node, axis: int) -> EdgeKey:
    """Return the canonical key of the edge leaving ``node`` along ``+axis``."""
    return (node, axis)


def edge_endpoints(grid: "ToroidalGrid", edge: EdgeKey) -> Tuple[Node, Node]:
    """Return the two endpoints ``(tail, head)`` of an edge key.

    The orientation is the grid's consistent orientation: the head is the
    endpoint with the larger coordinate along the edge's axis.
    """
    node, axis = edge
    return node, grid.step(node, Direction(axis, 1))


class ToroidalGrid:
    """A ``d``-dimensional toroidal grid with a consistent orientation."""

    def __init__(self, sides: Sequence[int]):
        sides = tuple(int(side) for side in sides)
        if not sides:
            raise InvalidGridError("a grid needs at least one dimension")
        if any(side < 3 for side in sides):
            raise InvalidGridError(
                f"all side lengths must be at least 3 to obtain a simple graph, got {sides}"
            )
        self._sides = sides
        self._dimension = len(sides)
        self._directions = tuple(
            Direction(axis, step)
            for axis in range(self._dimension)
            for step in (1, -1)
        )

    # ------------------------------------------------------------------ #
    # Basic structure
    # ------------------------------------------------------------------ #

    @classmethod
    def square(cls, n: int, dimension: int = 2) -> "ToroidalGrid":
        """Build the ``n x n x ... x n`` torus with the given dimension."""
        if dimension <= 0:
            raise InvalidGridError("dimension must be positive")
        return cls((n,) * dimension)

    @property
    def sides(self) -> Tuple[int, ...]:
        """Side length of the torus along each axis."""
        return self._sides

    @property
    def dimension(self) -> int:
        """Number of coordinates (``d`` in the paper)."""
        return self._dimension

    @property
    def node_count(self) -> int:
        """Total number of nodes, ``n_1 * ... * n_d``."""
        count = 1
        for side in self._sides:
            count *= side
        return count

    @property
    def edge_count(self) -> int:
        """Total number of edges, ``d * node_count`` on a torus."""
        return self._dimension * self.node_count

    @property
    def degree(self) -> int:
        """Degree of every node (``2d`` on a torus with all sides >= 3)."""
        return 2 * self._dimension

    def directions(self) -> Tuple[Direction, ...]:
        """All ``2d`` oriented directions, positive direction first per axis."""
        return self._directions

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes in row-major order."""
        return itertools.product(*(range(side) for side in self._sides))

    def contains(self, node: Node) -> bool:
        """Return True if ``node`` is a valid coordinate tuple of this grid."""
        if len(node) != self._dimension:
            return False
        return all(0 <= coordinate < side for coordinate, side in zip(node, self._sides))

    # ------------------------------------------------------------------ #
    # Movement and adjacency
    # ------------------------------------------------------------------ #

    def wrap(self, coordinates: Sequence[int]) -> Node:
        """Reduce arbitrary integer coordinates modulo the side lengths."""
        return tuple(coordinate % side for coordinate, side in zip(coordinates, self._sides))

    def shift(self, node: Node, offset: Sequence[int]) -> Node:
        """Return the node reached from ``node`` by the displacement ``offset``."""
        return tuple(
            (coordinate + delta) % side
            for coordinate, delta, side in zip(node, offset, self._sides)
        )

    def step(self, node: Node, direction: Direction) -> Node:
        """Return the neighbour of ``node`` in the given direction."""
        coordinates = list(node)
        axis = direction.axis
        coordinates[axis] = (coordinates[axis] + direction.step) % self._sides[axis]
        return tuple(coordinates)

    def neighbours(self, node: Node) -> List[Tuple[Direction, Node]]:
        """Return the ``2d`` neighbours of ``node`` together with directions."""
        return [(direction, self.step(node, direction)) for direction in self._directions]

    def neighbour_nodes(self, node: Node) -> List[Node]:
        """Return the ``2d`` neighbours of ``node`` (nodes only)."""
        return [self.step(node, direction) for direction in self._directions]

    def are_adjacent(self, u: Node, v: Node) -> bool:
        """Return True if ``u`` and ``v`` share a grid edge."""
        return self.l1_distance(u, v) == 1

    # ------------------------------------------------------------------ #
    # Distances and balls
    # ------------------------------------------------------------------ #

    def displacement(self, u: Node, v: Node) -> Tuple[int, ...]:
        """Return the minimal signed displacement taking ``v`` to ``u``.

        Each component lies in ``(-n_i/2, n_i/2]``.  Two adjacent nodes can
        compute this about each other without coordinates; the library uses
        it to implement relative (Voronoi) coordinates.
        """
        return tuple(
            toroidal_difference(a, b, side)
            for a, b, side in zip(u, v, self._sides)
        )

    def l1_distance(self, u: Node, v: Node) -> int:
        """Graph (hop) distance between ``u`` and ``v``."""
        return sum(
            toroidal_distance(a, b, side)
            for a, b, side in zip(u, v, self._sides)
        )

    def linf_distance(self, u: Node, v: Node) -> int:
        """L-infinity distance between ``u`` and ``v`` (used by ``G^[k]``)."""
        return max(
            toroidal_distance(a, b, side)
            for a, b, side in zip(u, v, self._sides)
        )

    def ball(self, node: Node, radius: int, norm: str = "l1") -> List[Node]:
        """Return all nodes within ``radius`` of ``node`` in the given norm.

        Note that on a small torus distinct offsets may wrap onto the same
        node; duplicates are removed.
        """
        seen = set()
        result = []
        for offset in ball_offsets(self._dimension, radius, norm):
            target = self.shift(node, offset)
            if target not in seen:
                seen.add(target)
                result.append(target)
        return result

    # ------------------------------------------------------------------ #
    # Edges and rows
    # ------------------------------------------------------------------ #

    def edges(self) -> Iterator[EdgeKey]:
        """Iterate over all edges using their canonical ``(node, axis)`` keys."""
        for node in self.nodes():
            for axis in range(self._dimension):
                yield (node, axis)

    def incident_edges(self, node: Node) -> List[EdgeKey]:
        """Return the ``2d`` edges incident to ``node``.

        For each axis this is the outgoing edge ``(node, axis)`` and the
        incoming edge ``(negative neighbour, axis)``.
        """
        edges = []
        for axis in range(self._dimension):
            edges.append((node, axis))
            edges.append((self.step(node, Direction(axis, -1)), axis))
        return edges

    def edge_between(self, u: Node, v: Node) -> EdgeKey:
        """Return the canonical key of the edge joining adjacent nodes ``u, v``."""
        if not self.are_adjacent(u, v):
            raise InvalidGridError(f"nodes {u} and {v} are not adjacent")
        displacement = self.displacement(v, u)
        axis = next(i for i, delta in enumerate(displacement) if delta != 0)
        if displacement[axis] == 1:
            return (u, axis)
        return (v, axis)

    def rows(self, axis: int) -> Iterator[List[Node]]:
        """Iterate over the rows of the grid along ``axis``.

        A row is the cyclic sequence of nodes obtained by fixing every other
        coordinate and letting the ``axis`` coordinate run from 0 to
        ``n_axis - 1``.  Rows are the "q-directional rows" of Section 10.
        """
        if not 0 <= axis < self._dimension:
            raise InvalidGridError(f"axis {axis} out of range for dimension {self._dimension}")
        other_ranges = [
            range(side) for i, side in enumerate(self._sides) if i != axis
        ]
        for fixed in itertools.product(*other_ranges):
            row = []
            for position in range(self._sides[axis]):
                coordinates = list(fixed)
                coordinates.insert(axis, position)
                row.append(tuple(coordinates))
            yield row

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        return f"ToroidalGrid(sides={self._sides})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ToroidalGrid) and other.sides == self._sides

    def __hash__(self) -> int:
        return hash(("ToroidalGrid", self._sides))


class RectangularGrid:
    """A non-toroidal (bounded) 2-dimensional grid.

    The paper uses bounded grids in two places: the Naor–Stockmeyer
    undecidability discussion (Section 6) and the corner-coordination problem
    of Appendix A.3, where degree-2 nodes ("corners") and degree-3 nodes
    exist.  Only the features required there are implemented.
    """

    def __init__(self, width: int, height: int):
        if width < 2 or height < 2:
            raise InvalidGridError("a rectangular grid needs width and height at least 2")
        self.width = int(width)
        self.height = int(height)

    @property
    def node_count(self) -> int:
        """Total number of nodes."""
        return self.width * self.height

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes in row-major order."""
        return itertools.product(range(self.width), range(self.height))

    def contains(self, node: Node) -> bool:
        """Return True if the coordinates lie inside the rectangle."""
        x, y = node
        return 0 <= x < self.width and 0 <= y < self.height

    def neighbour_nodes(self, node: Node) -> List[Node]:
        """Return the (2 to 4) neighbours of ``node``."""
        x, y = node
        candidates = [(x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)]
        return [candidate for candidate in candidates if self.contains(candidate)]

    def degree(self, node: Node) -> int:
        """Return the degree of ``node`` (2 at corners, 3 on borders, 4 inside)."""
        return len(self.neighbour_nodes(node))

    def corners(self) -> List[Node]:
        """Return the four degree-2 corner nodes."""
        return [
            (0, 0),
            (0, self.height - 1),
            (self.width - 1, 0),
            (self.width - 1, self.height - 1),
        ]

    def l1_distance(self, u: Node, v: Node) -> int:
        """Graph distance between two nodes (no wrap-around)."""
        return abs(u[0] - v[0]) + abs(u[1] - v[1])

    def ball(self, node: Node, radius: int) -> List[Node]:
        """Return all nodes within graph distance ``radius`` of ``node``."""
        result = []
        x, y = node
        for dx in range(-radius, radius + 1):
            remaining = radius - abs(dx)
            for dy in range(-remaining, remaining + 1):
                candidate = (x + dx, y + dy)
                if self.contains(candidate):
                    result.append(candidate)
        return result

    def __repr__(self) -> str:
        return f"RectangularGrid(width={self.width}, height={self.height})"


def adjacency_map(grid: ToroidalGrid) -> Dict[Node, List[Node]]:
    """Materialise the adjacency lists of a toroidal grid.

    Useful for feeding the grid to generic graph routines (colour reduction,
    MIS by colour classes) that do not care about orientation.
    """
    return {node: grid.neighbour_nodes(node) for node in grid.nodes()}
