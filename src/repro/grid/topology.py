"""Topology-generic neighbourhood substrate behind the engine tiers.

The paper's classification arguments range over cycles, trees and
bounded-degree graphs, not just toroidal grids — and the engine tiers never
actually needed a torus.  What the ``indexed``/``array``/``parallel``/``shm``
tiers consume is a handful of flat integer tables: nodes in a fixed order,
per-node ball member indices of a fixed width, and numpy gather matrices
over them.  This module names that contract — the :class:`Topology`
protocol — and provides the non-torus instances:

* :class:`DirectedCycleTopology` — a consistently oriented cycle; view keys
  are signed hop deltas ``-r .. +r`` along the orientation.
* :class:`TreeTopology` — a finite tree built from a parent vector (with
  ``path``/``star``/``random`` constructors).
* :class:`GraphTopology` — any finite bounded-degree simple graph given by
  adjacency lists.

:class:`repro.grid.indexer.GridIndexer` is the torus instance of the same
protocol; every engine tier accepts any :class:`Topology` and runs
unchanged, byte-identical to :func:`apply_rule_dict` (the per-node dict
reference that serves as the equivalence oracle for these families).

Irregular balls
---------------

Trees and irregular graphs have per-node-varying ball sizes, while the
engines' tables, itemgetter gathers and compiled lookup keys are
rectangular.  The protocol squares that circle by *padding with self*:
every ball row has the width of the largest ball, and slots beyond a
node's actual ball repeat the node's own flat index.  A view therefore
always has the same keys on every node — absent neighbours simply read as
the node's own label — which keeps every tier (including ``|Σ|^ball``
lookup-table compilation and shared-memory chunk halos) working with no
per-tier special cases.  Rules that care can compare slot values against
``view`` slot 0 (always the node itself for the slot-keyed families); the
deduplicated :meth:`Topology.ball_node_table` drops the padding entirely.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Sequence as SequenceABC
from operator import itemgetter
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

try:  # numpy backs the "array" engine tier; the other tiers never need it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

from repro.errors import InvalidProblemError, SimulationError

#: A view key: a torus displacement offset, a signed cycle delta, or a
#: ball-slot position — whatever the topology's ``view_keys`` declares.
ViewKey = Any
IndexTable = Tuple[Tuple[int, ...], ...]


# --------------------------------------------------------------------- #
# The shared bounded instance cache
# --------------------------------------------------------------------- #


class TopologyCache:
    """Bounded, clearable LRU cache of topology/indexer instances.

    Replaces the old ``GridIndexer._instances`` dict, which never evicted
    until it hit 64 entries and then dropped *everything at once* — a
    benchmark-style sweep over many grids alternately thrashed the cache
    empty and grew it back.  This cache evicts one least-recently-used
    entry at a time, so a sweep holds exactly its working set and a
    long-running process never exceeds ``maxsize`` instances (each of
    which can pin megabytes of warmed ball tables).
    """

    def __init__(self, maxsize: int = 64):
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be positive, got {maxsize}")
        self._maxsize = maxsize
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()

    @property
    def maxsize(self) -> int:
        """Largest number of instances retained at once."""
        return self._maxsize

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def get_or_create(self, key: Any, factory: Callable[[], Any]) -> Any:
        """Return the cached instance under ``key``, building it if absent.

        A hit refreshes the entry's recency; a miss builds via ``factory``
        and evicts the least-recently-used entries down to ``maxsize``.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        entry = factory()
        self._entries[key] = entry
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
        return entry

    def clear(self) -> None:
        """Drop every cached instance (their tables become collectable)."""
        self._entries.clear()


#: The process-wide instance cache shared by :meth:`GridIndexer.for_grid`
#: and the topology families' ``shared``/``random`` constructors.
_SHARED_INSTANCES = TopologyCache()


def topology_cache() -> TopologyCache:
    """The shared per-process instance cache (torus indexers + topologies)."""
    return _SHARED_INSTANCES


def clear_topology_cache() -> None:
    """Evict every cached indexer/topology instance (test isolation hook)."""
    _SHARED_INSTANCES.clear()


# --------------------------------------------------------------------- #
# The protocol
# --------------------------------------------------------------------- #


class Topology(ABC):
    """The neighbourhood substrate every engine tier executes against.

    A topology enumerates its nodes in a fixed flat order, converts
    node-keyed mappings to flat value lists and back, and exports its
    radius-``r`` balls as rectangular integer tables: per node, the flat
    indices of the ball members under the fixed ``view_keys`` of the
    ``(radius, norm)`` spec.  Everything the five tiers consume — the
    ``indexed`` tier's itemgetter gathers, the ``array`` tier's numpy
    gather matrices and ``|Σ|^ball`` lookup keys, the ``parallel``/``shm``
    tiers' chunk plans and halos — derives from these tables, so a new
    topology reaches every tier by implementing this protocol alone.
    """

    @property
    @abstractmethod
    def dimension(self) -> int:
        """Dimensionality charged by ``LocalRule.round_cost`` for linf views."""

    @property
    @abstractmethod
    def node_count(self) -> int:
        """Number of nodes (and length of every flat value list)."""

    @property
    @abstractmethod
    def nodes(self) -> Tuple[Any, ...]:
        """All nodes in flat-index order."""

    @property
    def grid(self) -> Any:
        """The backing structural object (the topology itself by default).

        :class:`~repro.grid.indexer.GridIndexer` overrides this to return
        its :class:`~repro.grid.torus.ToroidalGrid`; engines only rely on
        the returned object exposing ``dimension`` and ``node_count``.
        """
        return self

    @abstractmethod
    def index_of(self, node: Any) -> int:
        """Flat index of ``node`` (``KeyError`` if not in the topology)."""

    @abstractmethod
    def node_at(self, index: int) -> Any:
        """The node with the given flat index."""

    @abstractmethod
    def to_values(self, mapping: Mapping[Any, Any]) -> List[Any]:
        """Read a node-keyed mapping into a flat value list (index order)."""

    @abstractmethod
    def to_mapping(self, values: List[Any]) -> Dict[Any, Any]:
        """Materialise a flat value list as a node-keyed dict."""

    @abstractmethod
    def view_keys(self, radius: int, norm: str = "l1") -> Tuple[ViewKey, ...]:
        """The fixed view keys of the ``(radius, norm)`` ball, in table order.

        Every node's view has exactly these keys; ``len(view_keys)`` is the
        ball-table width (and the exponent of ``|Σ|^ball`` lookup-table
        compilation).
        """

    @abstractmethod
    def ball_table(
        self, radius: int, norm: str = "l1"
    ) -> Tuple[Tuple[ViewKey, ...], IndexTable]:
        """``(keys, table)``: per-node ball member indices under ``keys``."""

    @abstractmethod
    def ball_getters(
        self, radius: int, norm: str = "l1"
    ) -> Tuple[Tuple[ViewKey, ...], Sequence[Callable[[Sequence[Any]], Tuple[Any, ...]]]]:
        """``(keys, getters)`` where ``getters[i](values)`` gathers node
        ``i``'s ball values as a tuple in key order."""

    @abstractmethod
    def ball_index_array(self, radius: int, norm: str = "l1"):
        """``(keys, array)``: the ball table as a read-only ``int32`` numpy
        gather matrix of shape ``(node_count, len(keys))``."""

    @abstractmethod
    def ball_node_table(
        self, radius: int, norm: str = "l1"
    ) -> Tuple[Tuple[int, ...], ...]:
        """Per-node deduplicated ball member indices (padding removed)."""

    def warm_ball_tables(self, specs: Iterable[Tuple[int, str]]) -> None:
        """Materialise tables and getters for ``(radius, norm)`` specs.

        The pre-fork handoff of the persistent worker-pool runtime: warmed
        tables are inherited by every worker through copy-on-write memory.
        Idempotent and cheap when already warm.
        """
        for radius, norm in specs:
            self.ball_table(radius, norm)
            self.ball_getters(radius, norm)


# --------------------------------------------------------------------- #
# Generic table machinery
# --------------------------------------------------------------------- #


class BaseTopology(Topology):
    """Table caching and padding machinery shared by the non-torus families.

    Subclasses provide the structure: :meth:`_compute_ball_row` returns one
    node's *unpadded* ball member indices in deterministic order (self
    first), and :meth:`_view_keys_for` names the keys of a width-``w``
    table.  Everything else — rectangular padding with the node's own
    index, itemgetter/getter construction, numpy export, deduplication,
    caching per ``(radius, norm)`` spec — is implemented here once, so a
    new family is a page of code, not a re-implementation of the engine
    contract.
    """

    def __init__(self, nodes: Tuple[Any, ...]):
        self._nodes = nodes
        self._index: Dict[Any, int] = {
            node: position for position, node in enumerate(nodes)
        }
        self._plans: Dict[Tuple[int, str], Tuple[Tuple[ViewKey, ...], IndexTable]] = {}
        self._getter_tables: Dict[Tuple[int, str], Any] = {}
        self._array_tables: Dict[Tuple[int, str], Any] = {}
        self._node_tables: Dict[Tuple[int, str], Tuple[Tuple[int, ...], ...]] = {}

    # -- structure hooks ----------------------------------------------- #

    @abstractmethod
    def _compute_ball_row(self, index: int, radius: int) -> Tuple[int, ...]:
        """Unpadded ball member indices of node ``index`` (self first)."""

    @abstractmethod
    def _view_keys_for(self, radius: int, width: int) -> Tuple[ViewKey, ...]:
        """The view keys of a ``(radius)`` ball table of width ``width``."""

    # -- node <-> index conversion ------------------------------------- #

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> Tuple[Any, ...]:
        return self._nodes

    def index_of(self, node: Any) -> int:
        return self._index[node]

    def node_at(self, index: int) -> Any:
        return self._nodes[index]

    def to_values(self, mapping: Mapping[Any, Any]) -> List[Any]:
        try:
            return [mapping[node] for node in self._nodes]
        except KeyError:
            for node in self._nodes:
                if node not in mapping:
                    raise KeyError(
                        f"labelling is missing an entry for node {node}"
                    ) from None
            raise

    def to_mapping(self, values: List[Any]) -> Dict[Any, Any]:
        return dict(zip(self._nodes, values))

    # -- tables --------------------------------------------------------- #

    @staticmethod
    def _norm_key(norm: str) -> str:
        # The non-torus families measure hop distance, under which the L1
        # and L∞ balls coincide; both norms share one table cache.
        if norm not in ("l1", "linf"):
            raise ValueError(f"unknown norm {norm!r}; expected 'l1' or 'linf'")
        return "hop"

    def _ball_plan(
        self, radius: int, norm: str
    ) -> Tuple[Tuple[ViewKey, ...], IndexTable]:
        key = (radius, self._norm_key(norm))
        plan = self._plans.get(key)
        if plan is None:
            if radius < 0:
                raise ValueError(f"radius must be non-negative, got {radius}")
            rows = [
                self._compute_ball_row(index, radius)
                for index in range(len(self._nodes))
            ]
            width = max(len(row) for row in rows)
            keys = self._view_keys_for(radius, width)
            if len(keys) != width:
                raise SimulationError(
                    f"{type(self).__name__} produced {len(keys)} view keys "
                    f"for ball tables of width {width}"
                )
            table = tuple(
                row if len(row) == width else row + (index,) * (width - len(row))
                for index, row in enumerate(rows)
            )
            plan = (keys, table)
            self._plans[key] = plan
        return plan

    def view_keys(self, radius: int, norm: str = "l1") -> Tuple[ViewKey, ...]:
        return self._ball_plan(radius, norm)[0]

    def ball_table(
        self, radius: int, norm: str = "l1"
    ) -> Tuple[Tuple[ViewKey, ...], IndexTable]:
        return self._ball_plan(radius, norm)

    def ball_getters(self, radius: int, norm: str = "l1"):
        cache_key = (radius, self._norm_key(norm))
        getters = self._getter_tables.get(cache_key)
        keys, table = self._ball_plan(radius, norm)
        if getters is None:
            if len(keys) == 1:
                # itemgetter with one key returns a bare value, not a
                # 1-tuple; share one gather over the index column instead.
                getters = _ColumnGetters(table)
            else:
                getters = tuple(itemgetter(*row) for row in table)
            self._getter_tables[cache_key] = getters
        return keys, getters

    def ball_index_array(self, radius: int, norm: str = "l1"):
        if _np is None:  # pragma: no cover - exercised only on numpy-less installs
            raise SimulationError(
                "ball_index_array requires numpy, which is not installed"
            )
        cache_key = (radius, self._norm_key(norm))
        array = self._array_tables.get(cache_key)
        keys, table = self._ball_plan(radius, norm)
        if array is None:
            array = _np.asarray(table, dtype=_np.int32)
            array.setflags(write=False)
            self._array_tables[cache_key] = array
        return keys, array

    def ball_node_table(
        self, radius: int, norm: str = "l1"
    ) -> Tuple[Tuple[int, ...], ...]:
        cache_key = (radius, self._norm_key(norm))
        node_table = self._node_tables.get(cache_key)
        if node_table is None:
            _, table = self._ball_plan(radius, norm)
            node_table = tuple(_dedup(row) for row in table)
            self._node_tables[cache_key] = node_table
        return node_table

    # -- the dict-reference path --------------------------------------- #

    def reference_ball(
        self, node: Any, radius: int, norm: str = "l1"
    ) -> Dict[ViewKey, Any]:
        """``{view_key: member node}`` of one node, traversed freshly.

        The gather is recomputed per call (no cached table rows), so
        :func:`apply_rule_dict` exercises an execution path independent of
        the tables the fast tiers share — the same division of labour as
        the torus simulator versus :class:`GridIndexer`.
        """
        index = self.index_of(node)
        keys = self.view_keys(radius, norm)
        row = self._compute_ball_row(index, radius)
        padded = row + (index,) * (len(keys) - len(row))
        nodes = self._nodes
        return {key: nodes[j] for key, j in zip(keys, padded)}


def apply_rule_dict(
    topology: BaseTopology,
    labels: Mapping[Any, Any],
    rule: Any,
    ledger: Optional[Any] = None,
    phase: str = "rule",
) -> Dict[Any, Any]:
    """Dict-reference rule application — the non-torus equivalence oracle.

    The analogue of :func:`repro.local_model.simulator.apply_rule` for
    :class:`BaseTopology` families: per node, the view is rebuilt by a
    fresh traversal (:meth:`BaseTopology.reference_ball`) and handed to
    ``rule.update`` as a plain dict, with no shared tables, getters or
    code vectors involved.  Nodes are visited in flat-index order, so a
    raising rule fails on the same first node as every engine tier.
    """
    update = rule.update
    radius, norm = rule.radius, rule.norm
    new_labels: Dict[Any, Any] = {}
    for node in topology.nodes:
        members = topology.reference_ball(node, radius, norm)
        new_labels[node] = update(
            {key: labels[member] for key, member in members.items()}
        )
    if ledger is not None:
        ledger.charge(phase, rule.round_cost(topology.dimension))
    return new_labels


# --------------------------------------------------------------------- #
# Directed cycles
# --------------------------------------------------------------------- #


class DirectedCycleTopology(BaseTopology):
    """A consistently oriented cycle of ``length`` nodes (ints ``0..n-1``).

    View keys are signed hop deltas ``-r .. +r`` along the orientation:
    ``view[-1]`` is the predecessor's label, ``view[0]`` the node's own,
    ``view[+1]`` the successor's.  On a cycle shorter than the window
    (``length < 2r + 1``) deltas wrap onto repeated nodes and are kept
    under their distinct keys — the same see-around-the-torus semantics as
    small tori; at ``length == 2r + 1`` the window covers the whole cycle
    exactly once.
    """

    def __init__(self, length: int):
        if not isinstance(length, int) or isinstance(length, bool) or length < 1:
            raise InvalidProblemError(
                f"a directed cycle needs a positive integer length, got {length!r}"
            )
        self._length = length
        super().__init__(tuple(range(length)))

    @classmethod
    def shared(cls, length: int) -> "DirectedCycleTopology":
        """The (cached) cycle topology of ``length`` nodes."""
        return _SHARED_INSTANCES.get_or_create(
            ("cycle", length), lambda: cls(length)
        )

    @property
    def dimension(self) -> int:
        return 1

    @property
    def length(self) -> int:
        """Number of nodes on the cycle."""
        return self._length

    def _compute_ball_row(self, index: int, radius: int) -> Tuple[int, ...]:
        length = self._length
        # Self first (delta 0), then alternating +1, -1, +2, -2, ... so the
        # row starts with the node itself like every other family; the
        # padded table re-orders nothing because cycles are regular.
        row = [index]
        for delta in range(1, radius + 1):
            row.append((index + delta) % length)
            row.append((index - delta) % length)
        return tuple(row)

    def _view_keys_for(self, radius: int, width: int) -> Tuple[int, ...]:
        keys = [0]
        for delta in range(1, radius + 1):
            keys.append(delta)
            keys.append(-delta)
        return tuple(keys)

    def __repr__(self) -> str:
        return f"DirectedCycleTopology({self._length})"

    def __reduce__(self):
        return (DirectedCycleTopology.shared, (self._length,))


# --------------------------------------------------------------------- #
# Bounded-degree graphs and trees
# --------------------------------------------------------------------- #


class GraphTopology(BaseTopology):
    """A finite simple graph given by adjacency lists over ``0..n-1``.

    Balls are hop-distance balls enumerated breadth first (self, then each
    BFS layer in adjacency-list discovery order), so the table row order is
    deterministic.  Ball sizes may differ per node; shorter rows are padded
    with the node's own index (see the module docstring).  View keys are
    ball-slot positions ``0..w-1`` with slot ``0`` always the node itself.

    Malformed adjacency — out-of-range or non-integer neighbour indices,
    self-loops, repeated neighbours, asymmetric edges — raises
    :class:`repro.errors.InvalidProblemError` at construction.
    """

    def __init__(self, adjacency: Sequence[Sequence[int]]):
        lists = tuple(tuple(neighbours) for neighbours in adjacency)
        count = len(lists)
        if count < 1:
            raise InvalidProblemError("a graph topology needs at least one node")
        for node, neighbours in enumerate(lists):
            seen = set()
            for neighbour in neighbours:
                if (
                    not isinstance(neighbour, int)
                    or isinstance(neighbour, bool)
                    or not 0 <= neighbour < count
                ):
                    raise InvalidProblemError(
                        f"node {node} lists neighbour {neighbour!r}, which is "
                        f"not a node index in 0..{count - 1}"
                    )
                if neighbour == node:
                    raise InvalidProblemError(
                        f"node {node} lists itself as a neighbour; "
                        "self-loops are not allowed"
                    )
                if neighbour in seen:
                    raise InvalidProblemError(
                        f"node {node} lists neighbour {neighbour} more than once"
                    )
                seen.add(neighbour)
        for node, neighbours in enumerate(lists):
            for neighbour in neighbours:
                if node not in lists[neighbour]:
                    raise InvalidProblemError(
                        f"edge {node}-{neighbour} is not symmetric: node "
                        f"{neighbour} does not list node {node} back"
                    )
        self._adjacency = lists
        super().__init__(tuple(range(count)))

    @property
    def adjacency(self) -> Tuple[Tuple[int, ...], ...]:
        """The validated adjacency lists."""
        return self._adjacency

    @property
    def max_degree(self) -> int:
        """Largest node degree (0 for the single-node graph)."""
        return max(len(neighbours) for neighbours in self._adjacency)

    @property
    def dimension(self) -> int:
        return 1

    def _compute_ball_row(self, index: int, radius: int) -> Tuple[int, ...]:
        adjacency = self._adjacency
        seen = {index}
        order = [index]
        frontier = [index]
        for _ in range(radius):
            if not frontier:
                break
            next_frontier: List[int] = []
            for member in frontier:
                for neighbour in adjacency[member]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        order.append(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return tuple(order)

    def _view_keys_for(self, radius: int, width: int) -> Tuple[int, ...]:
        return tuple(range(width))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.node_count} nodes, "
            f"max degree {self.max_degree})"
        )

    def __reduce__(self):
        return (type(self), (self._adjacency,))


class TreeTopology(GraphTopology):
    """A finite tree (connected acyclic graph), usually built from parents.

    :meth:`from_parents` takes ``parents[i]`` = parent index of node ``i``
    with exactly one ``None`` entry marking the root; neighbour order is
    parent first, then children in index order.  The ``path``, ``star``
    and ``random`` constructors cover the degenerate shapes the edge-case
    tests pin (endpoint vs interior balls, hub vs leaf balls).
    """

    def __init__(self, adjacency: Sequence[Sequence[int]]):
        super().__init__(adjacency)
        count = self.node_count
        edges = sum(len(neighbours) for neighbours in self._adjacency) // 2
        if edges != count - 1:
            raise InvalidProblemError(
                f"a tree on {count} nodes has exactly {count - 1} edges, "
                f"got {edges}"
            )
        if len(self._compute_ball_row(0, count)) != count:
            raise InvalidProblemError(
                "tree adjacency is not connected (some nodes are unreachable "
                "from node 0)"
            )

    @classmethod
    def from_parents(cls, parents: Sequence[Optional[int]]) -> "TreeTopology":
        """Build a tree from a parent vector (``None`` marks the root)."""
        vector = tuple(parents)
        count = len(vector)
        if count < 1:
            raise InvalidProblemError("a tree needs at least one node")
        root: Optional[int] = None
        children: List[List[int]] = [[] for _ in range(count)]
        for node, parent in enumerate(vector):
            if parent is None:
                if root is not None:
                    raise InvalidProblemError(
                        f"a tree has exactly one root; nodes {root} and "
                        f"{node} both have no parent"
                    )
                root = node
                continue
            if (
                not isinstance(parent, int)
                or isinstance(parent, bool)
                or not 0 <= parent < count
            ):
                raise InvalidProblemError(
                    f"node {node} names parent {parent!r}, which is not a "
                    f"node index in 0..{count - 1}"
                )
            if parent == node:
                raise InvalidProblemError(
                    f"node {node} names itself as its parent"
                )
            children[parent].append(node)
        if root is None:
            raise InvalidProblemError(
                "a tree needs a root: exactly one parent entry must be None"
            )
        adjacency = [
            ([vector[node]] if vector[node] is not None else [])
            + children[node]
            for node in range(count)
        ]
        return cls(adjacency)

    @classmethod
    def path(cls, count: int) -> "TreeTopology":
        """The path on ``count`` nodes (``0 - 1 - ... - count-1``)."""
        if count < 1:
            raise InvalidProblemError("a path needs at least one node")
        return cls.from_parents([None] + list(range(count - 1)))

    @classmethod
    def star(cls, count: int) -> "TreeTopology":
        """The star on ``count`` nodes (node 0 the hub, the rest leaves)."""
        if count < 1:
            raise InvalidProblemError("a star needs at least one node")
        return cls.from_parents([None] + [0] * (count - 1))

    @classmethod
    def random(cls, count: int, seed: int) -> "TreeTopology":
        """A (cached) random recursive tree: node ``i`` attaches to a
        uniform earlier node.  Deterministic in ``(count, seed)``."""
        if count < 1:
            raise InvalidProblemError("a tree needs at least one node")

        def build() -> "TreeTopology":
            rng = random.Random(f"tree:{count}:{seed}")
            parents: List[Optional[int]] = [None]
            parents.extend(rng.randrange(node) for node in range(1, count))
            return cls.from_parents(parents)

        return _SHARED_INSTANCES.get_or_create(
            ("random-tree", count, seed), build
        )

    def __reduce__(self):
        return (TreeTopology, (self._adjacency,))


# --------------------------------------------------------------------- #
# Random graph families (seeded, for the equivalence harness and benches)
# --------------------------------------------------------------------- #


def random_regular_graph(count: int, degree: int, seed: int) -> GraphTopology:
    """A (cached) random ``degree``-regular simple graph on ``count`` nodes.

    Samples the pairing model with rejection; after a bounded number of
    rejected pairings it falls back to a circulant pattern over a random
    node permutation, so construction always terminates deterministically
    in ``(count, degree, seed)``.  Raises
    :class:`repro.errors.InvalidProblemError` when no such graph exists
    (``degree >= count`` or odd ``count * degree``).
    """
    if count < 1:
        raise InvalidProblemError("a regular graph needs at least one node")
    if degree < 0 or degree >= count:
        raise InvalidProblemError(
            f"a {degree}-regular graph on {count} nodes does not exist "
            "(need 0 <= degree < count)"
        )
    if (count * degree) % 2:
        raise InvalidProblemError(
            f"a {degree}-regular graph on {count} nodes does not exist "
            "(count * degree must be even)"
        )

    def build() -> GraphTopology:
        rng = random.Random(f"regular:{count}:{degree}:{seed}")
        for _ in range(200):
            stubs = [node for node in range(count) for _ in range(degree)]
            rng.shuffle(stubs)
            adjacency: List[List[int]] = [[] for _ in range(count)]
            edges = set()
            valid = True
            for position in range(0, len(stubs), 2):
                u, v = stubs[position], stubs[position + 1]
                edge = (u, v) if u < v else (v, u)
                if u == v or edge in edges:
                    valid = False
                    break
                edges.add(edge)
                adjacency[u].append(v)
                adjacency[v].append(u)
            if valid:
                return GraphTopology(adjacency)
        # Circulant fallback: connect a random permutation at hop offsets
        # 1..degree//2 (plus the antipode for odd degree, where count is
        # necessarily even) — always a valid simple degree-regular graph.
        permutation = list(range(count))
        rng.shuffle(permutation)
        adjacency = [[] for _ in range(count)]
        offsets = list(range(1, degree // 2 + 1))
        for position in range(count):
            u = permutation[position]
            for offset in offsets:
                v = permutation[(position + offset) % count]
                adjacency[u].append(v)
                adjacency[v].append(u)
            if degree % 2 and position < count // 2:
                v = permutation[(position + count // 2) % count]
                adjacency[u].append(v)
                adjacency[v].append(u)
        return GraphTopology(adjacency)

    return _SHARED_INSTANCES.get_or_create(
        ("regular", count, degree, seed), build
    )


def random_bounded_degree_graph(
    count: int, max_degree: int, seed: int
) -> GraphTopology:
    """A (cached) connected random graph with every degree ``<= max_degree``.

    Grows a degree-bounded random tree (node ``i`` attaches to a uniform
    earlier node that still has headroom), then sprinkles extra random
    edges under the cap — so degrees, and therefore ball sizes, genuinely
    vary per node.  Deterministic in ``(count, max_degree, seed)``; raises
    :class:`repro.errors.InvalidProblemError` when the cap cannot connect
    ``count`` nodes.
    """
    if count < 1:
        raise InvalidProblemError("a graph needs at least one node")
    if count > 1 and max_degree < 1:
        raise InvalidProblemError(
            f"max degree {max_degree} cannot connect {count} nodes"
        )

    def build() -> GraphTopology:
        rng = random.Random(f"bounded:{count}:{max_degree}:{seed}")
        adjacency: List[List[int]] = [[] for _ in range(count)]
        degrees = [0] * count
        for node in range(1, count):
            candidates = [
                earlier for earlier in range(node) if degrees[earlier] < max_degree
            ]
            if not candidates:
                raise InvalidProblemError(
                    f"max degree {max_degree} cannot connect {count} nodes"
                )
            parent = rng.choice(candidates)
            adjacency[parent].append(node)
            adjacency[node].append(parent)
            degrees[parent] += 1
            degrees[node] += 1
        for _ in range(count):
            u, v = rng.randrange(count), rng.randrange(count)
            if (
                u == v
                or degrees[u] >= max_degree
                or degrees[v] >= max_degree
                or v in adjacency[u]
            ):
                continue
            adjacency[u].append(v)
            adjacency[v].append(u)
            degrees[u] += 1
            degrees[v] += 1
        return GraphTopology(adjacency)

    return _SHARED_INSTANCES.get_or_create(
        ("bounded", count, max_degree, seed), build
    )


# --------------------------------------------------------------------- #
# Shared helpers (also used by GridIndexer)
# --------------------------------------------------------------------- #


class _ColumnGetters(SequenceABC):
    """Per-node single-key getters sharing one index column.

    Caching one closure per node would leave a per-node object in the
    topology's caches on large instances; this sequence stores only a
    reference to the (already cached) index table and builds the tiny
    per-node callables lazily.
    """

    __slots__ = ("_table",)

    def __init__(self, table: IndexTable):
        self._table = table

    def __len__(self) -> int:
        return len(self._table)

    def __getitem__(self, position):
        if isinstance(position, slice):
            return tuple(self[i] for i in range(*position.indices(len(self._table))))
        j = self._table[position][0]
        return lambda values: (values[j],)


def _dedup(indices: Tuple[int, ...]) -> Tuple[int, ...]:
    seen = set()
    result = []
    for index in indices:
        if index not in seen:
            seen.add(index)
            result.append(index)
    return tuple(result)
